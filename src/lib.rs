//! Root crate: re-exports the workspace for examples and integration tests.
pub use bouncer_core as core;
pub use bouncer_metrics as metrics;
pub use bouncer_sim as sim;
pub use bouncer_workload as workload;
pub use liquid;
