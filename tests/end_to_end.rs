//! Cross-crate integration tests: the policies from `bouncer-core` driven
//! through the simulator, the workload generator, and the LIquid-like
//! cluster — the full paths the paper's two studies exercise.

use std::sync::Arc;
use std::time::Duration;

use bouncer_repro::core::prelude::*;
use bouncer_repro::metrics::time::millis;
use bouncer_repro::sim::{run, SimConfig};
use bouncer_repro::workload::generator::{run_open_loop, LoadGenConfig, QueryOutcome};
use bouncer_repro::workload::mix::paper_table1_mix;
use liquid::broker::{kind_type_id, ClientOutcome};
use liquid::cluster::{Cluster, ClusterConfig};
use liquid::graph::GraphConfig;
use liquid::query::{Query, QueryKind};

fn small_cluster_config() -> ClusterConfig {
    ClusterConfig {
        n_shards: 2,
        n_brokers: 1,
        graph: GraphConfig {
            vertices: 20_000,
            edges_per_vertex: 6,
            seed: 3,
        },
        ..ClusterConfig::default()
    }
}

/// The headline claim, end to end in simulation: under overload, Bouncer
/// keeps serviced slow queries within their SLO, rejects fewer overall than
/// a type-oblivious baseline, and utilization stays high.
#[test]
fn bouncer_headline_claims_in_simulation() {
    let mut registry = TypeRegistry::new();
    let mix = paper_table1_mix(&mut registry);
    let slow = registry.resolve("slow").unwrap();
    let rate = mix.qps_full_load(100) * 1.25;

    let slos = SloConfig::uniform(&registry, Slo::p50_p90(millis(18), millis(50)));
    let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(100));
    let cfg = SimConfig::quick(rate, 77);
    let b = run(&bouncer, &mix, &cfg);

    let maxql = MaxQueueLength::new(400);
    let q = run(&maxql, &mix, &cfg);

    let b_rt = b.response_ms(slow, 0.5).unwrap();
    let q_rt = q.response_ms(slow, 0.5).unwrap();
    assert!(b_rt <= 19.0, "bouncer rt50={b_rt}");
    assert!(q_rt > 19.0, "maxql rt50={q_rt}");
    assert!(b.overall_rejection_pct() < q.overall_rejection_pct());
    assert!(b.utilization_pct() > 85.0);
}

/// Full real-system path: open-loop generator -> broker (Bouncer+AA) ->
/// shards (AcceptFraction) over the in-process transport.
#[test]
fn cluster_under_bouncer_answers_and_sheds() {
    let cluster = Cluster::spawn(&small_cluster_config(), |registry, engines| {
        let slos = SloConfig::uniform(registry, Slo::p50_p90(millis(18), millis(50)));
        let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(engines));
        Arc::new(AcceptanceAllowance::new(bouncer, registry.len(), 0.05, 3))
    });
    let vertices = cluster.vertices();

    let mix = bouncer_bench_mix();
    let report = run_open_loop(
        &mix,
        cluster.registry().len(),
        &LoadGenConfig {
            rate_qps: 400.0,
            duration: Duration::from_secs(2),
            workers: 16,
            seed: 5,
        },
        |ty, rng| {
            let kind = QueryKind::from_index(ty.index() - 1).unwrap();
            match cluster.execute(Query::random(kind, vertices, rng)) {
                ClientOutcome::Ok(_) => QueryOutcome::Ok,
                ClientOutcome::Rejected(_) | ClientOutcome::ShardRejected => {
                    QueryOutcome::Rejected
                }
                ClientOutcome::Expired | ClientOutcome::Failed => QueryOutcome::Error,
            }
        },
    );

    assert!(report.total_sent() > 400, "sent={}", report.total_sent());
    let errors: u64 = report.per_type.iter().map(|t| t.errors).sum();
    assert_eq!(errors, 0, "no transport/execution errors expected");
    // Some queries serviced; cheap types never starved.
    let qt1 = &report.per_type[kind_type_id(QueryKind::Qt1Degree).index()];
    assert!(qt1.ok > 0);
    cluster.shutdown();
}

/// The same policy object type-checks and behaves across both "deployments"
/// (virtual-time simulator and wall-clock cluster) — the design property
/// that lets the paper evaluate one implementation twice.
#[test]
fn one_policy_impl_serves_both_studies() {
    // Simulator leg.
    let mut registry = TypeRegistry::new();
    let mix = paper_table1_mix(&mut registry);
    let slos = SloConfig::uniform(&registry, Slo::p50_p90(millis(18), millis(50)));
    let policy: Arc<dyn AdmissionPolicy> = Arc::new(Bouncer::new(
        slos,
        BouncerConfig::with_parallelism(100),
    ));
    let mut cfg = SimConfig::quick(mix.qps_full_load(100), 1);
    cfg.measured_queries = 20_000;
    cfg.warmup_queries = 5_000;
    let r = run(&policy, &mix, &cfg);
    assert!(r.stats.total_received() > 0);

    // Cluster leg with an identically constructed policy.
    let cluster = Cluster::spawn(&small_cluster_config(), |registry, engines| {
        let slos = SloConfig::uniform(registry, Slo::p50_p90(millis(18), millis(50)));
        Arc::new(Bouncer::new(slos, BouncerConfig::with_parallelism(engines)))
    });
    let out = cluster.execute(Query {
        kind: QueryKind::Qt1Degree,
        u: 1,
        v: 2,
    });
    assert!(matches!(out, ClientOutcome::Ok(_)));
    cluster.shutdown();
}

/// Overload on the cluster produces early rejections at the broker tier
/// (the paper: "the brokers, not the shards, produced the vast majority of
/// rejections").
#[test]
fn overload_produces_broker_side_early_rejections() {
    let cluster = Cluster::spawn(&small_cluster_config(), |registry, engines| {
        let slos = SloConfig::uniform(registry, Slo::p50_p90(millis(5), millis(15)));
        Arc::new(Bouncer::new(slos, BouncerConfig::with_parallelism(engines)))
    });
    let vertices = cluster.vertices();
    let mix = bouncer_bench_mix();

    let report = run_open_loop(
        &mix,
        cluster.registry().len(),
        &LoadGenConfig {
            rate_qps: 12_000.0, // far beyond this small cluster's capacity
            duration: Duration::from_secs(2),
            workers: 64,
            seed: 9,
        },
        |ty, rng| {
            let kind = QueryKind::from_index(ty.index() - 1).unwrap();
            match cluster.execute(Query::random(kind, vertices, rng)) {
                ClientOutcome::Ok(_) => QueryOutcome::Ok,
                ClientOutcome::Rejected(_) | ClientOutcome::ShardRejected => {
                    QueryOutcome::Rejected
                }
                ClientOutcome::Expired | ClientOutcome::Failed => QueryOutcome::Error,
            }
        },
    );
    assert!(
        report.overall_rejection_ratio() > 0.05,
        "expected shedding, got {:.3}",
        report.overall_rejection_ratio()
    );
    let broker_rejections: u64 = cluster
        .brokers()
        .iter()
        .map(|b| b.stats().snapshot(1, 1).total_rejected())
        .sum();
    assert!(broker_rejections > 0);
    cluster.shutdown();
}

/// Helper: the published QT mix wired to the liquid registry ids.
fn bouncer_bench_mix() -> bouncer_repro::workload::QueryMix {
    use bouncer_repro::workload::dist::LogNormal;
    use bouncer_repro::workload::mix::{QueryClass, QueryMix, LIQUID_MIX_PROPORTIONS};
    QueryMix::new(
        LIQUID_MIX_PROPORTIONS
            .iter()
            .enumerate()
            .map(|(i, &(name, prop))| QueryClass {
                ty: kind_type_id(QueryKind::ALL[i]),
                name: name.to_owned(),
                proportion: prop,
                processing_ms: LogNormal::new(0.0, 0.0),
            })
            .collect(),
    )
}
