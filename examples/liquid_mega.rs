//! The million-vertex end-to-end smoke over the rings cluster.
//!
//! Run with:
//! ```sh
//! cargo run --release --example liquid_mega -- scenarios/liquid_mega.scn
//! ```
//!
//! Loads `scenarios/liquid_mega.scn` (1M vertices, m = 4, 4 shards,
//! thread-per-core rings transport), spawns the cluster — which builds
//! the CSR graph and zero-clone sub-CSR shard slices — prints the
//! `graph_stats` footprint line, and drives the published QT1..QT11 mix
//! through `Cluster::execute` from several client threads. This is the
//! scale gate `scripts/check.sh` runs: the engine must serve mixed
//! traffic end-to-end at the graph size the CSR representation exists
//! for, not just micro-benchmark it.

use std::path::PathBuf;
use std::time::Instant;

use bouncer_repro::core::prelude::*;
use bouncer_repro::core::spec::{PolicyEnv, ScenarioSpec, TransportSpec};
use bouncer_repro::metrics::time::millis;
use liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use liquid::graph::GraphConfig;
use liquid::query::{Query, QueryKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("scenarios/liquid_mega.scn"));
    let spec = ScenarioSpec::load(&path)
        .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));
    let lq = spec.liquid().unwrap_or_else(|e| panic!("{e}")).clone();
    println!("scenario: {} ({})", spec.tag(), spec.hash_hex());

    let cfg = ClusterConfig {
        n_shards: lq.shards as usize,
        n_brokers: lq.brokers as usize,
        transport: match lq.transport {
            TransportSpec::Channels => TransportKind::InProc,
            TransportSpec::Rings => TransportKind::Rings,
            TransportSpec::Tcp => TransportKind::Tcp,
        },
        graph: GraphConfig {
            vertices: lq.graph_vertices,
            edges_per_vertex: lq.graph_edges_per_vertex,
            seed: 0x11D,
        },
        shard_max_utilization: lq.shard_max_utilization,
        ..ClusterConfig::default()
    };

    let policy_spec = spec.first_policy().unwrap_or_else(|e| panic!("{e}")).clone();
    let seed = spec.seed;
    let t = Instant::now();
    let cluster = Cluster::spawn(&cfg, move |registry, engines| {
        let env = PolicyEnv {
            registry,
            slos: SloConfig::uniform(registry, Slo::p50_p90(millis(18), millis(50))),
            parallelism: engines,
        };
        policy_spec.build(&env, seed)
    });
    let stats = cluster.graph_stats();
    println!(
        "spawned {} shard(s) over rings in {:.1}s: {}",
        cfg.n_shards,
        t.elapsed().as_secs_f64(),
        stats.render_line()
    );
    assert_eq!(stats.vertices, u64::from(lq.graph_vertices));

    let vertices = cluster.vertices();
    let (mut ok, mut rejected) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..4u64 {
            let cluster = &cluster;
            workers.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ t);
                let (mut ok, mut rejected) = (0u64, 0u64);
                for i in 0..1_500u32 {
                    let kind = QueryKind::ALL[(i as usize + t as usize) % 11];
                    let q = Query::random(kind, vertices, &mut rng);
                    match cluster.execute(q) {
                        liquid::broker::ClientOutcome::Ok(_) => ok += 1,
                        _ => rejected += 1,
                    }
                }
                (ok, rejected)
            }));
        }
        for w in workers {
            let (o, r) = w.join().unwrap();
            ok += o;
            rejected += r;
        }
    });
    cluster.shutdown();

    assert!(ok > 0, "no query served at the mega scale");
    println!(
        "served {} mixed queries end-to-end ({ok} ok, {rejected} shed)",
        ok + rejected
    );
}
