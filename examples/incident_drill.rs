//! A wall-clock incident drill over the thread-per-core rings cluster.
//!
//! Run with:
//! ```sh
//! cargo run --release --example incident_drill -- /tmp/bouncer-incidents
//! cargo run --release -p bouncer-cli -- postmortem --dump-in <dump printed below>
//! ```
//!
//! Spawns a rings cluster with the health sampler armed — the always-on
//! flight recorder rides underneath it on every thread — then floods the
//! broker from several client threads through a deliberately tight
//! queue-length policy. The rejection-spike trigger drains the recorder
//! and the trailing health windows into an `incident-*.jsonl` dump; a
//! forced trigger guarantees a dump even on a machine fast enough to
//! absorb the flood. `scripts/check.sh` runs exactly this drill and feeds
//! the dump to the CLI's `postmortem` subcommand.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bouncer_repro::core::obs::HealthConfig;
use bouncer_repro::core::prelude::*;
use bouncer_repro::core::spec::PolicyEnv;
use bouncer_repro::metrics::time::millis;
use liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use liquid::graph::GraphConfig;
use liquid::query::{Query, QueryKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("bouncer-incident-drill"));
    std::fs::create_dir_all(&dir).expect("cannot create incident dir");

    let mut health = HealthConfig {
        interval: millis(25),
        dump_dir: Some(dir.clone()),
        ..HealthConfig::default()
    };
    health.trigger.rejection_rate = Some(0.25);
    // Wall-clock backstop: one dump is guaranteed once the cluster is
    // 250ms old, whatever the flood achieves.
    health.trigger.force_at = Some(millis(250));

    let cfg = ClusterConfig {
        n_shards: 2,
        n_brokers: 1,
        transport: TransportKind::Rings,
        graph: GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 21,
        },
        health: Some(health),
        ..ClusterConfig::default()
    };

    // A deliberately tight queue cap so the flood sheds load; built
    // through the spec layer like every other experiment.
    let policy_spec = PolicySpec::parse("maxql limit=8").expect("valid policy line");
    let cluster = Cluster::spawn(&cfg, move |registry, engines| {
        let env = PolicyEnv {
            registry,
            slos: SloConfig::uniform(registry, Slo::p50_p90(millis(18), millis(50))),
            parallelism: engines,
        };
        policy_spec.build(&env, 42)
    });
    let sampler = Arc::clone(cluster.health().expect("health sampler wired"));
    let vertices = cluster.vertices();

    // 32 synchronous clients against a queue cap of 8: the backlog the
    // flood builds at the broker gate is what the policy sheds.
    println!("flooding the rings cluster from 32 client threads...");
    let mut rejected = 0u64;
    let mut ok = 0u64;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..32u64 {
            let cluster = &cluster;
            workers.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                let (mut ok, mut rejected) = (0u64, 0u64);
                for i in 0..300u32 {
                    let kind = QueryKind::ALL[(i as usize + t as usize) % 11];
                    let q = Query::random(kind, vertices, &mut rng);
                    match cluster.execute(q) {
                        liquid::broker::ClientOutcome::Ok(_) => ok += 1,
                        _ => rejected += 1,
                    }
                }
                (ok, rejected)
            }));
        }
        for w in workers {
            let (o, r) = w.join().unwrap();
            ok += o;
            rejected += r;
        }
    });

    // Let the probe thread close a few more wall-clock windows so the
    // forced backstop fires even if the flood finished inside 250ms.
    let deadline = Instant::now() + Duration::from_secs(5);
    while sampler.incidents() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();

    println!(
        "ran {} queries ({ok} ok, {rejected} rejected); {} health sample(s), \
         {} incident dump(s), {} record(s) in the flight recorder",
        ok + rejected,
        sampler.samples(),
        sampler.incidents(),
        sampler.recorder().total_written(),
    );
    let paths = sampler.incident_paths();
    assert!(
        !paths.is_empty(),
        "the trigger engine produced no incident dump"
    );
    for path in paths {
        println!("incident dump: {}", path.display());
        println!(
            "analyze with: cargo run --release -p bouncer-cli -- postmortem --dump-in {}",
            path.display()
        );
    }
}
