//! End-to-end distributed tracing over a small in-process cluster.
//!
//! Run with:
//! ```sh
//! cargo run --release --example traced_cluster -- /tmp/traces.jsonl
//! cargo run --release -p bouncer-cli -- trace-report --traces-in /tmp/traces.jsonl
//! ```
//!
//! Spawns a 2-shard / 1-broker LIquid cluster with a [`Tracer`] attached,
//! runs a few hundred fan-out queries through it, and writes every span to
//! a JSONL file (the first argument; a temp path by default). Feed the
//! file to the CLI's `trace-report` subcommand for the critical-path
//! latency breakdown; `scripts/check.sh` does exactly that, with
//! `--strict` gating on complete span trees.
//!
//! Pass `--unbatched` (anywhere in the arguments) to run the retained
//! one-message-per-sub-query fallback instead of the default batched
//! fan-out — the trees grow one `subquery` span per individual sub-query
//! instead of one per (round, shard) batch.

use std::sync::Arc;

use bouncer_repro::core::obs::{JsonlSink, Tracer, TracerConfig};
use bouncer_repro::core::policy::AlwaysAccept;
use bouncer_repro::liquid::broker::BrokerConfig;
use bouncer_repro::liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use bouncer_repro::liquid::graph::GraphConfig;
use bouncer_repro::liquid::query::{Query, QueryKind};

fn main() {
    let batch_fanout = !std::env::args().any(|a| a == "--unbatched");
    let path = std::env::args()
        .skip(1)
        .find(|a| a != "--unbatched")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("bouncer-traced-cluster.jsonl"));
    let sink = Arc::new(JsonlSink::create(&path).expect("cannot create trace log"));
    let tracer = Arc::new(Tracer::new(sink, TracerConfig::default()));

    let cfg = ClusterConfig {
        n_shards: 2,
        n_brokers: 1,
        transport: TransportKind::InProc,
        graph: GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 21,
        },
        broker: BrokerConfig {
            batch_fanout,
            ..BrokerConfig::default()
        },
        tracer: Some(tracer.clone()),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));

    // A mix of single-round (QT1), two-round (QT5/QT7), and three-round
    // (QT10) plans, so the report has rounds, stragglers, and aggregation
    // segments to show.
    let kinds = [
        QueryKind::Qt1Degree,
        QueryKind::Qt5MutualCount,
        QueryKind::Qt7TwoHopCount,
        QueryKind::Qt10Distance3,
    ];
    let vertices = cluster.vertices();
    let mut ok = 0u64;
    const N: u64 = 200;
    for i in 0..N {
        let q = Query {
            kind: kinds[i as usize % kinds.len()],
            u: (i as u32 * 13) % vertices,
            v: (i as u32 * 13 + 7) % vertices,
        };
        if matches!(
            cluster.execute(q),
            bouncer_repro::liquid::broker::ClientOutcome::Ok(_)
        ) {
            ok += 1;
        }
    }
    cluster.shutdown();
    tracer.flush();

    println!(
        "ran {N} queries ({ok} ok, {} fan-out); {} traces sampled, {} dropped",
        if batch_fanout { "batched" } else { "unbatched" },
        tracer.sampled_total(),
        tracer.dropped_total()
    );
    println!("spans written to {} (JSONL)", path.display());
    println!(
        "analyze with: cargo run --release -p bouncer-cli -- trace-report --traces-in {}",
        path.display()
    );
}
