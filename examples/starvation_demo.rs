//! Starvation and its cure (the paper's §4, on the simulator).
//!
//! Run with:
//! ```sh
//! cargo run --release --example starvation_demo
//! ```
//!
//! Two query types share the SLO {p50 = 18 ms, p90 = 50 ms}. The SLOW
//! type's processing times sit just under the objectives, so under heavy
//! load basic Bouncer systematically denies it service (Figure 3). The two
//! starvation-avoidance strategies — acceptance-allowance (Algorithm 2) and
//! helping-the-underserved (Algorithm 3) — each restore a share of service,
//! trading a few SLO violations for liveness.

use std::sync::Arc;

use bouncer_repro::core::prelude::*;
use bouncer_repro::metrics::time::millis;
use bouncer_repro::sim::{run, SimConfig};
use bouncer_repro::workload::dist::LogNormal;
use bouncer_repro::workload::mix::{QueryClass, QueryMix};

fn main() {
    let mut registry = TypeRegistry::new();
    let fast = registry.register("FAST");
    let slow = registry.register("SLOW");
    let mix = QueryMix::new(vec![
        QueryClass {
            ty: fast,
            name: "FAST".into(),
            // FAST dominates the mix and nearly fills capacity by itself,
            // like the production pair behind Figure 3.
            proportion: 0.9,
            processing_ms: LogNormal::from_median_p90(4.5, 12.0),
        },
        QueryClass {
            ty: slow,
            name: "SLOW".into(),
            proportion: 0.1,
            processing_ms: LogNormal::from_median_p90(12.5, 44.0),
        },
    ]);
    let slos = SloConfig::uniform(&registry, Slo::p50_p90(millis(18), millis(50)));
    let rate = mix.qps_full_load(100) * 1.6;

    let bouncer = || Bouncer::new(slos.clone(), BouncerConfig::with_parallelism(100));
    let variants: Vec<(&str, Arc<dyn AdmissionPolicy>)> = vec![
        ("basic Bouncer", Arc::new(bouncer())),
        (
            "with acceptance-allowance (A=0.05)",
            Arc::new(AcceptanceAllowance::new(bouncer(), registry.len(), 0.05, 1)),
        ),
        (
            "with helping-the-underserved (alpha=1.0)",
            Arc::new(HelpingTheUnderserved::new(bouncer(), registry.len(), 1.0, 1)),
        ),
    ];

    println!("overloading a simulated broker at 1.6x capacity...\n");
    for (name, policy) in variants {
        let cfg = SimConfig::quick(rate, 5);
        let result = run(&policy, &mix, &cfg);
        println!("{name}:");
        for (ty, label) in [(fast, "FAST"), (slow, "SLOW")] {
            let rt = result
                .response_ms(ty, 0.5)
                .map(|v| format!("{v:.1}ms"))
                .unwrap_or_else(|| "n/a (fully starved)".into());
            println!(
                "  {label:<4}  rejected {:5.1}%   rt_p50 of serviced: {rt}",
                result.rejection_pct(ty),
            );
        }
        println!();
    }
    println!("basic Bouncer starves SLOW almost entirely; both strategies keep");
    println!("a controlled share of SLOW queries flowing (at a small SLO cost),");
    println!("and also keep Bouncer's processing-time histograms populated.");
}
