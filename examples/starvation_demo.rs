//! Starvation and its cure (the paper's §4, on the simulator).
//!
//! Run with:
//! ```sh
//! cargo run --release --example starvation_demo
//! ```
//!
//! The whole experiment is declared in `scenarios/fig03_starvation.scn` —
//! the same file the Figure 3 bench runs. Two query types share the SLO
//! {p50 = 18 ms, p90 = 50 ms}. The SLOW type's processing times sit just
//! under the objectives, so under heavy load basic Bouncer systematically
//! denies it service (Figure 3). The two starvation-avoidance strategies —
//! acceptance-allowance (Algorithm 2) and helping-the-underserved
//! (Algorithm 3) — each restore a share of service, trading a few SLO
//! violations for liveness.

use std::path::Path;

use bouncer_repro::sim::ScenarioSim;

fn main() {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/fig03_starvation.scn"
    ));
    let scenario = ScenarioSim::load(path).unwrap_or_else(|e| panic!("{e}"));
    let spec = scenario.spec();
    println!("scenario: {}", spec.tag());

    let fast = scenario.registry().resolve("FAST").unwrap();
    let slow = scenario.registry().resolve("SLOW").unwrap();
    let factor = scenario.sim_spec().rate_factors[0];

    println!("overloading a simulated broker at {factor}x capacity...\n");
    for (label, name) in [
        ("basic", "basic Bouncer"),
        ("aa", "with acceptance-allowance (A=0.05)"),
        ("htu", "with helping-the-underserved (alpha=1.0)"),
    ] {
        let result = scenario
            .run(label, factor, spec.seed)
            .unwrap_or_else(|e| panic!("{e}"));
        println!("{name}:");
        for (ty, label) in [(fast, "FAST"), (slow, "SLOW")] {
            let rt = result
                .response_ms(ty, 0.5)
                .map(|v| format!("{v:.1}ms"))
                .unwrap_or_else(|| "n/a (fully starved)".into());
            println!(
                "  {label:<4}  rejected {:5.1}%   rt_p50 of serviced: {rt}",
                result.rejection_pct(ty),
            );
        }
        println!();
    }
    println!("basic Bouncer starves SLOW almost entirely; both strategies keep");
    println!("a controlled share of SLOW queries flowing (at a small SLO cost),");
    println!("and also keep Bouncer's processing-time histograms populated.");
}
