//! A traffic surge hitting a simulated data system under four different
//! admission-control policies.
//!
//! Run with:
//! ```sh
//! cargo run --release --example overload_surge
//! ```
//!
//! Replays the paper's motivating scenario (§1–2): a system provisioned for
//! ~15 kQPS receives a surge half again as large. The outcome depends
//! entirely on the admission policy at the door — from full collapse (no
//! control) to SLO-preserving service (Bouncer).

use std::sync::Arc;

use bouncer_repro::core::prelude::*;
use bouncer_repro::metrics::time::millis;
use bouncer_repro::sim::{run, SimConfig};
use bouncer_repro::workload::mix::paper_table1_mix;

fn main() {
    let mut registry = TypeRegistry::new();
    let mix = paper_table1_mix(&mut registry);
    let capacity = mix.qps_full_load(100);
    let surge = capacity * 1.35;
    let slow = registry.resolve("slow").unwrap();

    println!("capacity {capacity:.0} QPS, surge {surge:.0} QPS (1.35x)\n");
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12}",
        "policy", "rejected%", "utilization%", "slow rt_p50", "within SLO?"
    );

    let slos = SloConfig::uniform(&registry, Slo::p50_p90(millis(18), millis(50)));
    let policies: Vec<(&str, Arc<dyn AdmissionPolicy>)> = vec![
        ("no admission control", Arc::new(AlwaysAccept::new())),
        ("MaxQL(400)", Arc::new(MaxQueueLength::new(400))),
        (
            "AcceptFraction(95%)",
            Arc::new(AcceptFraction::new(AcceptFractionConfig::new(0.95, 100))),
        ),
        (
            "Bouncer {18ms, 50ms}",
            Arc::new(Bouncer::new(slos, BouncerConfig::with_parallelism(100))),
        ),
    ];

    for (name, policy) in policies {
        let cfg = SimConfig::quick(surge, 9);
        let r = run(&policy, &mix, &cfg);
        let rt = r.response_ms(slow, 0.5).unwrap_or(f64::NAN);
        println!(
            "{:<22} {:>10.1} {:>12.1} {:>12.1}ms {:>12}",
            name,
            r.overall_rejection_pct(),
            r.utilization_pct(),
            rt,
            if rt <= 18.0 * 1.1 { "yes" } else { "NO" }
        );
    }

    println!("\nwithout control the system 'serves' everything at useless");
    println!("latencies; capacity-centric policies protect throughput but not");
    println!("latency objectives; Bouncer rejects the least AND keeps serviced");
    println!("queries inside their SLOs.");
}
