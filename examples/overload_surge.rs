//! A traffic surge hitting a simulated data system under four different
//! admission-control policies.
//!
//! Run with:
//! ```sh
//! cargo run --release --example overload_surge
//! ```
//!
//! Replays the paper's motivating scenario (§1–2), declared in
//! `scenarios/overload_surge.scn`: a system provisioned for ~15 kQPS
//! receives a surge half again as large. The outcome depends entirely on
//! the admission policy at the door — from full collapse (no control) to
//! SLO-preserving service (Bouncer).

use std::path::Path;

use bouncer_repro::sim::ScenarioSim;

fn main() {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/overload_surge.scn"
    ));
    let scenario = ScenarioSim::load(path).unwrap_or_else(|e| panic!("{e}"));
    let spec = scenario.spec();
    println!("scenario: {}", spec.tag());

    let capacity = scenario.full_load();
    let factor = scenario.sim_spec().rate_factors[0];
    let surge = capacity * factor;
    let slow = scenario.registry().resolve("slow").unwrap();

    println!("capacity {capacity:.0} QPS, surge {surge:.0} QPS ({factor}x)\n");
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12}",
        "policy", "rejected%", "utilization%", "slow rt_p50", "within SLO?"
    );

    for (label, name) in [
        ("none", "no admission control"),
        ("maxql", "MaxQL(400)"),
        ("af", "AcceptFraction(95%)"),
        ("bouncer", "Bouncer {18ms, 50ms}"),
    ] {
        let r = scenario
            .run(label, factor, spec.seed)
            .unwrap_or_else(|e| panic!("{e}"));
        let rt = r.response_ms(slow, 0.5).unwrap_or(f64::NAN);
        println!(
            "{:<22} {:>10.1} {:>12.1} {:>12.1}ms {:>12}",
            name,
            r.overall_rejection_pct(),
            r.utilization_pct(),
            rt,
            if rt <= 18.0 * 1.1 { "yes" } else { "NO" }
        );
    }

    println!("\nwithout control the system 'serves' everything at useless");
    println!("latencies; capacity-centric policies protect throughput but not");
    println!("latency objectives; Bouncer rejects the least AND keeps serviced");
    println!("queries inside their SLOs.");
}
