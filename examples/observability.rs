//! The query-lifecycle observability layer, end to end.
//!
//! Run with:
//! ```sh
//! cargo run --release --example observability
//! ```
//!
//! Runs a short overloaded simulation with Bouncer at the door — the
//! `bouncer` policy of `scenarios/overload_surge.scn` — and two consumers
//! attached:
//!
//! * a [`JsonlSink`] capturing every lifecycle and policy event as one JSON
//!   object per line (what the CLI's `--events-out` writes), and
//! * [`render_prometheus`], turning the run's final `StatsSnapshot` into
//!   the Prometheus text exposition format (what `--metrics-out` writes).
//!
//! The event log is then re-read to reconstruct a per-type admit/reject
//! tally — the kind of offline diagnosis OBSERVABILITY.md walks through.

use std::path::Path;
use std::sync::Arc;

use bouncer_repro::core::obs::{parse_json, render_prometheus, validate_prometheus, JsonlSink};
use bouncer_repro::sim::{run, ScenarioSim};

fn main() {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/overload_surge.scn"
    ));
    let scenario = ScenarioSim::load(path).unwrap_or_else(|e| panic!("{e}"));
    let spec = scenario.spec();
    let registry = scenario.registry();
    println!("scenario: {}", spec.tag());

    let capacity = scenario.full_load();
    let factor = scenario.sim_spec().rate_factors[0];

    // 1. A JSONL event log on disk, exactly like `--events-out`.
    let events_path = std::env::temp_dir().join("bouncer-observability-demo.jsonl");
    let sink = JsonlSink::create(&events_path).expect("cannot create event log");

    let bouncer = scenario
        .build_policy("bouncer", spec.seed)
        .unwrap_or_else(|e| panic!("{e}"));
    let mut cfg = scenario.sim_config_at_factor(factor, spec.seed);
    cfg.measured_queries = 100_000;
    cfg.warmup_queries = 20_000;
    cfg.sink = Some(Arc::new(sink));

    println!(
        "running bouncer at {factor}x of capacity ({:.0} QPS), events -> {}\n",
        capacity * factor,
        events_path.display()
    );
    let result = run(bouncer.as_ref(), scenario.mix(), &cfg);

    // 2. Re-read the log: every line is one JSON event.
    let log = std::fs::read_to_string(&events_path).expect("event log vanished");
    let mut admitted = vec![0u64; registry.len()];
    let mut rejected = vec![0u64; registry.len()];
    let mut swaps = 0u64;
    for line in log.lines() {
        let v = parse_json(line).expect("sink wrote invalid JSON");
        let event = v.get("event").and_then(|e| e.as_str()).unwrap();
        let ty = v.get("type").and_then(|t| t.as_u64()).map(|t| t as usize);
        match (event, ty) {
            ("admitted", Some(t)) => admitted[t] += 1,
            ("rejected", Some(t)) => rejected[t] += 1,
            ("histogram_swap", _) => swaps += 1,
            _ => {}
        }
    }
    println!(
        "{} events logged ({} bouncer histogram swaps)\n",
        log.lines().count(),
        swaps
    );
    println!("{:<14} {:>10} {:>10} {:>10}", "type", "admitted", "rejected", "shed%");
    for (ty, name) in registry.iter() {
        let (a, r) = (admitted[ty.index()], rejected[ty.index()]);
        if a + r == 0 {
            continue;
        }
        println!(
            "{:<14} {:>10} {:>10} {:>9.1}%",
            name,
            a,
            r,
            100.0 * r as f64 / (a + r) as f64
        );
    }

    // 3. The same run's aggregate statistics as Prometheus text.
    let names: Vec<&str> = registry.iter().map(|(_, n)| n).collect();
    let metrics = render_prometheus(&result.stats, &names);
    let samples = validate_prometheus(&metrics).expect("renderer produced invalid text");
    println!("\nprometheus exposition ({samples} samples); excerpt:");
    for line in metrics
        .lines()
        .filter(|l| l.contains("rejected") || l.contains("utilization"))
        .take(12)
    {
        println!("  {line}");
    }

    let _ = std::fs::remove_file(&events_path);
}
