//! The query-lifecycle observability layer, end to end.
//!
//! Run with:
//! ```sh
//! cargo run --release --example observability
//! ```
//!
//! Runs a short overloaded simulation with Bouncer at the door and two
//! consumers attached:
//!
//! * a [`JsonlSink`] capturing every lifecycle and policy event as one JSON
//!   object per line (what the CLI's `--events-out` writes), and
//! * [`render_prometheus`], turning the run's final `StatsSnapshot` into
//!   the Prometheus text exposition format (what `--metrics-out` writes).
//!
//! The event log is then re-read to reconstruct a per-type admit/reject
//! tally — the kind of offline diagnosis OBSERVABILITY.md walks through.

use std::sync::Arc;

use bouncer_repro::core::obs::{parse_json, render_prometheus, validate_prometheus, JsonlSink};
use bouncer_repro::core::prelude::*;
use bouncer_repro::metrics::time::millis;
use bouncer_repro::sim::{run, SimConfig};
use bouncer_repro::workload::mix::paper_table1_mix;

fn main() {
    let mut registry = TypeRegistry::new();
    let mix = paper_table1_mix(&mut registry);
    let capacity = mix.qps_full_load(100);

    // 1. A JSONL event log on disk, exactly like `--events-out`.
    let events_path = std::env::temp_dir().join("bouncer-observability-demo.jsonl");
    let sink = JsonlSink::create(&events_path).expect("cannot create event log");

    let slos = SloConfig::uniform(&registry, Slo::p50_p90(millis(18), millis(50)));
    let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(100));

    let mut cfg = SimConfig::quick(capacity * 1.35, 7);
    cfg.measured_queries = 100_000;
    cfg.warmup_queries = 20_000;
    cfg.sink = Some(Arc::new(sink));

    println!(
        "running bouncer at 1.35x of capacity ({:.0} QPS), events -> {}\n",
        capacity * 1.35,
        events_path.display()
    );
    let result = run(&bouncer, &mix, &cfg);

    // 2. Re-read the log: every line is one JSON event.
    let log = std::fs::read_to_string(&events_path).expect("event log vanished");
    let mut admitted = vec![0u64; registry.len()];
    let mut rejected = vec![0u64; registry.len()];
    let mut swaps = 0u64;
    for line in log.lines() {
        let v = parse_json(line).expect("sink wrote invalid JSON");
        let event = v.get("event").and_then(|e| e.as_str()).unwrap();
        let ty = v.get("type").and_then(|t| t.as_u64()).map(|t| t as usize);
        match (event, ty) {
            ("admitted", Some(t)) => admitted[t] += 1,
            ("rejected", Some(t)) => rejected[t] += 1,
            ("histogram_swap", _) => swaps += 1,
            _ => {}
        }
    }
    println!(
        "{} events logged ({} bouncer histogram swaps)\n",
        log.lines().count(),
        swaps
    );
    println!("{:<14} {:>10} {:>10} {:>10}", "type", "admitted", "rejected", "shed%");
    for (ty, name) in registry.iter() {
        let (a, r) = (admitted[ty.index()], rejected[ty.index()]);
        if a + r == 0 {
            continue;
        }
        println!(
            "{:<14} {:>10} {:>10} {:>9.1}%",
            name,
            a,
            r,
            100.0 * r as f64 / (a + r) as f64
        );
    }

    // 3. The same run's aggregate statistics as Prometheus text.
    let names: Vec<&str> = registry.iter().map(|(_, n)| n).collect();
    let metrics = render_prometheus(&result.stats, &names);
    let samples = validate_prometheus(&metrics).expect("renderer produced invalid text");
    println!("\nprometheus exposition ({samples} samples); excerpt:");
    for line in metrics
        .lines()
        .filter(|l| l.contains("rejected") || l.contains("utilization"))
        .take(12)
    {
        println!("  {line}");
    }

    let _ = std::fs::remove_file(&events_path);
}
