//! Quickstart: put Bouncer in front of a tiny threaded service.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a `Gate` (the Figure 1 framework: admission policy, FIFO queue,
//! engine threads), configures two query classes with different latency
//! SLOs, floods the service beyond its capacity, and shows Bouncer keeping
//! serviced queries inside their objectives by shedding the class whose SLO
//! would be violated.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bouncer_repro::core::framework::{Gate, GateConfig, TakeOutcome};
use bouncer_repro::core::prelude::*;
use bouncer_repro::core::spec::{PolicyEnv, PolicySpec};
use bouncer_repro::metrics::time::millis;
use bouncer_repro::metrics::MonotonicClock;

fn main() {
    // 1. Declare the query types and their latency SLOs.
    let mut registry = TypeRegistry::new();
    let lookup = registry.register("Lookup");
    let report = registry.register("Report");
    let slos = SloConfig::builder(&registry)
        .default_slo(Slo::p50_p90(millis(50), millis(200)))
        .set(lookup, Slo::p50_p90(millis(10), millis(30)))
        .set(report, Slo::p50_p90(millis(25), millis(60)))
        .build();

    // 2. Build the policy from its one-line spec (the same grammar the
    //    CLI's --policy flag and the scenario files use) and the gate.
    //    Two engine threads => P = 2.
    const ENGINES: u32 = 2;
    let policy = PolicySpec::parse("bouncer interval=200ms")
        .expect("valid policy spec")
        .build(
            &PolicyEnv {
                registry: &registry,
                slos,
                parallelism: ENGINES,
            },
            0,
        );
    let clock = Arc::new(MonotonicClock::new());
    let gate: Arc<Gate<&'static str>> = Arc::new(Gate::new(
        policy,
        registry.len(),
        clock,
        GateConfig::default(),
    ));

    // 3. Engine threads: pull admitted queries, "process" them.
    let engines: Vec<_> = (0..ENGINES)
        .map(|_| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || loop {
                match gate.take(Some(Duration::from_millis(50))) {
                    TakeOutcome::Query(q) => {
                        // Lookups are cheap, reports are expensive.
                        let work = if q.payload == "Lookup" { 2 } else { 18 };
                        std::thread::sleep(Duration::from_millis(work));
                        gate.complete(q.ty, q.enqueued_at, q.dequeued_at);
                    }
                    TakeOutcome::Expired(_) => {} // no deadlines in this demo
                    TakeOutcome::TimedOut => {}
                    TakeOutcome::Closed => break,
                }
            })
        })
        .collect();

    // 4. Ticker: swap Bouncer's histograms periodically.
    let tick_gate = Arc::clone(&gate);
    let ticker = std::thread::spawn(move || {
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(4) {
            std::thread::sleep(Duration::from_millis(50));
            tick_gate.tick();
        }
    });

    // 5. Open-loop flood: ~70% reports by count => demanded capacity well
    //    above what two engines can serve.
    println!("flooding the service beyond capacity for 4s...");
    let start = Instant::now();
    let mut sent = 0u64;
    while start.elapsed() < Duration::from_secs(4) {
        let (ty, name) = if sent % 10 < 3 {
            (lookup, "Lookup")
        } else {
            (report, "Report")
        };
        let _ = gate.offer(ty, name);
        sent += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    ticker.join().unwrap();
    gate.close();
    for e in engines {
        e.join().unwrap();
    }

    // 6. Report what happened.
    let snap = gate.stats().snapshot(millis(4000), ENGINES);
    println!();
    print!(
        "{}",
        bouncer_repro::core::framework::render_snapshot(&snap, &registry)
    );
    println!("\nBouncer shed load from the class whose SLO would otherwise be");
    println!("violated, and the serviced queries stayed near their objectives.");
}
