//! A complete LIquid-like graph service over real TCP, guarded by Bouncer.
//!
//! Run with:
//! ```sh
//! cargo run --release --example graph_service
//! ```
//!
//! Spawns a mini cluster — shard hosts serving graph slices over TCP with
//! AcceptFraction admission control, a broker running Bouncer with the
//! acceptance-allowance strategy — exposes the broker itself over TCP (the
//! paper's REST-endpoint analog), and drives it from multiplexed TCP
//! clients: the complete network path, admission control at every tier.

use std::path::Path;

use bouncer_repro::core::prelude::*;
use bouncer_repro::core::spec::{PolicyEnv, ScenarioSpec};
use bouncer_repro::metrics::time::millis;
use liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use liquid::front::{RemoteOutcome, TcpBrokerClient, TcpBrokerServer};
use liquid::graph::GraphConfig;
use liquid::query::{Query, QueryKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let cfg = ClusterConfig {
        n_shards: 2,
        n_brokers: 1,
        graph: GraphConfig {
            vertices: 50_000,
            edges_per_vertex: 8,
            seed: 1,
        },
        transport: TransportKind::Tcp,
        ..ClusterConfig::default()
    };

    // The broker policy comes from the same scenario the Figure 11 study
    // runs: Bouncer with the acceptance-allowance strategy.
    let spec = ScenarioSpec::load(Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/fig11_liquid.scn"
    )))
    .unwrap_or_else(|e| panic!("{e}"));
    println!("scenario: {}", spec.tag());
    let policy_spec = spec.policy("aa").unwrap_or_else(|e| panic!("{e}")).clone();
    let seed = spec.seed;

    println!("spawning {} shards + {} broker over TCP...", cfg.n_shards, cfg.n_brokers);
    let cluster = Cluster::spawn(&cfg, move |registry, engines| {
        let env = PolicyEnv {
            registry,
            slos: SloConfig::uniform(registry, Slo::p50_p90(millis(18), millis(50))),
            parallelism: engines,
        };
        policy_spec.build(&env, seed)
    });
    let vertices = cluster.vertices();

    // Expose the broker over TCP — external clients reach the cluster the
    // way the paper's clients reach LIquid's REST endpoints.
    let front = TcpBrokerServer::serve(std::sync::Arc::clone(&cluster.brokers()[0]), "127.0.0.1:0")
        .expect("failed to serve broker");
    println!("broker front door listening on {}", front.addr());
    let client =
        std::sync::Arc::new(TcpBrokerClient::connect(front.addr(), 4).expect("connect failed"));

    // A burst of queries across every template, issued from a few remote
    // client threads to put pressure on the queues.
    println!("issuing 4,000 mixed queries from 8 remote client threads...\n");
    std::thread::scope(|scope| {
        for t in 0..8 {
            let client = std::sync::Arc::clone(&client);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                for i in 0..500u32 {
                    let kind = QueryKind::ALL[(i as usize + t as usize) % 11];
                    let q = Query::random(kind, vertices, &mut rng);
                    let _ = client.execute(q);
                }
            });
        }
    });

    let snap = cluster.brokers()[0]
        .stats()
        .snapshot(1, cluster.brokers()[0].parallelism());
    println!(
        "{:<6} {:>9} {:>9} {:>10} {:>12}",
        "type", "received", "rejected", "serviced", "rt_p50 (ms)"
    );
    for (i, t) in snap.per_type.iter().enumerate().skip(1) {
        if t.received == 0 {
            continue;
        }
        let name = cluster.registry().name(TypeId::from_index(i as u32));
        println!(
            "{:<6} {:>9} {:>9} {:>10} {:>12.2}",
            name,
            t.received,
            t.rejected(),
            t.completed,
            t.response
                .value_at_quantile(0.5)
                .map(|ns| ns as f64 / 1e6)
                .unwrap_or(f64::NAN),
        );
    }

    match client.execute(Query {
        kind: QueryKind::Qt10Distance3,
        u: 1,
        v: 4_242,
    }) {
        RemoteOutcome::Ok(d) => println!("\ngraph distance 1 -> 4242: {d} hops"),
        other => println!("\ndistance query outcome: {other:?}"),
    }

    front.stop();
    cluster.shutdown();
    println!("cluster stopped cleanly.");
}
