//! Figures 6, 7, and 8 (§5.3.1): basic Bouncer vs the in-house policies.
//!
//! Everything comes from `scenarios/fig06_policies.scn` — the four labeled
//! policies (with the Table 2 parameters), the rate sweep, and the seed.
//! One sweep over 0.9–1.5 × QPS_full_load produces all three series:
//!
//! * **Figure 6** — median response time (rt_p50) for *slow* queries, whose
//!   SLO is the tightest. Paper shape: Bouncer stays at/under the 18 ms
//!   SLO; MaxQL plateaus ≈ 40 ms (queue cap); MaxQWT plateaus ≈ 22 ms (wait
//!   cap + slow pt_p50); AcceptFraction grows without bound (no queue
//!   limits in the simulation).
//! * **Figure 7** — engine utilization. All policies approach 100 % except
//!   AcceptFraction, limited by its 95 % threshold.
//! * **Figure 8** — overall rejection percentage. Bouncer lowest (it
//!   targets the costly types); AcceptFraction highest.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{ms_opt, pct, Table};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("fig06_policies.scn");
    println!(
        "QPS_full_load = {:.0} (paper: ~15,100) at P = 100",
        study.full_load()
    );
    let slow = study.ty("slow");

    let header = vec!["factor", "Bouncer", "MaxQL", "MaxQWT", "AcceptFrac"];
    let mut fig6 = Table::new(header.clone());
    let mut fig7 = Table::new(header.clone());
    let mut fig8 = Table::new(header);

    for &factor in study.rate_factors() {
        let mut rt = vec![format!("{factor:.2}x")];
        let mut util = vec![format!("{factor:.2}x")];
        let mut rej = vec![format!("{factor:.2}x")];
        for (_, policy) in &study.spec().policies {
            let avg = study.run_avg(policy, factor, &mode);
            rt.push(ms_opt(avg.rt_p50(slow)));
            util.push(pct(avg.util_pct));
            rej.push(pct(avg.rej_all_pct));
        }
        fig6.row(rt);
        fig7.row(util);
        fig8.row(rej);
        eprint!(".");
    }
    eprintln!();

    let tag = study.tag();
    fig6.print_tagged("Figure 6 — rt_p50 of `slow` queries, ms (SLO_p50 = 18 ms)", &tag);
    println!("paper: Bouncer <=18 throughout; MaxQL plateaus ~40; MaxQWT ~22; AcceptFraction grows unbounded");
    fig7.print_tagged("Figure 7 — engine utilization, %", &tag);
    println!("paper: all policies ~100% past full load; AcceptFraction capped at ~95%");
    fig8.print_tagged("Figure 8 — overall rejections, %", &tag);
    println!("paper: Bouncer lowest (11.3% at 1.5x); AcceptFraction highest");
}
