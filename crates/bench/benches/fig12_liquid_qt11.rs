//! Figure 12 (§5.4): response times of serviced QT11 queries on the real
//! system — (a) rt_p50 and (b) rt_p90 — for every broker policy.
//!
//! QT11 has the largest processing time (tightest SLO) and the largest mix
//! share. Paper shape: Bouncer (both variants) and MaxQWT keep rt_p50 near
//! SLO_p50 = 18 ms and rt_p90 comfortably under SLO_p90 = 50 ms, while
//! MaxQL and AcceptFraction blow past both (>4× / >2×) from the saturation
//! point on; helping-the-underserved slightly exceeds SLO_p50 at the two
//! highest rates, acceptance-allowance stays under.

use bouncer_bench::liquidstudy::{
    accept_fraction_factory, bouncer_aa_factory, bouncer_htu_factory, maxql_factory,
    maxqwt_factory, LiquidStudy, RATE_FACTORS,
};
use bouncer_bench::runmode::RunMode;
use bouncer_bench::table::{ms_opt, Table};
use liquid::query::QueryKind;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = LiquidStudy::new(&mode);
    println!("measured capacity: {:.0} QPS", study.capacity_qps);

    let policies = [
        ("Bouncer+AA(0.05)", bouncer_aa_factory()),
        ("Bouncer+HTU(1.0)", bouncer_htu_factory()),
        ("MaxQL(800)", maxql_factory()),
        ("MaxQWT(12ms)", maxqwt_factory()),
        ("AcceptFraction(80%)", accept_fraction_factory()),
    ];

    let mut fig_a = Table::new(vec![
        "rate", "B+AA", "B+HTU", "MaxQL", "MaxQWT", "AcceptFrac",
    ]);
    let mut fig_b = Table::new(vec![
        "rate", "B+AA", "B+HTU", "MaxQL", "MaxQWT", "AcceptFrac",
    ]);

    for &(label, factor) in &RATE_FACTORS {
        let rate = study.capacity_qps * factor;
        let mut row_a = vec![label.to_string()];
        let mut row_b = vec![label.to_string()];
        for (_, factory) in &policies {
            let point = study.run_point(factory.as_ref(), rate, 17, &mode);
            row_a.push(ms_opt(point.broker_rt_ms(QueryKind::Qt11Distance4, 0.5)));
            row_b.push(ms_opt(point.broker_rt_ms(QueryKind::Qt11Distance4, 0.9)));
            eprint!(".");
        }
        fig_a.row(row_a);
        fig_b.row(row_b);
    }
    eprintln!();

    fig_a.print("Figure 12a — rt_p50 of serviced QT11, ms (SLO_p50 = 18 ms)");
    fig_b.print("Figure 12b — rt_p90 of serviced QT11, ms (SLO_p90 = 50 ms)");
    println!("paper: Bouncer variants and MaxQWT stay near/under the SLOs;");
    println!("MaxQL and AcceptFraction exceed SLO_p50 by >4x and SLO_p90 by >2x");
    println!("at the two highest rates; HTU slightly exceeds SLO_p50 there.");
}
