//! Figure 12 (§5.4): response times of serviced QT11 queries on the real
//! system — (a) rt_p50 and (b) rt_p90 — for every broker policy, from
//! `scenarios/fig12_liquid.scn`.
//!
//! QT11 has the largest processing time (tightest SLO) and the largest mix
//! share. Paper shape: Bouncer (both variants) and MaxQWT keep rt_p50 near
//! SLO_p50 = 18 ms and rt_p90 comfortably under SLO_p90 = 50 ms, while
//! MaxQL and AcceptFraction blow past both (>4× / >2×) from the saturation
//! point on; helping-the-underserved slightly exceeds SLO_p50 at the two
//! highest rates, acceptance-allowance stays under.

use bouncer_bench::liquidstudy::LiquidStudy;
use bouncer_bench::runmode::RunMode;
use bouncer_bench::table::{ms_opt, Table};
use liquid::query::QueryKind;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = LiquidStudy::load("fig12_liquid.scn", &mode);
    println!("measured capacity: {:.0} QPS", study.capacity_qps);
    let seed = study.spec().seed;

    let policies = [
        study.policy("aa").clone(),
        study.policy("htu").clone(),
        study.policy("maxql").clone(),
        study.policy("maxqwt").clone(),
        study.policy("af").clone(),
    ];

    let mut fig_a = Table::new(vec![
        "rate", "B+AA", "B+HTU", "MaxQL", "MaxQWT", "AcceptFrac",
    ]);
    let mut fig_b = Table::new(vec![
        "rate", "B+AA", "B+HTU", "MaxQL", "MaxQWT", "AcceptFrac",
    ]);

    for (label, factor) in study.rate_points().to_vec() {
        let rate = study.capacity_qps * factor;
        let mut row_a = vec![label.clone()];
        let mut row_b = vec![label.clone()];
        for policy in &policies {
            let point = study.run_point(policy, rate, seed, &mode);
            row_a.push(ms_opt(point.broker_rt_ms(QueryKind::Qt11Distance4, 0.5)));
            row_b.push(ms_opt(point.broker_rt_ms(QueryKind::Qt11Distance4, 0.9)));
            eprint!(".");
        }
        fig_a.row(row_a);
        fig_b.row(row_b);
    }
    eprintln!();

    fig_a.print_tagged(
        "Figure 12a — rt_p50 of serviced QT11, ms (SLO_p50 = 18 ms)",
        &study.tag(),
    );
    fig_b.print_tagged(
        "Figure 12b — rt_p90 of serviced QT11, ms (SLO_p90 = 50 ms)",
        &study.tag(),
    );
    println!("paper: Bouncer variants and MaxQWT stay near/under the SLOs;");
    println!("MaxQL and AcceptFraction exceed SLO_p50 by >4x and SLO_p90 by >2x");
    println!("at the two highest rates; HTU slightly exceeds SLO_p50 there.");
}
