//! Figure 10 (§5.3.3): rt_p50 of *slow* queries as the strategy parameters
//! vary, at 1.5 × full load.
//!
//! Paper shape: both strategies sit above 20 ms (they accept requests basic
//! Bouncer would reject) and rt_p50 grows only slowly with A or α (< 10 %
//! increase across the whole range).

use std::sync::Arc;

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{ms_opt, Table};
use bouncer_core::policy::AdmissionPolicy;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::new();
    let slow = study.ty("slow");

    let params: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let allowances: [f64; 10] = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10];

    let mut table = Table::new(vec![
        "point",
        "allowance A",
        "rt_p50 (AA)",
        "alpha",
        "rt_p50 (HTU)",
    ]);
    for i in 0..params.len() {
        let a = allowances[i];
        let alpha = params[i];
        let make_aa: Box<dyn Fn(u64) -> Arc<dyn AdmissionPolicy>> =
            Box::new(|seed| Arc::new(study.bouncer_allowance(a, seed)));
        let make_htu: Box<dyn Fn(u64) -> Arc<dyn AdmissionPolicy>> =
            Box::new(|seed| Arc::new(study.bouncer_underserved(alpha, seed)));
        let ra = study.run_avg(make_aa.as_ref(), 1.5, &mode);
        let rh = study.run_avg(make_htu.as_ref(), 1.5, &mode);
        table.row(vec![
            format!("{}", i + 1),
            format!("{a}"),
            ms_opt(ra.rt_p50(slow)),
            format!("{alpha}"),
            ms_opt(rh.rt_p50(slow)),
        ]);
        eprint!(".");
    }
    eprintln!();

    table.print("Figure 10 — rt_p50 of `slow` (ms) vs strategy parameters, at 1.5x");
    println!("paper: both strategies above 20 ms (SLO_p50 = 18 ms), growing <10%");
    println!("across the parameter range.");
}
