//! Figure 10 (§5.3.3): rt_p50 of *slow* queries as the strategy parameters
//! vary, at 1.5 × full load. The parameter lists come from
//! `scenarios/fig10_param_rt.scn` (`param.allowance`, `param.alpha`).
//!
//! Paper shape: both strategies sit above 20 ms (they accept requests basic
//! Bouncer would reject) and rt_p50 grows only slowly with A or α (< 10 %
//! increase across the whole range).

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{ms_opt, Table};
use bouncer_core::spec::PolicySpec;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("fig10_param_rt.scn");
    let slow = study.ty("slow");
    let factor = study.rate_factors()[0]; // 1.5x
    let allowances = study.spec().param("allowance").unwrap().to_vec();
    let alphas = study.spec().param("alpha").unwrap().to_vec();

    let mut table = Table::new(vec![
        "point",
        "allowance A",
        "rt_p50 (AA)",
        "alpha",
        "rt_p50 (HTU)",
    ]);
    for (i, (&a, &alpha)) in allowances.iter().zip(&alphas).enumerate() {
        let ra = study.run_avg(&PolicySpec::allowance(a), factor, &mode);
        let rh = study.run_avg(&PolicySpec::underserved(alpha), factor, &mode);
        table.row(vec![
            format!("{}", i + 1),
            format!("{a}"),
            ms_opt(ra.rt_p50(slow)),
            format!("{alpha}"),
            ms_opt(rh.rt_p50(slow)),
        ]);
        eprint!(".");
    }
    eprintln!();

    table.print_tagged(
        "Figure 10 — rt_p50 of `slow` (ms) vs strategy parameters, at 1.5x",
        &study.tag(),
    );
    println!("paper: both strategies above 20 ms (SLO_p50 = 18 ms), growing <10%");
    println!("across the parameter range.");
}
