//! The broker→shard data-path benchmark behind `BENCH_datapath.json`.
//!
//! Measures the per-query cost of the fan-out/fan-in pipeline at 4 shards
//! under the published QT1..QT11 mix. The transports come from the
//! scenario's `param.transport` sweep; the queue-based ones (`channels`,
//! `tcp`) run in two variants:
//!
//! * `batched`   — the shipped path: one `SubQueryBatch` per (round, shard),
//!   shared `Arc` payloads, flattened [`IdLists`] replies, pooled frames.
//! * `unbatched` — the retained reference (`batch_fanout: false`), which
//!   reproduces the pre-batching data path: one message + one reply channel
//!   per sub-query, per-sub-query payload copies, and per-vertex list
//!   materialization. This is the "before" column.
//!
//! `rings` is the thread-per-core SPSC data path; batching is structural
//! there (one ring message per shard per round), so it reports a single
//! variant, keyed `inproc/rings` next to its channel siblings.
//!
//! Two metrics per (transport, variant): wall-clock time per query
//! (criterion), and global-allocator allocation events per query
//! (`*_allocs` rows, printed in the same line format so
//! `scripts/check.sh` parses both into one JSON file — those entries are
//! counts, not nanoseconds).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bouncer_bench::liquidstudy::{liquid_mix, liquid_slos};
use bouncer_bench::simstudy::scenario_path;
use bouncer_core::spec::{PolicyEnv, ScenarioSpec};
use criterion::{black_box, criterion_group, criterion_main, fmt_ns, Criterion};
use liquid::broker::BrokerConfig;
use liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use liquid::graph::GraphConfig;
use liquid::query::{Query, QueryKind};
use liquid::shard::ShardConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Counts allocation events (alloc + realloc) across every thread — the
/// broker engines, shard engines, and transport threads all work on behalf
/// of the measured queries, so their allocations are part of the data path.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

fn datapath_spec() -> ScenarioSpec {
    let path = scenario_path("liquid_datapath.scn");
    ScenarioSpec::load(&path).unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()))
}

fn cluster_config(spec: &ScenarioSpec, transport: TransportKind, batch_fanout: bool) -> ClusterConfig {
    ClusterConfig {
        n_shards: spec.liquid().unwrap_or_else(|e| panic!("{e}")).shards as usize,
        n_brokers: 1,
        // A smaller graph than the study default keeps smoke runs quick
        // while the BFS- and network-heavy mix still dominates the fan-out.
        graph: GraphConfig {
            vertices: 20_000,
            edges_per_vertex: 8,
            seed: 0x11D,
        },
        shard: ShardConfig {
            engines: 2,
            ..ShardConfig::default()
        },
        broker: BrokerConfig {
            engines: 2,
            batch_fanout,
            ..BrokerConfig::default()
        },
        transport,
        tcp_connections: 2,
        // Pin the shard tier's AcceptFraction out of reach, mirroring
        // `policy = always` on the broker: this bench measures transport
        // cost of serviced queries, and on an oversubscribed host the
        // inflated processing times would otherwise trip probabilistic
        // sheds that perturb the measured path.
        shard_max_utilization: 1e9,
        ..ClusterConfig::default()
    }
}

/// Queries drawn from the published mix — the same distribution the
/// overload points (1.25×–2.08× capacity) replay, so per-query cost is
/// weighted exactly like the §5.4 study traffic.
fn mix_queries(seed: u64, vertices: u32, count: usize) -> Vec<Query> {
    let mix = liquid_mix();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let class = mix.sample_class(&mut rng);
            let kind = QueryKind::from_index(class.ty.index() - 1).expect("kind");
            Query::random(kind, vertices, &mut rng)
        })
        .collect()
}

/// Allocation events per query over `passes` sequential sweeps of the mix,
/// after warm-up sweeps so pools and hash sets reach steady state. Scratch
/// capacities (payload pools, visited sets, reply buffers) approach their
/// high-water marks asymptotically, and the rings transport rotates
/// through `RING_CAP` per-slot staging buffers — a pass whose message
/// count is not a multiple of the ring capacity starts each sweep at a
/// different slot alignment, so one clean sweep does not prove every
/// slot has met its worst-case batch. Warm-up therefore repeats until 8
/// consecutive sweeps (one full rotation period) allocate nothing, or 48
/// sweeps, whichever comes first (the queue-based paths allocate on
/// every query and would never converge).
fn allocs_per_query(cluster: &Cluster, queries: &[Query], passes: usize) -> (f64, u64) {
    // Resolved once up front: `env::var` allocates its result, which would
    // otherwise pollute the very windows this function measures.
    let debug = std::env::var("ALLOC_DEBUG").is_ok();
    let mut clean = 0u32;
    for pass in 0..48 {
        let before = ALLOC_EVENTS.load(Ordering::SeqCst);
        for &q in queries {
            black_box(cluster.execute(q));
        }
        let grew = ALLOC_EVENTS.load(Ordering::SeqCst) - before;
        if debug {
            println!("warmup pass {pass}: {grew} allocs");
        }
        if grew == 0 {
            clean += 1;
            if clean >= 8 {
                break;
            }
        } else {
            clean = 0;
        }
    }
    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    let mut executed = 0u64;
    for _ in 0..passes {
        for &q in queries {
            black_box(cluster.execute(q));
            executed += 1;
        }
    }
    let after = ALLOC_EVENTS.load(Ordering::SeqCst);
    ((after - before) as f64 / executed as f64, executed)
}

/// Prints an allocation-count row in criterion's line format so the
/// check.sh awk block ingests it alongside the timing rows. The value is
/// a count; fmt_ns's unit scaling is undone by the parser's ns
/// normalization, so the JSON number equals the raw count.
fn report_allocs(id: &str, per_query: f64, iters: u64) {
    println!(
        "{id:<44} time: [{} {} {}]  ({} iters)",
        fmt_ns(per_query),
        fmt_ns(per_query),
        fmt_ns(per_query),
        iters
    );
}

fn bench_datapath(c: &mut Criterion) {
    let smoke = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms <= 100);
    let n_queries = if smoke { 48 } else { 192 };
    let alloc_passes = if smoke { 2 } else { 5 };
    let spec = datapath_spec();
    println!("scenario: {}", spec.tag());
    let broker_policy = spec.first_policy().unwrap_or_else(|e| panic!("{e}")).clone();

    let sweep: Vec<String> = spec
        .sparam("transport")
        .unwrap_or_else(|e| panic!("{e}"))
        .to_vec();
    for name in &sweep {
        let (transport, tname, variants): (TransportKind, &str, &[(bool, &str)]) =
            match name.as_str() {
                "channels" => (
                    TransportKind::InProc,
                    "inproc",
                    &[(true, "batched"), (false, "unbatched")],
                ),
                "rings" => (TransportKind::Rings, "inproc", &[(true, "rings")]),
                "tcp" => (
                    TransportKind::Tcp,
                    "tcp",
                    &[(true, "batched"), (false, "unbatched")],
                ),
                other => panic!("unknown transport `{other}` in param.transport"),
            };
        for &(batch, vname) in variants {
            let policy = broker_policy.clone();
            let seed = spec.seed;
            let cluster =
                Cluster::spawn(&cluster_config(&spec, transport, batch), move |reg, engines| {
                    let env = PolicyEnv {
                        registry: reg,
                        slos: liquid_slos(reg),
                        parallelism: engines,
                    };
                    policy.build(&env, seed)
                });
            let queries = mix_queries(spec.seed, cluster.vertices(), n_queries);

            let mut i = 0usize;
            c.bench_function(&format!("liquid_datapath/{tname}/{vname}"), |b| {
                b.iter(|| {
                    let q = queries[i % queries.len()];
                    i += 1;
                    black_box(cluster.execute(q))
                })
            });

            let (per_query, executed) = allocs_per_query(&cluster, &queries, alloc_passes);
            report_allocs(
                &format!("liquid_datapath/{tname}/{vname}_allocs"),
                per_query,
                executed,
            );
            cluster.shutdown();
        }
    }
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
