//! Table 3 (§5.3.2): per-type rejection percentages for Bouncer with and
//! without the starvation-avoidance strategies, at 0.9–1.5 × full load,
//! from `scenarios/table3_rejections.scn`.
//!
//! Paper reference (basic Bouncer, `slow` row): 0.01, 0.53, 5.02, 15.89,
//! 29.27, 41.84, 53.63, 64.37, 74.18, 82.88, 90.37, 95.68, 98.46; overall
//! 11.30 % at 1.5×. With allowance A = 0.1 the `slow` rejections cap near
//! 88 % while `medium slow` picks up to ~11 %; with α = 1.0 underserved
//! caps `slow` near 71 % and `medium slow` rises to ~20 %.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{SimStudy, TYPE_NAMES};
use bouncer_bench::table::{pct, Table};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("table3_rejections.scn");
    let factors = study.rate_factors().to_vec();

    let variants = [
        ("basic", "Bouncer (basic formulation)"),
        ("allowance", "Bouncer + acceptance-allowance (A=0.1)"),
        ("underserved", "Bouncer + helping-the-underserved (alpha=1.0)"),
    ];
    for (label, display) in variants {
        let policy = study.policy(label).clone();
        let mut header: Vec<String> = vec!["query type".into()];
        header.extend(factors.iter().map(|f| format!("{f:.2}x")));
        let mut table = Table::new(header);

        // One sweep, transposed into per-type rows like the paper's table.
        let mut cells: Vec<Vec<String>> = vec![Vec::new(); TYPE_NAMES.len() + 1];
        for &factor in &factors {
            let avg = study.run_avg(&policy, factor, &mode);
            for (i, name) in TYPE_NAMES.iter().enumerate() {
                let ty = study.ty(name);
                let v = avg.rej_pct[ty.index()];
                cells[i].push(if v == 0.0 { "-0-".into() } else { pct(v) });
            }
            cells[TYPE_NAMES.len()].push(pct(avg.rej_all_pct));
            eprint!(".");
        }
        for (i, name) in TYPE_NAMES.iter().enumerate() {
            let mut row = vec![name.to_string()];
            row.append(&mut cells[i]);
            table.row(row);
        }
        let mut row = vec!["ALL".to_string()];
        row.append(&mut cells[TYPE_NAMES.len()]);
        table.row(row);

        table.print_tagged(&format!("Table 3 — rejection % — {display}"), &study.tag());
    }
    eprintln!();
    println!("paper (basic, slow): 0.01 0.53 5.02 15.89 29.27 41.84 53.63 64.37 74.18 82.88 90.37 95.68 98.46");
    println!("paper (basic, ALL):  0.00 0.05 0.50 1.59 2.93 4.18 5.36 6.44 7.43 8.36 9.28 10.25 11.30");
    println!("paper (A=0.1, slow caps ~88; alpha=1.0, slow caps ~71 with medium-slow spillover)");
}
