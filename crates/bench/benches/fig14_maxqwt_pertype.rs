//! Figure 14 (§5.5): Bouncer vs MaxQWT with wait-time limits set *per
//! query type*, from `scenarios/fig14_maxqwt_pertype.scn`.
//!
//! The paper's point: "with properly chosen wait time limits per query
//! type, MaxQWT can match Bouncer's behavior in terms of serviced queries
//! meeting latency SLOs and overall rejections. But finding the right
//! values is a time-consuming task of experimental tuning" — Bouncer gets
//! the same outcome directly from the SLOs.
//!
//! The per-type limits are derived the way an operator would tune them:
//! `limit(type) = SLO_p50 − pt_p50(type)` (the wait budget that keeps the
//! median inside the SLO), floored at 1 ms.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{ms_opt, pct, Table};
use bouncer_core::spec::{defaults, PolicySpec};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("fig14_maxqwt_pertype.scn");
    let slow = study.ty("slow");
    let bouncer = study.spec().first_policy().unwrap().clone();

    // Tuned per-type wait budgets: SLO_p50 (18 ms) minus each type's
    // pt_p50 from Table 1, floored at 1 ms. `default` gets the loosest.
    let mut limits_ms = vec![defaults::SLO_P50_MS]; // default type
    for class in study.mix().classes() {
        limits_ms.push((defaults::SLO_P50_MS - class.processing_ms.median()).max(1.0));
    }
    println!("per-type wait limits (ms): {limits_ms:?}");
    let maxqwt = PolicySpec::MaxQwtPerType {
        wait_ms: limits_ms,
    };

    let mut fig_a = Table::new(vec!["factor", "Bouncer", "MaxQWT/type"]);
    let mut fig_b = Table::new(vec!["factor", "Bouncer", "MaxQWT/type"]);

    for &factor in study.rate_factors() {
        let rb = study.run_avg(&bouncer, factor, &mode);
        let rm = study.run_avg(&maxqwt, factor, &mode);
        fig_a.row(vec![
            format!("{factor:.2}x"),
            ms_opt(rb.rt_p50(slow)),
            ms_opt(rm.rt_p50(slow)),
        ]);
        fig_b.row(vec![
            format!("{factor:.2}x"),
            pct(rb.rej_all_pct),
            pct(rm.rej_all_pct),
        ]);
        eprint!(".");
    }
    eprintln!();

    let tag = study.tag();
    fig_a.print_tagged("Figure 14a — rt_p50 of `slow` (ms): Bouncer vs per-type MaxQWT", &tag);
    fig_b.print_tagged("Figure 14b — overall rejections (%): Bouncer vs per-type MaxQWT", &tag);
    println!("paper: with tuned per-type limits MaxQWT matches Bouncer on both");
    println!("series — but only after laborious tuning that must be redone per");
    println!("workload, whereas Bouncer takes the SLOs directly.");
}
