//! Figure 14 (§5.5): Bouncer vs MaxQWT with wait-time limits set *per
//! query type*.
//!
//! The paper's point: "with properly chosen wait time limits per query
//! type, MaxQWT can match Bouncer's behavior in terms of serviced queries
//! meeting latency SLOs and overall rejections. But finding the right
//! values is a time-consuming task of experimental tuning" — Bouncer gets
//! the same outcome directly from the SLOs.
//!
//! The per-type limits are derived the way an operator would tune them:
//! `limit(type) = SLO_p50 − pt_p50(type)` (the wait budget that keeps the
//! median inside the SLO), floored at 1 ms.

use std::sync::Arc;

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{SimStudy, PARALLELISM, RATE_FACTORS};
use bouncer_bench::table::{ms_opt, pct, Table};
use bouncer_core::policy::{AdmissionPolicy, MaxQueueWaitTime};
use bouncer_metrics::time::millis_f64;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::new();
    let slow = study.ty("slow");

    // Tuned per-type wait budgets: SLO_p50 (18 ms) minus each type's
    // pt_p50 from Table 1, floored at 1 ms. `default` gets the loosest.
    let mut limits = vec![millis_f64(18.0)]; // default type
    for class in study.mix.classes() {
        let budget = (18.0 - class.processing_ms.median()).max(1.0);
        limits.push(millis_f64(budget));
    }
    println!(
        "per-type wait limits (ms): {:?}",
        limits.iter().map(|&l| l as f64 / 1e6).collect::<Vec<_>>()
    );

    let mut fig_a = Table::new(vec!["factor", "Bouncer", "MaxQWT/type"]);
    let mut fig_b = Table::new(vec!["factor", "Bouncer", "MaxQWT/type"]);

    for &factor in &RATE_FACTORS {
        let make_b: Box<dyn Fn(u64) -> Arc<dyn AdmissionPolicy>> =
            Box::new(|_s| Arc::new(study.bouncer()));
        let limits_clone = limits.clone();
        let make_m: Box<dyn Fn(u64) -> Arc<dyn AdmissionPolicy>> = Box::new(move |_s| {
            Arc::new(MaxQueueWaitTime::with_per_type_limits(
                limits_clone.clone(),
                PARALLELISM,
            ))
        });
        let rb = study.run_avg(make_b.as_ref(), factor, &mode);
        let rm = study.run_avg(make_m.as_ref(), factor, &mode);
        fig_a.row(vec![
            format!("{factor:.2}x"),
            ms_opt(rb.rt_p50(slow)),
            ms_opt(rm.rt_p50(slow)),
        ]);
        fig_b.row(vec![
            format!("{factor:.2}x"),
            pct(rb.rej_all_pct),
            pct(rm.rej_all_pct),
        ]);
        eprint!(".");
    }
    eprintln!();

    fig_a.print("Figure 14a — rt_p50 of `slow` (ms): Bouncer vs per-type MaxQWT");
    fig_b.print("Figure 14b — overall rejections (%): Bouncer vs per-type MaxQWT");
    println!("paper: with tuned per-type limits MaxQWT matches Bouncer on both");
    println!("series — but only after laborious tuning that must be redone per");
    println!("workload, whereas Bouncer takes the SLOs directly.");
}
