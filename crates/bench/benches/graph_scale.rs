//! The graph-engine scale benchmark behind `BENCH_graph.json`.
//!
//! Prices the CSR graph engine against the retained Vec-of-Vecs
//! reference (`liquid::graph::reference::VecGraph`, the pre-CSR adjacency
//! representation) at 100k and 1M vertices — and 4M with `GRAPH_SCALE_XL`
//! set, kept out of the default run to bound CI memory. Both generators
//! draw the identical preferential-attachment edge sequence (the CSR
//! generator's stamp-array dedup replays the legacy RNG accept/reject
//! stream bit-for-bit), so every row compares the same graph.
//!
//! Four metrics per scale, each in the `csr` (after) vs `vecvec`/`binary`
//! (before) pairing `scripts/check.sh` gates on:
//!
//! * `build/*` — full generate-and-assemble wall time, one measured build
//!   per representation (generation dominates both sides equally, so the
//!   ratio prices the assembly paths).
//! * `bytes_per_edge/*` — resident heap bytes per stored adjacency entry,
//!   malloc chunk overhead included (counts, not nanoseconds; the ADR-001
//!   G1 target requires csr <= 0.5x vecvec, no tolerance).
//! * `neighbors/*` — random-vertex frontier walk: sum every neighbor of a
//!   shuffled vertex sample through the O(1)-slice API.
//! * `intersect/*` — adjacency-list intersection over random vertex
//!   pairs: the adaptive merge/gallop kernel vs the retained per-element
//!   binary-search filter.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, fmt_ns, Criterion};
use liquid::graph::{intersect_count, reference, Graph, GraphConfig, VertexId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Prints a single-measurement row in criterion's line format so the
/// check.sh awk block ingests it alongside the timed rows. `bytes_per_edge`
/// rows carry counts; fmt_ns's unit scaling is undone by the parser's ns
/// normalization, so the JSON number equals the raw value.
fn report_row(id: &str, value: f64, iters: u64) {
    println!(
        "{id:<44} time: [{} {} {}]  ({} iters)",
        fmt_ns(value),
        fmt_ns(value),
        fmt_ns(value),
        iters
    );
}

fn bench_graph_scale(c: &mut Criterion) {
    let mut scales: Vec<(&str, u32)> = vec![("100k", 100_000), ("1m", 1_000_000)];
    if std::env::var("GRAPH_SCALE_XL").is_ok() {
        scales.push(("4m", 4_000_000));
    }

    for (label, vertices) in scales {
        // m = 4 matches scenarios/liquid_mega.scn: small adjacency lists
        // are where the Vec-of-Vecs representation wastes the most (header
        // + chunk overhead + growth slack per vertex), i.e. the regime the
        // CSR engine exists for.
        let cfg = GraphConfig {
            vertices,
            edges_per_vertex: 4,
            seed: 0x11D,
        };

        let t = Instant::now();
        let graph = Graph::generate(&cfg);
        let csr_build_ns = t.elapsed().as_nanos() as f64;
        let t = Instant::now();
        let vecg = reference::VecGraph::generate(&cfg);
        let vec_build_ns = t.elapsed().as_nanos() as f64;
        assert_eq!(
            graph.edge_count(),
            vecg.edge_count(),
            "generators diverged at {label}"
        );
        report_row(&format!("graph_scale/build/csr_{label}"), csr_build_ns, 1);
        report_row(&format!("graph_scale/build/vecvec_{label}"), vec_build_ns, 1);

        let entries = (2 * graph.edge_count()) as f64;
        report_row(
            &format!("graph_scale/bytes_per_edge/csr_{label}"),
            graph.csr().heap_bytes() as f64 / entries,
            1,
        );
        report_row(
            &format!("graph_scale/bytes_per_edge/vecvec_{label}"),
            vecg.heap_bytes() as f64 / entries,
            1,
        );

        // A shuffled vertex sample: random access, the worst case for both
        // representations and the shape shard frontier walks take.
        let mut rng = SmallRng::seed_from_u64(0xF00D ^ u64::from(vertices));
        let ids: Vec<VertexId> = (0..4096).map(|_| rng.random_range(0..vertices)).collect();
        c.bench_function(&format!("graph_scale/neighbors/csr_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &v in &ids {
                    for &t in graph.neighbors(v) {
                        acc += u64::from(t);
                    }
                }
                black_box(acc)
            })
        });
        c.bench_function(&format!("graph_scale/neighbors/vecvec_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &v in &ids {
                    for &t in vecg.neighbors(v) {
                        acc += u64::from(t);
                    }
                }
                black_box(acc)
            })
        });

        // Random adjacency-list pairs, the CountIntersect shard kernel's
        // input shape: mostly short-vs-short lists with the occasional hub
        // (preferential attachment's heavy tail) where galloping pays.
        let pairs: Vec<(VertexId, VertexId)> = (0..2048)
            .map(|_| (rng.random_range(0..vertices), rng.random_range(0..vertices)))
            .collect();
        c.bench_function(&format!("graph_scale/intersect/adaptive_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(u, v) in &pairs {
                    acc += intersect_count(graph.neighbors(u), graph.neighbors(v));
                }
                black_box(acc)
            })
        });
        c.bench_function(&format!("graph_scale/intersect/binary_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(u, v) in &pairs {
                    acc += reference::VecGraph::intersect_count_binary(
                        vecg.neighbors(u),
                        vecg.neighbors(v),
                    );
                }
                black_box(acc)
            })
        });
    }
}

criterion_group!(benches, bench_graph_scale);
criterion_main!(benches);
