//! The headline adaptive study (ADAPTIVE.md): the traffic mix of
//! `scenarios/adaptive_shift.scn` shifts toward the slow classes at
//! t = 5s, costing ~24% of effective capacity mid-run. The `adaptive`
//! variant runs closed-loop (the scenario's AIMD controller retunes the
//! AcceptFraction guard's `max_utilization` once per second from live
//! SLO attainment); every `static_*` variant is the same policy pinned
//! at a fixed cap with the controller detached.
//!
//! Each variant gets one composite score: overall rejection % plus 100×
//! the summed relative overshoot of every SLO percentile target (so a
//! variant that blows its tail pays in the same currency as one that
//! over-rejects). Lower is better; the adaptive variant should win. The
//! `adaptive_shift/<variant>` lines are grepped by scripts/check.sh.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{AvgResult, SimStudy};
use bouncer_bench::table::{ms, pct, Table};
use bouncer_core::slo::SloConfig;
use bouncer_core::types::TypeRegistry;

/// Summed relative overshoot over every (type, percentile) SLO target:
/// `max(0, measured/target − 1)`, 0 when every target is met.
fn slo_violation(avg: &AvgResult, registry: &TypeRegistry, slos: &SloConfig) -> f64 {
    let mut viol = 0.0;
    for (ty, _) in registry.iter() {
        for &(p, target) in slos.slo_for(ty).targets() {
            let measured_ms = match p.quantile() {
                q if (q - 0.5).abs() < 1e-9 => avg.rt_p50_ms[ty.index()],
                q if (q - 0.9).abs() < 1e-9 => avg.rt_p90_ms[ty.index()],
                _ => continue,
            };
            if measured_ms.is_nan() {
                continue; // no serviced queries of this type
            }
            let target_ms = target as f64 / 1e6;
            viol += (measured_ms / target_ms - 1.0).max(0.0);
        }
    }
    viol
}

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("adaptive_shift.scn");
    let factor = study.rate_factors()[0];
    let slos = study.slos();
    let fast = study.ty("fast");
    let slow = study.ty("slow");

    let labels: Vec<String> = study
        .spec()
        .policies
        .iter()
        .map(|(label, _)| label.clone())
        .collect();

    let mut table = Table::new(vec![
        "variant",
        "rej%",
        "FAST p90(ms)",
        "SLOW p90(ms)",
        "SLO overshoot",
        "score",
    ]);
    let mut scores: Vec<(String, f64)> = Vec::new();
    for label in &labels {
        let adaptive = label == "adaptive";
        let avg = study.run_avg_labeled(label, factor, &mode, adaptive);
        let viol = slo_violation(&avg, study.registry(), &slos);
        let score = avg.rej_all_pct + 100.0 * viol;
        table.row(vec![
            label.clone(),
            pct(avg.rej_all_pct),
            ms(avg.rt_p90_ms[fast.index()]),
            ms(avg.rt_p90_ms[slow.index()]),
            format!("{viol:.3}"),
            format!("{score:.2}"),
        ]);
        scores.push((label.clone(), score));
        eprint!(".");
    }
    eprintln!();

    table.print_tagged(
        "Adaptive vs static utilization caps under a mid-run mix shift (lower score wins)",
        &study.tag(),
    );

    // Greppable per-variant lines for scripts/check.sh.
    for (label, score) in &scores {
        println!("adaptive_shift/{label} score={score:.4}");
    }
    let adaptive = scores
        .iter()
        .find(|(l, _)| l == "adaptive")
        .expect("adaptive variant")
        .1;
    let best_static = scores
        .iter()
        .filter(|(l, _)| l != "adaptive")
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "adaptive_shift/verdict adaptive={adaptive:.4} best_static={best_static:.4} wins={}",
        adaptive < best_static
    );
}
