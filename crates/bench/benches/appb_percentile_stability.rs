//! Appendix B.1: why the paper's SLOs use p50/p90 rather than p99, from
//! `scenarios/appb_percentile_stability.scn`.
//!
//! "Garbage collection pauses regularly cause relatively high pt_p99 …
//! When a query type's histogram stores an elevated pt_p99 (i.e., close to
//! or larger than SLO_p99), most of the queries of this type will be
//! rejected in the next time interval until the histogram is updated.
//! Instead, we found pt_p50 and pt_p90 to be less susceptible to garbage
//! collection stalling."
//!
//! We reproduce the estimator-stability argument: feed a dual-buffer
//! histogram lognormal processing times with occasional GC-like pauses
//! (1 % of samples inflated by 100–300 ms), swap per interval, and measure
//! the per-interval coefficient of variation of p50, p90, and p99 — and
//! how often each percentile estimate would cross an SLO set with 25 %
//! headroom over its true (pause-free) value, i.e. how many whole
//! intervals of needless rejections an `SLO_pX` at that percentile would
//! cause.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{pct, Table};
use bouncer_metrics::time::millis_f64;
use bouncer_metrics::DualHistogram;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());

    let study = SimStudy::load("appb_percentile_stability.scn");
    let dist = study.mix().classes()[0].processing_ms; // Table 1 "slow"
    let pause_prob = 0.01; // one GC hiccup per ~100 queries
    let intervals = if mode.full { 600 } else { 120 };
    let samples_per_interval = 1_500;

    let mut rng = SmallRng::seed_from_u64(study.spec().seed);
    let hist = DualHistogram::new();
    let mut series: Vec<[f64; 3]> = Vec::new(); // per-interval [p50,p90,p99] ms

    for _ in 0..intervals {
        for _ in 0..samples_per_interval {
            let mut ms = dist.sample(&mut rng);
            if rng.random::<f64>() < pause_prob {
                ms += 100.0 + 200.0 * rng.random::<f64>(); // GC pause
            }
            hist.record(millis_f64(ms));
        }
        hist.swap();
        let p = |q: f64| hist.value_at_quantile(q).unwrap() as f64 / 1e6;
        series.push([p(0.50), p(0.90), p(0.99)]);
    }

    let labels = ["p50", "p90", "p99"];
    // Pause-free truths for the SLO-breach check.
    let truths = [dist.quantile(0.50), dist.quantile(0.90), dist.quantile(0.99)];

    let mut table = Table::new(vec![
        "percentile",
        "mean (ms)",
        "stddev (ms)",
        "CV %",
        "intervals over 1.25x truth %",
    ]);
    for i in 0..3 {
        let values: Vec<f64> = series.iter().map(|s| s[i]).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        let sd = var.sqrt();
        // An SLO with 25% headroom over the pause-free truth — generous by
        // production standards — would reject whole intervals whenever the
        // estimate crosses it.
        let breaches = values.iter().filter(|&&v| v > 1.25 * truths[i]).count();
        table.row(vec![
            labels[i].to_string(),
            format!("{mean:.1}"),
            format!("{sd:.1}"),
            pct(100.0 * sd / mean),
            pct(100.0 * breaches as f64 / values.len() as f64),
        ]);
    }

    table.print_tagged(
        "Appendix B.1 — per-interval percentile stability under GC-like pauses",
        &study.tag(),
    );
    println!("paper's argument: p50/p90 estimates stay stable across intervals while");
    println!("p99 is regularly inflated by pauses — an SLO_p99 would cause whole");
    println!("intervals of needless rejections. Expect CV(p99) >> CV(p50), and");
    println!("SLO crossings concentrated in the p99 row.");
}
