//! Table 5 (§5.3.3): helping-the-underserved parameter sweep at 1.5 × full
//! load — rejection % per type for α ∈ {0.1..1.0}, the `param.alpha` list
//! of `scenarios/table5_underserved.scn`.
//!
//! Paper shape: `slow` rejections fall from 94.74 % (α = 0.1) to 71.15 %
//! (α = 1.0) — typically *above* the nominal `(1−p_max)` line because the
//! override probability rarely reaches its maximum — while `medium slow`
//! spill-over grows from 7.07 % to 20.41 % and overall rejections rise only
//! from 11.59 % to 13.24 %.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{SimStudy, TYPE_NAMES};
use bouncer_bench::table::{pct, Table};
use bouncer_core::spec::PolicySpec;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("table5_underserved.scn");
    let factor = study.rate_factors()[0]; // 1.5x
    let alphas = study.spec().param("alpha").unwrap().to_vec();

    let mut header: Vec<String> = vec!["query type".into()];
    header.extend(alphas.iter().map(|a| format!("a={a}")));
    let mut table = Table::new(header);

    let mut cells: Vec<Vec<String>> = vec![Vec::new(); TYPE_NAMES.len() + 1];
    for &alpha in &alphas {
        let avg = study.run_avg(&PolicySpec::underserved(alpha), factor, &mode);
        for (i, name) in TYPE_NAMES.iter().enumerate() {
            let v = avg.rej_pct[study.ty(name).index()];
            cells[i].push(if v == 0.0 { "-0-".into() } else { pct(v) });
        }
        cells[TYPE_NAMES.len()].push(pct(avg.rej_all_pct));
        eprint!(".");
    }
    eprintln!();

    for (i, name) in TYPE_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        row.append(&mut cells[i]);
        table.row(row);
    }
    let mut row = vec!["ALL".to_string()];
    row.append(&mut cells[TYPE_NAMES.len()]);
    table.row(row);

    table.print_tagged(
        "Table 5 — rejection % vs scaling factor alpha, at 1.5x QPS_full_load",
        &study.tag(),
    );
    println!("paper (slow):        94.74 91.32 88.11 84.81 82.38 79.47 77.10 75.01 72.98 71.15");
    println!("paper (medium slow):  7.07  9.01 10.98 12.60 14.19 15.98 16.97 17.99 19.10 20.41");
    println!("paper (ALL):         11.59 11.83 12.11 12.26 12.50 12.74 12.80 12.90 13.03 13.24");
}
