//! Table 4 (§5.3.3): acceptance-allowance parameter sweep at 1.5 × full
//! load — rejection % per type for A ∈ {0.01..0.1, 0.2, 0.3}, the
//! `param.allowance` list of `scenarios/table4_allowance.scn`.
//!
//! Paper shape: `slow` rejections track the enforced cap `(1−A)·100 %`
//! closely (97.21 % at A = 0.01 down to 67.26 % at A = 0.3) while the
//! spill-over onto `medium slow` grows from 5.56 % to 22.26 %; overall
//! rejections rise only from 11.39 % to 13.40 %.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{SimStudy, TYPE_NAMES};
use bouncer_bench::table::{pct, Table};
use bouncer_core::spec::PolicySpec;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("table4_allowance.scn");
    let factor = study.rate_factors()[0]; // 1.5x
    let allowances = study.spec().param("allowance").unwrap().to_vec();

    let mut header: Vec<String> = vec!["query type".into()];
    header.extend(allowances.iter().map(|a| format!("A={a}")));
    let mut table = Table::new(header);

    let mut cells: Vec<Vec<String>> = vec![Vec::new(); TYPE_NAMES.len() + 1];
    for &a in &allowances {
        let avg = study.run_avg(&PolicySpec::allowance(a), factor, &mode);
        for (i, name) in TYPE_NAMES.iter().enumerate() {
            let v = avg.rej_pct[study.ty(name).index()];
            cells[i].push(if v == 0.0 { "-0-".into() } else { pct(v) });
        }
        cells[TYPE_NAMES.len()].push(pct(avg.rej_all_pct));
        eprint!(".");
    }
    eprintln!();

    for (i, name) in TYPE_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        row.append(&mut cells[i]);
        table.row(row);
    }
    let mut row = vec!["ALL".to_string()];
    row.append(&mut cells[TYPE_NAMES.len()]);
    table.row(row);

    table.print_tagged(
        "Table 4 — rejection % vs allowance A, at 1.5x QPS_full_load",
        &study.tag(),
    );
    println!("paper (slow):        97.21 96.23 95.25 94.30 93.26 92.19 91.20 90.17 89.16 88.13 77.48 67.26");
    println!("paper (medium slow):  5.56  6.08  6.64  7.24  7.72  8.38  9.04  9.57  9.96 10.74 16.49 22.26");
    println!("paper (ALL):         11.39 11.45 11.52 11.60 11.64 11.73 11.83 11.89 11.91 12.03 12.70 13.40");
}
