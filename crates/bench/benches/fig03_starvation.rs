//! Figure 3 (§4): the starvation example.
//!
//! Two query types with the *same* SLO {p50 = 18 ms, p90 = 50 ms}: FAST
//! queries (cheap) and SLOW queries (whose processing times sit close to
//! the SLO, so the objective is much tighter for them). Driving the
//! simulated broker hard, basic Bouncer starves the SLOW type — the paper
//! observed ~99 % SLOW rejections vs <10 % FAST — and the starvation
//! avoidance strategies cap or relieve it.

use std::sync::Arc;

use bouncer_bench::runmode::RunMode;
use bouncer_bench::table::{ms_opt, pct, Table};
use bouncer_core::prelude::*;
use bouncer_metrics::time::millis;
use bouncer_sim::{run, SimConfig};
use bouncer_workload::dist::LogNormal;
use bouncer_workload::mix::{QueryClass, QueryMix};

fn fixture() -> (TypeRegistry, QueryMix) {
    let mut reg = TypeRegistry::new();
    let fast = reg.register("FAST");
    let slow = reg.register("SLOW");
    // FAST dominates the mix and nearly fills capacity by itself — the
    // shape behind Figure 3's production pair: with the queue held busy by
    // FAST traffic, SLOW queries' tight headroom (their pt_p90 sits just
    // under SLO_p90) gets them rejected almost always.
    let mix = QueryMix::new(vec![
        QueryClass {
            ty: fast,
            name: "FAST".into(),
            proportion: 0.9,
            processing_ms: LogNormal::from_median_p90(4.5, 12.0),
        },
        QueryClass {
            ty: slow,
            name: "SLOW".into(),
            proportion: 0.1,
            processing_ms: LogNormal::from_median_p90(12.51, 44.26),
        },
    ]);
    (reg, mix)
}

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let (reg, mix) = fixture();
    let fast = reg.resolve("FAST").unwrap();
    let slow = reg.resolve("SLOW").unwrap();
    let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
    let full = mix.qps_full_load(100);
    let rate = full * 1.6; // "traffic at a high rate"

    let mut table = Table::new(vec![
        "policy",
        "FAST rej %",
        "SLOW rej %",
        "FAST rt_p50",
        "SLOW rt_p50",
        "SLOW rt_p90",
    ]);

    let policies: Vec<(&str, Arc<dyn AdmissionPolicy>)> = vec![
        (
            "Bouncer (basic)",
            Arc::new(Bouncer::new(
                slos.clone(),
                BouncerConfig::with_parallelism(100),
            )),
        ),
        (
            "Bouncer + allowance(0.05)",
            Arc::new(AcceptanceAllowance::new(
                Bouncer::new(slos.clone(), BouncerConfig::with_parallelism(100)),
                reg.len(),
                0.05,
                7,
            )),
        ),
        (
            "Bouncer + underserved(1.0)",
            Arc::new(HelpingTheUnderserved::new(
                Bouncer::new(slos.clone(), BouncerConfig::with_parallelism(100)),
                reg.len(),
                1.0,
                7,
            )),
        ),
    ];

    for (name, policy) in policies {
        let mut cfg = SimConfig::paper(rate, 11);
        cfg.measured_queries = mode.sim_measured;
        cfg.warmup_queries = mode.sim_warmup;
        let r = run(&policy, &mix, &cfg);
        table.row(vec![
            name.to_owned(),
            pct(r.rejection_pct(fast)),
            pct(r.rejection_pct(slow)),
            ms_opt(r.response_ms(fast, 0.5)),
            ms_opt(r.response_ms(slow, 0.5)),
            ms_opt(r.response_ms(slow, 0.9)),
        ]);
        eprint!(".");
    }
    eprintln!();

    table.print("Figure 3 — query starvation at high load (same SLO for FAST and SLOW)");
    println!("paper: basic Bouncer rejects ~99% of SLOW while <10% of FAST; the");
    println!("starvation-avoidance strategies keep letting some SLOW queries in.");
}
