//! Figure 3 (§4): the starvation example.
//!
//! `scenarios/fig03_starvation.scn` declares two query types with the
//! *same* SLO {p50 = 18 ms, p90 = 50 ms}: FAST queries (cheap) and SLOW
//! queries (whose processing times sit close to the SLO, so the objective
//! is much tighter for them). Driving the simulated broker hard, basic
//! Bouncer starves the SLOW type — the paper observed ~99 % SLOW
//! rejections vs <10 % FAST — and the starvation avoidance strategies cap
//! or relieve it.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{ms_opt, pct, Table};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("fig03_starvation.scn");
    let fast = study.ty("FAST");
    let slow = study.ty("SLOW");
    let factor = study.rate_factors()[0]; // "traffic at a high rate"

    let mut table = Table::new(vec![
        "policy",
        "FAST rej %",
        "SLOW rej %",
        "FAST rt_p50",
        "SLOW rt_p50",
        "SLOW rt_p90",
    ]);

    let policies = [
        ("basic", "Bouncer (basic)"),
        ("aa", "Bouncer + allowance(0.05)"),
        ("htu", "Bouncer + underserved(1.0)"),
    ];
    for (label, display) in policies {
        let policy = study.scenario().build_policy(label, 7).unwrap();
        let r = study.run_once(policy.as_ref(), factor, study.spec().seed, &mode);
        table.row(vec![
            display.to_owned(),
            pct(r.rejection_pct(fast)),
            pct(r.rejection_pct(slow)),
            ms_opt(r.response_ms(fast, 0.5)),
            ms_opt(r.response_ms(slow, 0.5)),
            ms_opt(r.response_ms(slow, 0.9)),
        ]);
        eprint!(".");
    }
    eprintln!();

    table.print_tagged(
        "Figure 3 — query starvation at high load (same SLO for FAST and SLOW)",
        &study.tag(),
    );
    println!("paper: basic Bouncer rejects ~99% of SLOW while <10% of FAST; the");
    println!("starvation-avoidance strategies keep letting some SLOW queries in.");
}
