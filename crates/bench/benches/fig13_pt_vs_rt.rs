//! Figure 13 (§5.4): QT11's median *processing* time vs median *response*
//! time under MaxQWT and Bouncer on the real system.
//!
//! The paper's key observation: unlike the ideal simulated engine, the real
//! cluster's processing tier queues too, so the processing time observed by
//! brokers **rises with load** (reaching ~15 ms at the top rate, 3 ms under
//! SLO_p50). MaxQWT, which only bounds queue wait, lets rt_p50 depart from
//! pt_p50 and exceed the SLO; Bouncer, which accounts for both wait and
//! percentile processing times, keeps rt_p50 tracking pt_p50.

use bouncer_bench::liquidstudy::{bouncer_aa_factory, maxqwt_factory, LiquidStudy, RATE_FACTORS};
use bouncer_bench::runmode::RunMode;
use bouncer_bench::table::{ms_opt, Table};
use liquid::query::QueryKind;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = LiquidStudy::new(&mode);
    println!("measured capacity: {:.0} QPS", study.capacity_qps);

    let mut table = Table::new(vec![
        "rate",
        "pt_p50 (MaxQWT)",
        "rt_p50 (MaxQWT)",
        "pt_p50 (Bouncer)",
        "rt_p50 (Bouncer)",
    ]);

    let maxqwt = maxqwt_factory();
    let bouncer = bouncer_aa_factory();
    for &(label, factor) in &RATE_FACTORS {
        let rate = study.capacity_qps * factor;
        let m = study.run_point(maxqwt.as_ref(), rate, 23, &mode);
        let b = study.run_point(bouncer.as_ref(), rate, 23, &mode);
        table.row(vec![
            label.to_string(),
            ms_opt(m.broker_pt_ms(QueryKind::Qt11Distance4, 0.5)),
            ms_opt(m.broker_rt_ms(QueryKind::Qt11Distance4, 0.5)),
            ms_opt(b.broker_pt_ms(QueryKind::Qt11Distance4, 0.5)),
            ms_opt(b.broker_rt_ms(QueryKind::Qt11Distance4, 0.5)),
        ]);
        eprint!(".");
    }
    eprintln!();

    table.print("Figure 13 — QT11 pt_p50 vs rt_p50, ms (SLO_p50 = 18 ms)");
    println!("paper: pt_p50 RISES with load (shard-tier queueing) — the behavior");
    println!("the ideal simulator cannot show; MaxQWT lets rt_p50 depart from");
    println!("pt_p50 and break the SLO, Bouncer keeps rt_p50 tracking pt_p50.");
}
