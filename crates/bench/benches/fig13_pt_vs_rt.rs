//! Figure 13 (§5.4): QT11's median *processing* time vs median *response*
//! time under MaxQWT and Bouncer on the real system, from
//! `scenarios/fig13_liquid.scn`.
//!
//! The paper's key observation: unlike the ideal simulated engine, the real
//! cluster's processing tier queues too, so the processing time observed by
//! brokers **rises with load** (reaching ~15 ms at the top rate, 3 ms under
//! SLO_p50). MaxQWT, which only bounds queue wait, lets rt_p50 depart from
//! pt_p50 and exceed the SLO; Bouncer, which accounts for both wait and
//! percentile processing times, keeps rt_p50 tracking pt_p50.

use bouncer_bench::liquidstudy::LiquidStudy;
use bouncer_bench::runmode::RunMode;
use bouncer_bench::table::{ms_opt, Table};
use liquid::query::QueryKind;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = LiquidStudy::load("fig13_liquid.scn", &mode);
    println!("measured capacity: {:.0} QPS", study.capacity_qps);
    let seed = study.spec().seed;

    let mut table = Table::new(vec![
        "rate",
        "pt_p50 (MaxQWT)",
        "rt_p50 (MaxQWT)",
        "pt_p50 (Bouncer)",
        "rt_p50 (Bouncer)",
    ]);

    let maxqwt = study.policy("maxqwt").clone();
    let bouncer = study.policy("aa").clone();
    for (label, factor) in study.rate_points().to_vec() {
        let rate = study.capacity_qps * factor;
        let m = study.run_point(&maxqwt, rate, seed, &mode);
        let b = study.run_point(&bouncer, rate, seed, &mode);
        table.row(vec![
            label.clone(),
            ms_opt(m.broker_pt_ms(QueryKind::Qt11Distance4, 0.5)),
            ms_opt(m.broker_rt_ms(QueryKind::Qt11Distance4, 0.5)),
            ms_opt(b.broker_pt_ms(QueryKind::Qt11Distance4, 0.5)),
            ms_opt(b.broker_rt_ms(QueryKind::Qt11Distance4, 0.5)),
        ]);
        eprint!(".");
    }
    eprintln!();

    table.print_tagged(
        "Figure 13 — QT11 pt_p50 vs rt_p50, ms (SLO_p50 = 18 ms)",
        &study.tag(),
    );
    println!("paper: pt_p50 RISES with load (shard-tier queueing) — the behavior");
    println!("the ideal simulator cannot show; MaxQWT lets rt_p50 depart from");
    println!("pt_p50 and break the SLO, Bouncer keeps rt_p50 tracking pt_p50.");
}
