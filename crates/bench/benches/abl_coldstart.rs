//! Ablation (Appendix A, which the paper left under development): cold
//! starts, traffic lulls, and the retention threshold, from
//! `scenarios/abl_coldstart.scn`.
//!
//! Three scenarios drive a Bouncer directly (no simulator), printing its
//! decisions so each mechanism is visible in isolation:
//!
//! 1. **Cold start** — a brand-new type arrives before any measurements
//!    exist: Bouncer admits leniently, then uses the *general* histogram +
//!    `default` SLO once other types have warmed it, and finally the type's
//!    own histogram + own SLO.
//! 2. **Traffic lull, retention off** — a warm type goes quiet for several
//!    intervals: its histogram empties and the type regresses to warm-up
//!    treatment.
//! 3. **Traffic lull, retention on** — the same lull with
//!    `retention_min_samples > 0`: the pre-lull histogram is kept ("we
//!    prefer stale data to no data") and decisions stay sharp through the
//!    lull.

use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::Table;
use bouncer_core::prelude::*;
use bouncer_metrics::time::{millis, secs};

fn describe(b: &Bouncer, ty: TypeId, now: u64) -> (String, String) {
    let decision = if b.admit(ty, now).is_accept() {
        "accept"
    } else {
        "REJECT"
    };
    let basis = if b.is_warming_up_at(ty, now) {
        "general histogram + default SLO"
    } else {
        "own histogram + own SLO"
    };
    (decision.into(), basis.into())
}

fn main() {
    let study = SimStudy::load("abl_coldstart.scn");
    let env = study.scenario().policy_env();
    let background = study.ty("background");
    let subject = study.ty("subject");
    let build = |label: &str| -> Bouncer {
        study
            .policy(label)
            .build_bouncer(&env)
            .expect("abl_coldstart policies are Bouncer-family")
    };

    // Scenario 1: cold start (retention plays no role — no lull happens).
    let b = build("retention_off");
    let mut t1 = Table::new(vec!["phase", "decision", "estimate basis"]);
    let (d, basis) = describe(&b, subject, 0);
    t1.row(vec!["t=0s: nothing measured anywhere".into(), d, basis]);
    // Background type warms the general histogram with 30ms samples —
    // above subject's own SLO p50 but below the default SLO.
    for _ in 0..100 {
        b.on_completed(background, millis(30), millis(500));
    }
    b.on_tick(secs(1));
    let (d, basis) = describe(&b, subject, secs(1));
    t1.row(vec![
        "t=1s: background warm, subject still unseen".into(),
        d,
        basis,
    ]);
    // Subject's own measurements arrive: 30ms > its own 18ms SLO p50.
    for _ in 0..100 {
        b.on_completed(subject, millis(30), secs(1) + millis(500));
    }
    b.on_tick(secs(2));
    let (d, basis) = describe(&b, subject, secs(2));
    t1.row(vec!["t=2s: subject warm (30ms > 18ms SLO)".into(), d, basis]);
    t1.print_tagged(
        "Appendix A scenario 1 — cold start: lenient, then general, then own",
        &study.tag(),
    );

    // Scenarios 2 and 3: a lull after a warm period, retention off vs on.
    for (title, label) in [
        (
            "Appendix A scenario 2 — lull with retention OFF (swap-to-empty)",
            "retention_off",
        ),
        (
            "Appendix A scenario 3 — lull with retention ON (stale data kept)",
            "retention_on",
        ),
    ] {
        let b = build(label);
        let mut t = Table::new(vec!["phase", "decision", "estimate basis"]);
        for _ in 0..100 {
            b.on_completed(subject, millis(30), millis(500));
        }
        b.on_tick(secs(1));
        let (d, basis) = describe(&b, subject, secs(1));
        t.row(vec!["after warm interval (pt=30ms)".into(), d, basis]);
        // Lull: three interval boundaries with no subject traffic.
        b.on_tick(secs(2));
        b.on_tick(secs(3));
        b.on_tick(secs(4));
        let (d, basis) = describe(&b, subject, secs(4));
        t.row(vec!["after 3-interval lull".into(), d, basis]);
        t.print_tagged(title, &study.tag());
    }

    println!("\npaper (Appendix A): during warm-up use the general histogram and the");
    println!("default SLO; across lulls \"we prefer stale data to no data\" — but see");
    println!("BouncerConfig::with_parallelism for why retention defaults to off");
    println!("(rejection-driven starvation can poison a retained histogram).");
}
