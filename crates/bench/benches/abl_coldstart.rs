//! Ablation (Appendix A, which the paper left under development): cold
//! starts, traffic lulls, and the retention threshold.
//!
//! Three scenarios drive a Bouncer directly (no simulator), printing its
//! decisions so each mechanism is visible in isolation:
//!
//! 1. **Cold start** — a brand-new type arrives before any measurements
//!    exist: Bouncer admits leniently, then uses the *general* histogram +
//!    `default` SLO once other types have warmed it, and finally the type's
//!    own histogram + own SLO.
//! 2. **Traffic lull, retention off** — a warm type goes quiet for several
//!    intervals: its histogram empties and the type regresses to warm-up
//!    treatment.
//! 3. **Traffic lull, retention on** — the same lull with
//!    `retention_min_samples > 0`: the pre-lull histogram is kept ("we
//!    prefer stale data to no data") and decisions stay sharp through the
//!    lull.

use bouncer_bench::table::Table;
use bouncer_core::prelude::*;
use bouncer_metrics::time::{millis, secs};

/// A fixture with a cheap `background` type and the type under test.
fn fixture(retention: u64) -> (Bouncer, TypeId, TypeId) {
    let mut reg = TypeRegistry::new();
    let background = reg.register("background");
    let subject = reg.register("subject");
    let slos = SloConfig::builder(&reg)
        .default_slo(Slo::p50_p90(millis(100), millis(300)))
        .set(background, Slo::p50_p90(millis(18), millis(50)))
        .set(subject, Slo::p50_p90(millis(18), millis(50)))
        .build();
    let mut cfg = BouncerConfig::with_parallelism(8);
    cfg.retention_min_samples = retention;
    cfg.warmup_min_samples = 8;
    (Bouncer::new(slos, cfg), background, subject)
}

fn describe(b: &Bouncer, ty: TypeId, now: u64) -> (String, String) {
    let decision = if b.admit(ty, now).is_accept() {
        "accept"
    } else {
        "REJECT"
    };
    let basis = if b.is_warming_up_at(ty, now) {
        "general histogram + default SLO"
    } else {
        "own histogram + own SLO"
    };
    (decision.into(), basis.into())
}

fn main() {
    // Scenario 1: cold start.
    let (b, background, subject) = fixture(0);
    let mut t1 = Table::new(vec!["phase", "decision", "estimate basis"]);
    let (d, basis) = describe(&b, subject, 0);
    t1.row(vec!["t=0s: nothing measured anywhere".into(), d, basis]);
    // Background type warms the general histogram with 30ms samples —
    // above subject's own SLO p50 but below the default SLO.
    for _ in 0..100 {
        b.on_completed(background, millis(30), millis(500));
    }
    b.on_tick(secs(1));
    let (d, basis) = describe(&b, subject, secs(1));
    t1.row(vec![
        "t=1s: background warm, subject still unseen".into(),
        d,
        basis,
    ]);
    // Subject's own measurements arrive: 30ms > its own 18ms SLO p50.
    for _ in 0..100 {
        b.on_completed(subject, millis(30), secs(1) + millis(500));
    }
    b.on_tick(secs(2));
    let (d, basis) = describe(&b, subject, secs(2));
    t1.row(vec!["t=2s: subject warm (30ms > 18ms SLO)".into(), d, basis]);
    t1.print("Appendix A scenario 1 — cold start: lenient, then general, then own");

    // Scenarios 2 and 3: a lull after a warm period, retention off vs on.
    for (title, retention) in [
        ("Appendix A scenario 2 — lull with retention OFF (swap-to-empty)", 0u64),
        ("Appendix A scenario 3 — lull with retention ON (stale data kept)", 16),
    ] {
        let (b, _background, subject) = fixture(retention);
        let mut t = Table::new(vec!["phase", "decision", "estimate basis"]);
        for _ in 0..100 {
            b.on_completed(subject, millis(30), millis(500));
        }
        b.on_tick(secs(1));
        let (d, basis) = describe(&b, subject, secs(1));
        t.row(vec!["after warm interval (pt=30ms)".into(), d, basis]);
        // Lull: three interval boundaries with no subject traffic.
        b.on_tick(secs(2));
        b.on_tick(secs(3));
        b.on_tick(secs(4));
        let (d, basis) = describe(&b, subject, secs(4));
        t.row(vec!["after 3-interval lull".into(), d, basis]);
        t.print(title);
    }

    println!("\npaper (Appendix A): during warm-up use the general histogram and the");
    println!("default SLO; across lulls \"we prefer stale data to no data\" — but see");
    println!("BouncerConfig::with_parallelism for why retention defaults to off");
    println!("(rejection-driven starvation can poison a retained histogram).");
}
