//! Ablation (§7 extension): queue service disciplines under Bouncer, from
//! `scenarios/abl_scheduling.scn`.
//!
//! The paper's LIquid serves admitted queries FIFO; §7 plans priority-based
//! service, and Gatekeeper (§6) argues for SJF. This ablation runs the
//! Table 1 mix at overload under basic Bouncer with three disciplines:
//!
//! * FIFO (the paper's deployment),
//! * priority-by-type with *slow* queries prioritized (the starvation-prone
//!   type gets the queue's preference),
//! * oracle shortest-job-first.
//!
//! Expected: prioritizing slow queries almost eliminates their queue wait
//! (rt_p50 drops well under the SLO) at the cost of cheap queries now
//! waiting behind them; oracle SJF protects the cheap queries instead and
//! shifts the waiting onto the long ones — the starvation-by-scheduling
//! that Gatekeeper's aging mechanism (§6) exists to counter. Rejection
//! totals barely move: admission is decided before the queue, so the
//! discipline mostly redistributes waiting, not load.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{SimStudy, TYPE_NAMES};
use bouncer_bench::table::{ms_opt, pct, Table};
use bouncer_metrics::time::as_millis_f64;
use bouncer_sim::{run, SimDiscipline};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("abl_scheduling.scn");
    let seed = study.spec().seed;
    let policy = study.scenario().build_policy("", seed).unwrap();

    // slow (type index 4) gets top priority, medium slow next.
    let priorities = vec![0u8, 0, 0, 1, 2];
    let disciplines: Vec<(&str, SimDiscipline)> = vec![
        ("FIFO", SimDiscipline::Fifo),
        ("priority(slow)", SimDiscipline::PriorityByType(priorities)),
        ("SJF(oracle)", SimDiscipline::ShortestJobFirst),
    ];

    for &factor in study.rate_factors() {
        let mut table = Table::new(vec![
            "discipline",
            "rej_all %",
            "rej_slow %",
            "slow rt_p50",
            "slow wait_p90",
            "fast rt_p50",
        ]);
        for (name, discipline) in &disciplines {
            let mut cfg = study.scenario().sim_config_at_factor(factor, seed);
            cfg.measured_queries = mode.sim_measured;
            cfg.warmup_queries = mode.sim_warmup;
            cfg.discipline = discipline.clone();
            let r = run(policy.as_ref(), study.mix(), &cfg);
            let slow = study.ty("slow");
            let fast = study.ty("fast");
            let wait90 = r.stats.per_type[slow.index()]
                .wait
                .value_at_quantile(0.9)
                .map(as_millis_f64);
            table.row(vec![
                name.to_string(),
                pct(r.overall_rejection_pct()),
                pct(r.rejection_pct(slow)),
                ms_opt(r.response_ms(slow, 0.5)),
                ms_opt(wait90),
                ms_opt(r.response_ms(fast, 0.5)),
            ]);
            eprint!(".");
        }
        table.print_tagged(
            &format!(
                "Scheduling ablation — Bouncer at {factor:.1}x QPS_full_load ({})",
                TYPE_NAMES.join(", ")
            ),
            &study.tag(),
        );
    }
    eprintln!();
    println!("FIFO is the paper's baseline; priority-by-type implements the §7");
    println!("extension; oracle SJF shows why Gatekeeper needed an aging scheme.");
}
