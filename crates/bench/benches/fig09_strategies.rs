//! Figure 9 (§5.3.2): median response time of *slow* queries under basic
//! Bouncer vs the starvation-avoidance strategies, from
//! `scenarios/fig09_strategies.scn` (Table 2 parameters: A = 0.05,
//! α = 1.0).
//!
//! Paper shape: basic Bouncer stays at the 18 ms SLO_p50; both strategies
//! exceed it at high rates because they deliberately accept queries basic
//! Bouncer would reject; acceptance-allowance stays within SLO to a higher
//! QPS and reports lower rt_p50 at high rates than helping-the-underserved.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{ms_opt, Table};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("fig09_strategies.scn");
    let slow = study.ty("slow");

    let mut table = Table::new(vec!["factor", "basic", "allowance", "underserved"]);
    for &factor in study.rate_factors() {
        let mut row = vec![format!("{factor:.2}x")];
        for (_, policy) in &study.spec().policies {
            let avg = study.run_avg(policy, factor, &mode);
            row.push(ms_opt(avg.rt_p50(slow)));
        }
        table.row(row);
        eprint!(".");
    }
    eprintln!();

    table.print_tagged(
        "Figure 9 — rt_p50 of `slow` queries, ms (SLO_p50 = 18 ms)",
        &study.tag(),
    );
    println!("paper: basic tracks the SLO; both strategies exceed it at high rates");
    println!("(>20 ms), with allowance staying under SLO to a higher QPS than");
    println!("underserved and reporting lower rt_p50 at the top rates.");
}
