//! Figure 9 (§5.3.2): median response time of *slow* queries under basic
//! Bouncer vs the starvation-avoidance strategies (Table 2 parameters:
//! A = 0.05, α = 1.0).
//!
//! Paper shape: basic Bouncer stays at the 18 ms SLO_p50; both strategies
//! exceed it at high rates because they deliberately accept queries basic
//! Bouncer would reject; acceptance-allowance stays within SLO to a higher
//! QPS and reports lower rt_p50 at high rates than helping-the-underserved.

use std::sync::Arc;

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{SimStudy, RATE_FACTORS};
use bouncer_bench::table::{ms_opt, Table};
use bouncer_core::policy::AdmissionPolicy;

/// A seeded policy constructor for multi-run averaging.
type MakePolicy<'a> = Box<dyn Fn(u64) -> Arc<dyn AdmissionPolicy> + 'a>;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::new();
    let slow = study.ty("slow");

    let variants: Vec<(&str, MakePolicy)> = vec![
        ("basic", Box::new(|_s| Arc::new(study.bouncer()))),
        (
            "allowance(A=0.05)",
            Box::new(|s| Arc::new(study.bouncer_allowance(0.05, s))),
        ),
        (
            "underserved(a=1.0)",
            Box::new(|s| Arc::new(study.bouncer_underserved(1.0, s))),
        ),
    ];

    let mut table = Table::new(vec!["factor", "basic", "allowance", "underserved"]);
    for &factor in &RATE_FACTORS {
        let mut row = vec![format!("{factor:.2}x")];
        for (_, make) in &variants {
            let avg = study.run_avg(make.as_ref(), factor, &mode);
            row.push(ms_opt(avg.rt_p50(slow)));
        }
        table.row(row);
        eprint!(".");
    }
    eprintln!();

    table.print("Figure 9 — rt_p50 of `slow` queries, ms (SLO_p50 = 18 ms)");
    println!("paper: basic tracks the SLO; both strategies exceed it at high rates");
    println!("(>20 ms), with allowance staying under SLO to a higher QPS than");
    println!("underserved and reporting lower rt_p50 at the top rates.");
}
