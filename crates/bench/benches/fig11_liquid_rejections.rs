//! Figure 11 (§5.4): overall rejection percentage on the real system, from
//! `scenarios/fig11_liquid.scn`.
//!
//! Brokers run the policy under test; shards always run AcceptFraction
//! (80 %); the load generator drives the published QT1..QT11 mix at five
//! rates spanning under-load to ~1.7× saturation (the paper's 36K–180K QPS,
//! normalized to this machine's measured capacity).
//!
//! Paper shape: rejections grow with load for every policy; Bouncer's
//! variants reject 15–30 % less than MaxQL/MaxQWT (similar to each other),
//! and AcceptFraction rejects the most (conservative 80 % threshold); the
//! brokers — not the shards — produce the vast majority of rejections.

use bouncer_bench::liquidstudy::LiquidStudy;
use bouncer_bench::runmode::RunMode;
use bouncer_bench::table::{pct, Table};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = LiquidStudy::load("fig11_liquid.scn", &mode);
    println!(
        "measured capacity: {:.0} QPS (in-proc mini-cluster, {} shards x {} engines, {} brokers x {} engines)",
        study.capacity_qps,
        study.cluster_cfg.n_shards,
        study.cluster_cfg.shard.engines,
        study.cluster_cfg.n_brokers,
        study.cluster_cfg.broker.engines,
    );
    let seed = study.spec().seed;

    let policies = [
        ("Bouncer+AA(0.05)", study.policy("aa").clone()),
        ("Bouncer+HTU(1.0)", study.policy("htu").clone()),
        ("MaxQL(800)", study.policy("maxql").clone()),
        ("MaxQWT(12ms)", study.policy("maxqwt").clone()),
        ("AcceptFraction(80%)", study.policy("af").clone()),
    ];

    let mut table = Table::new(vec![
        "rate", "QPS", "B+AA", "B+HTU", "MaxQL", "MaxQWT", "AcceptFrac",
    ]);
    let mut shard_share = Vec::new();
    for (label, factor) in study.rate_points().to_vec() {
        let rate = study.capacity_qps * factor;
        let mut row = vec![label.clone(), format!("{rate:.0}")];
        for (_, policy) in &policies {
            let point = study.run_point(policy, rate, seed, &mode);
            row.push(pct(point.overall_rejection_pct()));
            let broker_rej: u64 = point.rejected.iter().sum();
            shard_share.push((broker_rej, point.shard_rejections));
            eprint!(".");
        }
        table.row(row);
    }
    eprintln!();

    table.print_tagged(
        "Figure 11 — overall rejections on the LIquid-like cluster, %",
        &study.tag(),
    );
    let (b, s) = shard_share
        .iter()
        .fold((0u64, 0u64), |(a, c), &(x, y)| (a + x, c + y));
    println!(
        "rejections by tier: broker {} vs shard {} ({:.1}% broker-side; paper: brokers produce the vast majority)",
        b,
        s,
        100.0 * b as f64 / (b + s).max(1) as f64
    );
    println!("paper: Bouncer variants 15-30% fewer rejections than MaxQL/MaxQWT;");
    println!("AcceptFraction the most (80% threshold).");
}
