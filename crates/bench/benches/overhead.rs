//! §5.4 overhead measurement (Criterion), from `scenarios/overhead.scn`.
//!
//! "Our implementation of Bouncer reports a small overhead (mean = 18 µs,
//! p50 = 15 µs, and p99 = 87 µs) for millisecond-scale response times."
//! The paper's number includes its production framework plumbing; the
//! decision itself must be at most that. This bench measures the per-query
//! admission decision of Bouncer (warm, 11 query types), the two
//! starvation-avoidance wrappers, the baseline policies, and the
//! measurement primitives they are built from. Policy parameters and the
//! SLO table come from the scenario; the registry-size sweep stays here.

use std::sync::Arc;

use bouncer_bench::simstudy::scenario_path;
use bouncer_core::prelude::*;
use bouncer_core::spec::{defaults, PolicyEnv, ScenarioSpec};
use bouncer_metrics::time::{millis, secs};
use bouncer_metrics::{AtomicHistogram, DualHistogram, MovingStats, SlidingHistogram, WindowedCounters};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn overhead_spec() -> ScenarioSpec {
    let path = scenario_path("overhead.scn");
    ScenarioSpec::load(&path).unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()))
}

fn qt_registry(n_types: usize) -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    for i in 0..n_types {
        reg.register(&format!("QT{}", i + 1));
    }
    reg
}

fn policy_env<'a>(spec: &ScenarioSpec, reg: &'a TypeRegistry) -> PolicyEnv<'a> {
    PolicyEnv {
        registry: reg,
        slos: spec.slos(reg).unwrap_or_else(|e| panic!("{e}")),
        parallelism: defaults::PARALLELISM,
    }
}

/// Warms a policy over every registered type under a realistic queue
/// backlog (completions, an interval tick, then a standing queue so Eq. 2
/// has real work to do). Everything goes through the `AdmissionPolicy`
/// trait, so the same warm-up applies to Bouncer, its wrappers, and the
/// baselines alike.
fn warm(policy: &dyn AdmissionPolicy, reg: &TypeRegistry) {
    for (ty, _) in reg.iter() {
        for k in 0..200u64 {
            policy.on_completed(ty, millis(1 + ty.index() as u64) + k * 1000, 0);
        }
    }
    policy.on_tick(secs(1));
    for (ty, _) in reg.iter() {
        for _ in 0..8 {
            policy.on_enqueued(ty, secs(1));
        }
    }
}

fn bench_policies(c: &mut Criterion) {
    let spec = overhead_spec();
    println!("scenario: {}", spec.tag());
    let reg = qt_registry(11);
    let ty = reg.resolve("QT11").unwrap();
    let build_warm = |label: &str| -> Arc<dyn AdmissionPolicy> {
        let policy = spec
            .policy(label)
            .unwrap_or_else(|e| panic!("{e}"))
            .build(&policy_env(&spec, &reg), spec.seed);
        warm(policy.as_ref(), &reg);
        policy
    };

    let bouncer = build_warm("bouncer");
    c.bench_function("bouncer_admit", |b| {
        b.iter(|| black_box(bouncer.admit(black_box(ty), secs(1))))
    });

    let aa = build_warm("aa");
    c.bench_function("bouncer_allowance_admit", |b| {
        b.iter(|| black_box(aa.admit(black_box(ty), secs(1))))
    });

    let htu = build_warm("htu");
    c.bench_function("bouncer_underserved_admit", |b| {
        b.iter(|| black_box(htu.admit(black_box(ty), secs(1))))
    });

    let maxql = build_warm("maxql");
    c.bench_function("maxql_admit", |b| {
        b.iter(|| black_box(maxql.admit(black_box(ty), secs(1))))
    });

    let maxqwt = build_warm("maxqwt");
    c.bench_function("maxqwt_admit", |b| {
        b.iter(|| black_box(maxqwt.admit(black_box(ty), secs(20))))
    });

    let af = build_warm("af");
    c.bench_function("accept_fraction_admit", |b| {
        b.iter(|| black_box(af.admit(black_box(ty), secs(2))))
    });
}

/// The tentpole measurement: the interval-cached `admit` (a handful of
/// relaxed loads reading the estimate table) against the retained
/// recompute-from-scratch reference (Eq. 2 loop over every type plus two
/// histogram quantile scans), across type-count scales. The cached path
/// must stay flat in the number of types; the reference grows linearly.
/// `cold` variants decide for a type still in warm-up (general-histogram
/// fallback), the worst case for the cache-refresh bookkeeping.
fn bench_admit_hot_path(c: &mut Criterion) {
    let spec = overhead_spec();
    let bouncer_spec = spec.policy("bouncer").unwrap_or_else(|e| panic!("{e}"));
    for n_types in [1usize, 12, 64, 256] {
        let reg = qt_registry(n_types);
        let bouncer = bouncer_spec
            .build_bouncer(&policy_env(&spec, &reg))
            .expect("bouncer-family spec");
        warm(&bouncer, &reg);
        let ty = reg.resolve("QT1").unwrap();
        c.bench_function(&format!("admit_hot_path/cached/{n_types}_types"), |b| {
            b.iter(|| black_box(bouncer.can_admit(black_box(ty), secs(1))))
        });
        c.bench_function(&format!("admit_hot_path/reference/{n_types}_types"), |b| {
            b.iter(|| black_box(bouncer.can_admit_reference(black_box(ty), secs(1))))
        });
    }

    // Cold: no completions recorded at all, every type reads the general
    // fallback and the permissive cold-start leniency applies.
    for n_types in [12usize, 64] {
        let reg = qt_registry(n_types);
        let bouncer = bouncer_spec
            .build_bouncer(&policy_env(&spec, &reg))
            .expect("bouncer-family spec");
        let ty = reg.resolve("QT1").unwrap();
        c.bench_function(&format!("admit_hot_path/cached_cold/{n_types}_types"), |b| {
            b.iter(|| black_box(bouncer.can_admit(black_box(ty), secs(1))))
        });
        c.bench_function(
            &format!("admit_hot_path/reference_cold/{n_types}_types"),
            |b| b.iter(|| black_box(bouncer.can_admit_reference(black_box(ty), secs(1)))),
        );
    }
}

fn bench_primitives(c: &mut Criterion) {
    let hist = AtomicHistogram::new();
    for v in 0..10_000u64 {
        hist.record(v * 997);
    }
    c.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(12_345);
            hist.record(black_box(v % 50_000_000));
        })
    });
    c.bench_function("histogram_quantile", |b| {
        b.iter(|| black_box(hist.value_at_quantile(black_box(0.9))))
    });

    let dual = DualHistogram::new();
    for v in 0..10_000u64 {
        dual.record(v * 997);
    }
    dual.swap();
    c.bench_function("dual_histogram_read_p90", |b| {
        b.iter(|| black_box(dual.value_at_quantile(black_box(0.9))))
    });

    // The §7 sliding-window alternative: each read snapshots and merges 4
    // sub-histograms, costing an order of magnitude more than a dual-buffer
    // read (the trade the paper's deployed design avoids).
    let sliding = SlidingHistogram::new(4, secs(1));
    for v in 0..10_000u64 {
        sliding.record(v * 997, (v % 4) * secs(1));
    }
    c.bench_function("sliding_histogram_read_p90", |b| {
        b.iter(|| black_box(sliding.value_at_quantile(black_box(0.9), secs(3))))
    });

    let window = WindowedCounters::new(12, secs(1), millis(10));
    c.bench_function("window_record_and_read", |b| {
        let mut now = 0u64;
        b.iter(|| {
            now += 50_000;
            window.record(black_box(3), true, now);
            black_box(window.counts(3, now))
        })
    });

    let moving = MovingStats::new(secs(60), secs(1));
    c.bench_function("moving_stats_record", |b| {
        let mut now = 0u64;
        b.iter(|| {
            now += 50_000;
            moving.record(black_box(5_000_000), now);
        })
    });
}

fn bench_full_gate_path(c: &mut Criterion) {
    // The complete framework path a serviced query takes: offer -> take ->
    // complete, with Bouncer deciding. This is the closest analog of the
    // paper's end-to-end 18 us figure.
    use bouncer_core::framework::{Gate, GateConfig, TakeOutcome};
    use bouncer_metrics::MonotonicClock;

    let spec = overhead_spec();
    let reg = qt_registry(11);
    let ty = reg.resolve("QT5").unwrap();
    let bouncer = spec
        .policy("bouncer")
        .unwrap_or_else(|e| panic!("{e}"))
        .build(&policy_env(&spec, &reg), spec.seed);
    warm(bouncer.as_ref(), &reg);
    let gate: Gate<u32> = Gate::new(
        bouncer,
        reg.len(),
        Arc::new(MonotonicClock::new()),
        GateConfig::default(),
    );
    c.bench_function("gate_offer_take_complete", |b| {
        b.iter(|| {
            if gate.offer(black_box(ty), 1).is_ok() {
                if let TakeOutcome::Query(q) = gate.take(None) {
                    gate.complete(q.ty, q.enqueued_at, q.dequeued_at);
                }
            }
        })
    });
}

fn bench_observability(c: &mut Criterion) {
    // The observability layer must stay off the admission hot path: a gate
    // built without a sink (the default NullSink, `enabled() == false`)
    // should cost the same as the seed's uninstrumented gate, and even an
    // enabled sink should add only the consumer's own work. The `recorder`
    // row prices the always-on flight recorder (T4 in docs/adr/
    // 001-performance-targets.md): a full offer→take→complete cycle with
    // every event compacted into the per-thread ring, no downstream sink.
    use bouncer_core::framework::{Gate, GateConfig, TakeOutcome};
    use bouncer_core::obs::recorder::DEFAULT_RING_CAPACITY;
    use bouncer_core::obs::{Event, EventSink, Recorder, RecorderSink};
    use bouncer_metrics::MonotonicClock;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// An enabled sink with a near-zero `emit`, isolating the layer's own
    /// overhead (event construction + dispatch) from any real consumer.
    #[derive(Debug, Default)]
    struct CountingSink(AtomicU64);

    impl EventSink for CountingSink {
        fn emit(&self, _event: &Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    let spec = overhead_spec();
    let reg = qt_registry(11);
    let ty = reg.resolve("QT5").unwrap();
    let make_gate = |sink: Option<Arc<dyn EventSink>>| -> Gate<u32> {
        let bouncer = spec
            .policy("bouncer")
            .unwrap_or_else(|e| panic!("{e}"))
            .build(&policy_env(&spec, &reg), spec.seed);
        warm(bouncer.as_ref(), &reg);
        match sink {
            None => Gate::new(
                bouncer,
                reg.len(),
                Arc::new(MonotonicClock::new()),
                GateConfig::default(),
            ),
            Some(sink) => Gate::new_with_sink(
                bouncer,
                reg.len(),
                Arc::new(MonotonicClock::new()),
                GateConfig::default(),
                sink,
            ),
        }
    };
    let cycle = |gate: &Gate<u32>, ty: TypeId| {
        if gate.offer(black_box(ty), 1).is_ok() {
            if let TakeOutcome::Query(q) = gate.take(None) {
                gate.complete(q.ty, q.enqueued_at, q.dequeued_at);
            }
        }
    };

    let gate = make_gate(None);
    c.bench_function("gate_cycle/disabled", |b| b.iter(|| cycle(&gate, ty)));

    let counter = Arc::new(CountingSink::default());
    let gate = make_gate(Some(counter.clone()));
    c.bench_function("gate_cycle/counting", |b| b.iter(|| cycle(&gate, ty)));
    assert!(counter.0.load(Ordering::Relaxed) > 0, "sink never fired");

    let recorder = Recorder::new(DEFAULT_RING_CAPACITY);
    let gate = make_gate(Some(Arc::new(RecorderSink::new(recorder.clone(), None))));
    c.bench_function("gate_cycle/recorder", |b| b.iter(|| cycle(&gate, ty)));
    assert!(recorder.total_written() > 0, "recorder never wrote");
}

fn bench_trace_overhead(c: &mut Criterion) {
    // Tracing must stay off the admission hot path. Three tiers:
    // `disabled_check` is what every query pays when no tracer is
    // configured (the broker's `Option` test — should be ~free);
    // `begin_finish_unsampled` is the per-query cost when a tracer exists
    // but head sampling drops the query (counter bump + buffered-then-
    // discarded trace); `begin_record_finish_sampled` is the full price of
    // a kept trace, including span buffering and sink dispatch.
    use bouncer_core::obs::{Event, EventSink, SpanKind, SpanStatus};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug, Default)]
    struct CountingSink(AtomicU64);
    impl EventSink for CountingSink {
        fn emit(&self, _event: &Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    let mut reg = TypeRegistry::new();
    let ty = reg.register("QT1");

    c.bench_function("trace_overhead/disabled_check", |b| {
        let tracer: Option<Arc<Tracer>> = None;
        b.iter(|| black_box(black_box(&tracer).as_deref().filter(|t| t.enabled())))
    });

    let sink = Arc::new(CountingSink::default());
    let unsampled = Tracer::new(
        sink.clone(),
        TracerConfig {
            sample_every: u64::MAX,
            slo_violation_ns: None,
        },
    );
    // The very first head draw always samples (0 is a multiple of any N);
    // burn it so the measured loop is the pure dropped path.
    let qt = unsampled.begin(Some(ty), 0, None);
    unsampled.finish(qt, SpanStatus::Ok, 500);
    let primed = sink.0.load(Ordering::Relaxed);
    c.bench_function("trace_overhead/begin_finish_unsampled", |b| {
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            let qt = unsampled.begin(Some(black_box(ty)), now, None);
            unsampled.finish(qt, SpanStatus::Ok, now + 500);
        })
    });
    assert_eq!(
        sink.0.load(Ordering::Relaxed),
        primed,
        "unsampled must not emit"
    );

    let sink = Arc::new(CountingSink::default());
    let sampled = Tracer::new(sink.clone(), TracerConfig::default());
    c.bench_function("trace_overhead/begin_record_finish_sampled", |b| {
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            let mut qt = sampled.begin(Some(black_box(ty)), now, None);
            qt.record_child(SpanKind::Admission, now, now + 100);
            qt.record_child(SpanKind::BrokerQueue, now + 100, now + 200);
            qt.record_child(SpanKind::BrokerService, now + 200, now + 500);
            sampled.finish(qt, SpanStatus::Ok, now + 500);
        })
    });
    assert!(sink.0.load(Ordering::Relaxed) > 0, "sampled traces must emit");
}

criterion_group!(
    benches,
    bench_policies,
    bench_admit_hot_path,
    bench_primitives,
    bench_full_gate_path,
    bench_observability,
    bench_trace_overhead
);
criterion_main!(benches);
