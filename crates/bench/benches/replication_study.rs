//! The replication crossover study, from `scenarios/fig_replication.scn`.
//!
//! The same 2-shard cluster runs at R = 2 under each broker→replica
//! routing strategy (primary-only, load-balanced, hedged) at a low and a
//! high capacity-relative rate. The headline is the overload↔underload
//! crossover: at low load hedged fan-out buys RT-p99 with idle replica
//! capacity (the loser is cancelled at dequeue and refunds its demand),
//! while past saturation the duplicate work is real and hedged sheds more
//! than primary-only.
//!
//! `scripts/check.sh` smoke-runs this bench, parses the
//! `replication_study/` lines into `BENCH_replication.json`, and gates on
//! the verdict: `crossover=true` requires hedged p99 below primary-only
//! p99 (with tolerance) at the low point AND primary-only rejecting no
//! more than hedged (with tolerance) at the high point.

use bouncer_bench::liquidstudy::LiquidStudy;
use bouncer_bench::runmode::RunMode;
use bouncer_bench::table::Table;
use bouncer_metrics::histogram::HistogramSnapshot;
use bouncer_workload::generator::LoadReport;
use liquid::broker::RouteStrategy;

/// Client-observed latency quantile across every query type, in ms.
fn overall_latency_ms(report: &LoadReport, q: f64) -> f64 {
    let mut merged: Option<HistogramSnapshot> = None;
    for t in &report.per_type {
        match merged.as_mut() {
            Some(acc) => acc.merge(&t.latency),
            None => merged = Some(t.latency.clone()),
        }
    }
    merged
        .and_then(|h| h.value_at_quantile(q))
        .map(|ns| ns as f64 / 1e6)
        .unwrap_or(0.0)
}

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let mut study = LiquidStudy::load("fig_replication.scn", &mode);
    println!(
        "measured capacity: {:.0} QPS ({} shards x {} replicas, {} brokers; strategies swapped in-process)",
        study.capacity_qps,
        study.cluster_cfg.n_shards,
        study.cluster_cfg.replicas,
        study.cluster_cfg.n_brokers,
    );
    let seed = study.spec().seed;
    let policy = study.policy("aa").clone();
    let points = study.rate_points().to_vec();

    let strategies = [
        ("primary-only", RouteStrategy::PrimaryOnly),
        ("load-balanced", RouteStrategy::LoadBalanced),
        ("hedged", RouteStrategy::Hedged),
    ];

    let mut table = Table::new(vec!["strategy", "rate", "QPS", "rej%", "p50 ms", "p99 ms"]);
    // [strategy][point] -> (rejection %, p50 ms, p99 ms)
    let mut cells = vec![vec![(0.0, 0.0, 0.0); points.len()]; strategies.len()];
    for (si, (name, strategy)) in strategies.iter().enumerate() {
        study.cluster_cfg.strategy = *strategy;
        for (pi, (label, factor)) in points.iter().enumerate() {
            let rate = study.capacity_qps * factor;
            let point = study.run_point(&policy, rate, seed, &mode);
            let rej = point.overall_rejection_pct();
            let p50 = overall_latency_ms(&point.client, 0.50);
            let p99 = overall_latency_ms(&point.client, 0.99);
            cells[si][pi] = (rej, p50, p99);
            // No progress dots here: check.sh merges stderr into stdout, and
            // a newline-less `.` would glue onto the next line and break the
            // `^replication_study/` grep. This line IS the progress output.
            println!("replication_study/{name}/{label} rej={rej:.4} p50={p50:.4} p99={p99:.4}");
            table.row(vec![
                name.to_string(),
                label.clone(),
                format!("{rate:.0}"),
                format!("{rej:.1}"),
                format!("{p50:.2}"),
                format!("{p99:.2}"),
            ]);
        }
    }

    table.print_tagged(
        "Replication crossover — rejection % and client RT vs load, R=2",
        &study.tag(),
    );

    // The crossover verdict. Tolerances absorb run-to-run noise without
    // hiding a real regression: hedging must clearly win the low-load
    // tail-latency race (its whole point), and at high load its advantage
    // must have collapsed — primary-only rejects no more than hedged plus
    // a noise allowance (cancelled losers refund their demand, so at
    // overload the two shed within a few points of each other; what the
    // gate protects against is hedging still *winning* past saturation,
    // which would mean duplicate work were somehow free).
    let (primary_rej_high, _, primary_p99_low) = {
        let low = cells[0][0];
        let high = cells[0][points.len() - 1];
        (high.0, low.1, low.2)
    };
    let (hedged_rej_high, hedged_p99_low) = {
        let low = cells[2][0];
        let high = cells[2][points.len() - 1];
        (high.0, low.2)
    };
    let crossover = hedged_p99_low <= primary_p99_low * 1.10
        && primary_rej_high <= hedged_rej_high + 2.5;
    println!(
        "replication_study/verdict hedged_p99_low={hedged_p99_low:.4} primary_p99_low={primary_p99_low:.4} \
         primary_rej_high={primary_rej_high:.4} hedged_rej_high={hedged_rej_high:.4} crossover={crossover}"
    );
    println!(
        "paper-shape: hedging trims the low-load tail (duplicates ride idle \
         replicas, losers cancelled at dequeue); past saturation the duplicate \
         demand is real and hedged sheds at least as much as primary-only."
    );
}
