//! §7 future work: "evaluating Bouncer against other policies in the
//! literature" — here a Gatekeeper-style capacity baseline (Elnikety et
//! al. 2004, the closest measurement-based relative discussed in §6),
//! from `scenarios/abl_literature.scn`.
//!
//! Expected: with its backlog horizon hand-tuned toward the SLO budget
//! (15 ms here — tuning Bouncer does not need), the capacity baseline can
//! keep serviced queries under the SLO much like MaxQWT; but being driven
//! by *mean* cost it spreads rejections across types instead of targeting
//! the SLO-critical ones, so it rejects substantially more overall —
//! the same trade the paper measures against its in-house capacity
//! policies (Figure 8 / Figure 11).

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{ms_opt, pct, Table};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("abl_literature.scn");
    let slow = study.ty("slow");
    let bouncer = study.policy("bouncer").clone();
    let gatekeeper = study.policy("gatekeeper").clone();

    let mut table = Table::new(vec![
        "factor",
        "B rt_p50(slow)",
        "GK rt_p50(slow)",
        "B rej_all %",
        "GK rej_all %",
        "B rej_slow %",
        "GK rej_slow %",
        "B util %",
        "GK util %",
    ]);
    for &factor in study.rate_factors() {
        let b = study.run_avg(&bouncer, factor, &mode);
        let g = study.run_avg(&gatekeeper, factor, &mode);
        table.row(vec![
            format!("{factor:.2}x"),
            ms_opt(b.rt_p50(slow)),
            ms_opt(g.rt_p50(slow)),
            pct(b.rej_all_pct),
            pct(g.rej_all_pct),
            pct(b.rej_pct[slow.index()]),
            pct(g.rej_pct[slow.index()]),
            pct(b.util_pct),
            pct(g.util_pct),
        ]);
        eprint!(".");
    }
    eprintln!();
    table.print_tagged(
        "Literature comparison — Bouncer vs Gatekeeper-style capacity control",
        &study.tag(),
    );
    println!("expected: the tuned capacity baseline bounds waits (like MaxQWT)");
    println!("but sheds cheap and costly types alike, so it rejects substantially");
    println!("more overall than Bouncer at every overloaded rate.");
}
