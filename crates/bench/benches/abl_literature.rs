//! §7 future work: "evaluating Bouncer against other policies in the
//! literature" — here a Gatekeeper-style capacity baseline (Elnikety et
//! al. 2004, the closest measurement-based relative discussed in §6).
//!
//! Expected: with its backlog horizon hand-tuned toward the SLO budget
//! (15 ms here — tuning Bouncer does not need), the capacity baseline can
//! keep serviced queries under the SLO much like MaxQWT; but being driven
//! by *mean* cost it spreads rejections across types instead of targeting
//! the SLO-critical ones, so it rejects substantially more overall —
//! the same trade the paper measures against its in-house capacity
//! policies (Figure 8 / Figure 11).

use std::sync::Arc;

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{SimStudy, PARALLELISM, RATE_FACTORS};
use bouncer_bench::table::{ms_opt, pct, Table};
use bouncer_core::prelude::*;
use bouncer_metrics::time::millis;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::new();
    let slow = study.ty("slow");

    let make_gatekeeper = || {
        let mut cfg = GatekeeperConfig::new(PARALLELISM);
        // Backlog horizon ~ the SLO budget for a fair comparison: 100ms of
        // backlog at P=100 is ~1ms of wait -- tune toward the SLO instead:
        // allow the queue to hold roughly the wait budget (18ms - cheap pt).
        cfg.horizon = millis(15);
        GatekeeperStyle::new(study.registry.len(), cfg)
    };

    let mut table = Table::new(vec![
        "factor",
        "B rt_p50(slow)",
        "GK rt_p50(slow)",
        "B rej_all %",
        "GK rej_all %",
        "B rej_slow %",
        "GK rej_slow %",
        "B util %",
        "GK util %",
    ]);
    for &factor in &RATE_FACTORS {
        let b = study.run_avg(&|_s| Arc::new(study.bouncer()) as Arc<dyn AdmissionPolicy>, factor, &mode);
        let g = study.run_avg(
            &|_s| Arc::new(make_gatekeeper()) as Arc<dyn AdmissionPolicy>,
            factor,
            &mode,
        );
        table.row(vec![
            format!("{factor:.2}x"),
            ms_opt(b.rt_p50(slow)),
            ms_opt(g.rt_p50(slow)),
            pct(b.rej_all_pct),
            pct(g.rej_all_pct),
            pct(b.rej_pct[slow.index()]),
            pct(g.rej_pct[slow.index()]),
            pct(b.util_pct),
            pct(g.util_pct),
        ]);
        eprint!(".");
    }
    eprintln!();
    table.print("Literature comparison — Bouncer vs Gatekeeper-style capacity control");
    println!("expected: the tuned capacity baseline bounds waits (like MaxQWT)");
    println!("but sheds cheap and costly types alike, so it rejects substantially");
    println!("more overall than Bouncer at every overloaded rate.");
}
