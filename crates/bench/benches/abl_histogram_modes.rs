//! Ablation (§7 extension): dual-buffer vs sliding-window processing-time
//! histograms.
//!
//! The paper's deployed Bouncer reads the previous interval's histogram
//! (dual buffer, §3 fn. 4) and proposes sliding windows as future work.
//! This ablation runs both modes across the rate sweep and reports the
//! SLO metric (rt_p50 of `slow`), rejection totals, and the decision-path
//! cost difference is covered by the `overhead` Criterion bench.
//!
//! Expected: nearly identical steady-state behavior (the workload is
//! stationary); the sliding window's fresher estimates slightly smooth the
//! starvation/recovery oscillations at extreme rates.

use std::sync::Arc;

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::{SimStudy, PARALLELISM, RATE_FACTORS};
use bouncer_bench::table::{ms_opt, pct, Table};
use bouncer_core::prelude::*;

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::new();
    let slow = study.ty("slow");

    let make = |histogram_mode: HistogramMode| {
        let mut cfg = BouncerConfig::with_parallelism(PARALLELISM);
        cfg.histogram_mode = histogram_mode;
        Bouncer::new(study.slos(), cfg)
    };

    let mut table = Table::new(vec![
        "factor",
        "dual rt_p50",
        "sliding rt_p50",
        "dual rej_all %",
        "sliding rej_all %",
        "dual rej_slow %",
        "sliding rej_slow %",
    ]);
    for &factor in &RATE_FACTORS {
        let dual = study.run_avg(
            &|_s| Arc::new(make(HistogramMode::DualBuffer)) as Arc<dyn AdmissionPolicy>,
            factor,
            &mode,
        );
        let sliding = study.run_avg(
            &|_s| {
                Arc::new(make(HistogramMode::Sliding { intervals: 4 })) as Arc<dyn AdmissionPolicy>
            },
            factor,
            &mode,
        );
        table.row(vec![
            format!("{factor:.2}x"),
            ms_opt(dual.rt_p50(slow)),
            ms_opt(sliding.rt_p50(slow)),
            pct(dual.rej_all_pct),
            pct(sliding.rej_all_pct),
            pct(dual.rej_pct[slow.index()]),
            pct(sliding.rej_pct[slow.index()]),
        ]);
        eprint!(".");
    }
    eprintln!();
    table.print("Histogram-mode ablation — Bouncer, dual-buffer (§3) vs sliding window (§7)");
    println!("expected: matching steady-state shapes; sliding reads cost ~20x more");
    println!("(snapshot+merge per read — see the `overhead` bench), which is why");
    println!("the paper deployed the dual-buffer scheme.");
}
