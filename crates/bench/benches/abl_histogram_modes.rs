//! Ablation (§7 extension): dual-buffer vs sliding-window processing-time
//! histograms, from `scenarios/abl_histogram_modes.scn`.
//!
//! The paper's deployed Bouncer reads the previous interval's histogram
//! (dual buffer, §3 fn. 4) and proposes sliding windows as future work.
//! This ablation runs both modes across the rate sweep and reports the
//! SLO metric (rt_p50 of `slow`), rejection totals, and the decision-path
//! cost difference is covered by the `overhead` Criterion bench.
//!
//! Expected: nearly identical steady-state behavior (the workload is
//! stationary); the sliding window's fresher estimates slightly smooth the
//! starvation/recovery oscillations at extreme rates.

use bouncer_bench::runmode::RunMode;
use bouncer_bench::simstudy::SimStudy;
use bouncer_bench::table::{ms_opt, pct, Table};

fn main() {
    let mode = RunMode::from_env();
    println!("{}", mode.banner());
    let study = SimStudy::load("abl_histogram_modes.scn");
    let slow = study.ty("slow");
    let dual_spec = study.policy("dual").clone();
    let sliding_spec = study.policy("sliding").clone();

    let mut table = Table::new(vec![
        "factor",
        "dual rt_p50",
        "sliding rt_p50",
        "dual rej_all %",
        "sliding rej_all %",
        "dual rej_slow %",
        "sliding rej_slow %",
    ]);
    for &factor in study.rate_factors() {
        let dual = study.run_avg(&dual_spec, factor, &mode);
        let sliding = study.run_avg(&sliding_spec, factor, &mode);
        table.row(vec![
            format!("{factor:.2}x"),
            ms_opt(dual.rt_p50(slow)),
            ms_opt(sliding.rt_p50(slow)),
            pct(dual.rej_all_pct),
            pct(sliding.rej_all_pct),
            pct(dual.rej_pct[slow.index()]),
            pct(sliding.rej_pct[slow.index()]),
        ]);
        eprint!(".");
    }
    eprintln!();
    table.print_tagged(
        "Histogram-mode ablation — Bouncer, dual-buffer (§3) vs sliding window (§7)",
        &study.tag(),
    );
    println!("expected: matching steady-state shapes; sliding reads cost ~20x more");
    println!("(snapshot+merge per read — see the `overhead` bench), which is why");
    println!("the paper deployed the dual-buffer scheme.");
}
