//! Quick vs full run sizes.
//!
//! Quick mode (default) keeps `cargo bench` runnable in minutes while
//! preserving every qualitative shape; full mode (`BOUNCER_BENCH_FULL=1`)
//! matches the paper's run sizes (1.5 M simulated queries per point, 5 runs
//! per cell, longer cluster measurements).

use std::time::Duration;

/// Run-size knobs derived from the environment.
#[derive(Debug, Clone, Copy)]
pub struct RunMode {
    /// Simulated queries measured per run (paper: 1.5 M).
    pub sim_measured: u64,
    /// Simulated warm-up queries per run.
    pub sim_warmup: u64,
    /// Runs averaged per cell (paper: 5).
    pub runs: u64,
    /// Measured wall-clock duration per cluster data point.
    pub liquid_measure: Duration,
    /// Cluster warm-up duration per data point (paper: 1 min).
    pub liquid_warmup: Duration,
    /// `true` in full (paper-scale) mode.
    pub full: bool,
}

impl RunMode {
    /// Reads `BOUNCER_BENCH_FULL` from the environment.
    pub fn from_env() -> Self {
        if std::env::var("BOUNCER_BENCH_FULL").map(|v| v == "1").unwrap_or(false) {
            Self {
                sim_measured: 1_500_000,
                sim_warmup: 100_000,
                runs: 5,
                liquid_measure: Duration::from_secs(60),
                liquid_warmup: Duration::from_secs(10),
                full: true,
            }
        } else {
            Self {
                sim_measured: 200_000,
                sim_warmup: 50_000,
                runs: 3,
                liquid_measure: Duration::from_secs(10),
                liquid_warmup: Duration::from_secs(3),
                full: false,
            }
        }
    }

    /// A banner line describing the mode.
    pub fn banner(&self) -> String {
        format!(
            "mode: {} ({} sim queries/run, {} runs/cell, {:?} per cluster point; set BOUNCER_BENCH_FULL=1 for paper-scale runs)",
            if self.full { "FULL" } else { "QUICK" },
            self.sim_measured,
            self.runs,
            self.liquid_measure,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_is_default_shape() {
        // Cannot touch the process env safely in tests; construct directly.
        let quick = RunMode {
            sim_measured: 200_000,
            sim_warmup: 50_000,
            runs: 3,
            liquid_measure: Duration::from_secs(10),
            liquid_warmup: Duration::from_secs(3),
            full: false,
        };
        assert!(quick.banner().contains("QUICK"));
    }
}
