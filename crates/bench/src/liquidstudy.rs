//! The §5.4 real-system study setup, shared by the Figure 11–13 benches.
//!
//! The paper drives a 16-shard / 12-broker production cluster at 36K–180K
//! QPS with a wrk2-derived generator, the published QT1..QT11 mix, brokers
//! running the policy under evaluation and shards running AcceptFraction
//! (80 %), `L_limit = 800`, SLO `{p50 = 18 ms, p90 = 90 ms}` — our scaled
//! stand-in keeps every one of those structural choices and replaces the
//! absolute rate axis with multiples of the mini-cluster's *measured*
//! capacity (the paper's own observation anchors the mapping: "shards
//! report high CPU utilization at rates ≥ 108K QPS", i.e. the third of the
//! five points sits at the knee).

use std::sync::Arc;
use std::time::Duration;

use bouncer_core::policy::{
    AcceptFraction, AcceptFractionConfig, AcceptanceAllowance, AdmissionPolicy, AlwaysAccept,
    Bouncer, BouncerConfig, HelpingTheUnderserved, MaxQueueLength, MaxQueueWaitTime,
};
use bouncer_core::slo::{Slo, SloConfig};
use bouncer_core::types::TypeRegistry;
use bouncer_metrics::histogram::HistogramSnapshot;
use bouncer_metrics::time::millis;
use bouncer_workload::dist::{Exponential, LogNormal};
use bouncer_workload::generator::{LoadReport, TypeReport};
use bouncer_workload::mix::{QueryClass, QueryMix, LIQUID_MIX_PROPORTIONS};
use liquid::broker::{kind_type_id, liquid_registry, ClientOutcome};
use liquid::cluster::{Cluster, ClusterConfig};
use liquid::query::{Query, QueryKind};

use crate::runmode::RunMode;

/// The five traffic points, as fractions of the measured saturation
/// capacity. The paper's 36K–180K QPS axis has its knee ("high CPU
/// utilization") at the third point, so the third point here sits just
/// above saturation.
pub const RATE_FACTORS: [(&str, f64); 5] = [
    ("36K-analog", 0.42),
    ("72K-analog", 0.83),
    ("108K-analog", 1.25),
    ("144K-analog", 1.67),
    ("180K-analog", 2.08),
];

/// A broker-policy factory: `(registry, broker engines, seed) -> policy`.
pub type PolicyFactory = dyn Fn(&TypeRegistry, u32, u64) -> Arc<dyn AdmissionPolicy> + Sync;

/// The shared fixture: cluster shape plus the measured capacity anchor.
pub struct LiquidStudy {
    /// Cluster shape used by every run.
    pub cluster_cfg: ClusterConfig,
    /// The QT1..QT11 registry.
    pub registry: TypeRegistry,
    /// Measured admitted-throughput capacity (QPS) of this machine.
    pub capacity_qps: f64,
    /// Generator mix with the published proportions.
    pub mix: QueryMix,
    /// Worker threads for the closed-loop capacity probe.
    pub workers: usize,
}

impl LiquidStudy {
    /// Builds the fixture and probes capacity once with pass-through
    /// brokers.
    pub fn new(mode: &RunMode) -> Self {
        let cluster_cfg = ClusterConfig::default();
        let registry = liquid_registry();
        let mix = liquid_mix();

        let probe_cluster =
            Cluster::spawn(&cluster_cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        let vertices = probe_cluster.vertices();
        let probe_mix = mix.clone();
        let probe_time = if mode.full {
            Duration::from_secs(10)
        } else {
            Duration::from_secs(4)
        };
        let capacity_qps = probe_cluster.probe_capacity(probe_time, 16, move |rng| {
            let class = probe_mix.sample_class(rng);
            let kind = QueryKind::from_index(class.ty.index() - 1).expect("kind");
            Query::random(kind, vertices, rng)
        });
        probe_cluster.shutdown();

        Self {
            cluster_cfg,
            registry,
            capacity_qps,
            mix,
            workers: 12,
        }
    }

    /// Runs one (policy, rate) data point: spawn, warm up, measure, tear
    /// down.
    pub fn run_point(
        &self,
        make_policy: &PolicyFactory,
        rate_qps: f64,
        seed: u64,
        mode: &RunMode,
    ) -> LiquidPoint {
        let cluster = Cluster::spawn(&self.cluster_cfg, |reg, engines| {
            make_policy(reg, engines, seed)
        });
        let n_types = self.registry.len();

        // Warm-up at the same rate (the paper warms the cluster one minute
        // before each run), then reset host statistics and measure.
        let _ = drive_cluster(&cluster, &self.mix, rate_qps, mode.liquid_warmup, seed, n_types);
        cluster.reset_stats();

        let client = drive_cluster(
            &cluster,
            &self.mix,
            rate_qps,
            mode.liquid_measure,
            seed ^ 0xFEED,
            n_types,
        );

        // Merge broker-side statistics across brokers.
        let mut broker_rt: Vec<Option<HistogramSnapshot>> = vec![None; n_types];
        let mut broker_pt: Vec<Option<HistogramSnapshot>> = vec![None; n_types];
        let mut received = vec![0u64; n_types];
        let mut rejected = vec![0u64; n_types];
        for broker in cluster.brokers() {
            let snap = broker.stats().snapshot(1, broker.parallelism());
            for (i, t) in snap.per_type.iter().enumerate() {
                received[i] += t.received;
                rejected[i] += t.rejected();
                merge_into(&mut broker_rt[i], &t.response);
                merge_into(&mut broker_pt[i], &t.processing);
            }
        }
        let shard_rejections: u64 = cluster
            .shards()
            .iter()
            .map(|s| s.stats().snapshot(1, 1).total_rejected())
            .sum();

        cluster.shutdown();
        LiquidPoint {
            client,
            broker_rt: broker_rt.into_iter().collect(),
            broker_pt: broker_pt.into_iter().collect(),
            received,
            rejected,
            shard_rejections,
        }
    }
}

/// Drives a cluster truly open-loop: one pacing thread submits queries at
/// the intended Poisson instants *without waiting for responses* (tagged
/// submission), and one collector thread measures latencies from the
/// intended send times. Unlike a pool of blocking workers, this sustains
/// the intended rate even when the system under test holds seconds of
/// queued work — which is exactly the regime the non-early-rejecting
/// policies (MaxQL, AcceptFraction) enter at overload.
pub fn drive_cluster(
    cluster: &Cluster,
    mix: &QueryMix,
    rate_qps: f64,
    duration: std::time::Duration,
    seed: u64,
    n_types: usize,
) -> LoadReport {
    use bouncer_metrics::AtomicHistogram;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    struct Counters {
        sent: AtomicU64,
        ok: AtomicU64,
        rejected: AtomicU64,
        errors: AtomicU64,
        latency: AtomicHistogram,
    }
    let counters: Vec<Counters> = (0..n_types)
        .map(|_| Counters {
            sent: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: AtomicHistogram::new(),
        })
        .collect();

    let epoch = Instant::now();
    let (tx, rx) = crossbeam::channel::unbounded::<(u64, ClientOutcome)>();
    let vertices = cluster.vertices();

    std::thread::scope(|scope| {
        // Collector: one thread services any number of in-flight queries.
        // Tokens pack (type index << 56 | intended nanos) so latency can be
        // computed without a lookup table.
        let counters_ref = &counters;
        let collector = scope.spawn(move || {
            // The channel disconnects once the submitter's sender and every
            // in-flight Responder clone have dropped; a timeout bounds the
            // drain if an engine wedges.
            while let Ok((token, outcome)) =
                rx.recv_timeout(std::time::Duration::from_secs(30))
            {
                let ty = (token >> 56) as usize;
                let intended_ns = token & ((1 << 56) - 1);
                let c = &counters_ref[ty.min(counters_ref.len() - 1)];
                match outcome {
                    ClientOutcome::Ok(_) => {
                        let now_ns = epoch.elapsed().as_nanos() as u64;
                        c.ok.fetch_add(1, Ordering::Relaxed);
                        c.latency.record(now_ns.saturating_sub(intended_ns));
                    }
                    ClientOutcome::Rejected(_) | ClientOutcome::ShardRejected => {
                        c.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    ClientOutcome::Expired | ClientOutcome::Failed => {
                        c.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });

        // Submitter: paced, non-blocking.
        let mut rng = SmallRng::seed_from_u64(seed);
        let gaps = Exponential::new(rate_qps);
        let deadline = duration;
        let mut intended = std::time::Duration::from_secs_f64(gaps.sample(&mut rng));
        while intended < deadline {
            let target = epoch + intended;
            let now = Instant::now();
            if now < target {
                std::thread::sleep(target - now);
            }
            let class = mix.sample_class(&mut rng);
            let kind = QueryKind::from_index(class.ty.index() - 1).expect("kind");
            let q = Query::random(kind, vertices, &mut rng);
            counters[class.ty.index()].sent.fetch_add(1, Ordering::Relaxed);
            let token = ((class.ty.index() as u64) << 56) | intended.as_nanos() as u64;
            cluster.submit_tagged(q, tx.clone(), token);
            intended += std::time::Duration::from_secs_f64(gaps.sample(&mut rng));
        }
        drop(tx);
        let _ = collector.join();
    });

    LoadReport {
        per_type: counters
            .iter()
            .map(|c| TypeReport {
                sent: c.sent.load(Ordering::Relaxed),
                ok: c.ok.load(Ordering::Relaxed),
                rejected: c.rejected.load(Ordering::Relaxed),
                errors: c.errors.load(Ordering::Relaxed),
                latency: c.latency.snapshot(),
            })
            .collect(),
        elapsed: epoch.elapsed(),
    }
}

fn merge_into(slot: &mut Option<HistogramSnapshot>, snap: &HistogramSnapshot) {
    match slot {
        Some(acc) => acc.merge(snap),
        None => *slot = Some(snap.clone()),
    }
}

/// One (policy, rate) measurement.
#[derive(Debug)]
pub struct LiquidPoint {
    /// Client-side (wrk2-style) per-type results.
    pub client: LoadReport,
    /// Broker-side response-time distributions per type (merged).
    pub broker_rt: Vec<Option<HistogramSnapshot>>,
    /// Broker-side processing-time distributions per type (merged).
    pub broker_pt: Vec<Option<HistogramSnapshot>>,
    /// Broker-side received counts per type.
    pub received: Vec<u64>,
    /// Broker-side rejected counts per type.
    pub rejected: Vec<u64>,
    /// Rejections produced by the shard tier (the paper confirms brokers
    /// produce the vast majority).
    pub shard_rejections: u64,
}

impl LiquidPoint {
    /// Client-observed overall rejection percentage.
    pub fn overall_rejection_pct(&self) -> f64 {
        self.client.overall_rejection_ratio() * 100.0
    }

    /// Client-observed latency quantile for a type, in ms.
    pub fn client_latency_ms(&self, kind: QueryKind, q: f64) -> Option<f64> {
        self.client.per_type[kind_type_id(kind).index()]
            .latency
            .value_at_quantile(q)
            .map(|ns| ns as f64 / 1e6)
    }

    /// Broker-observed response-time quantile for a type, in ms.
    pub fn broker_rt_ms(&self, kind: QueryKind, q: f64) -> Option<f64> {
        self.broker_rt[kind_type_id(kind).index()]
            .as_ref()?
            .value_at_quantile(q)
            .map(|ns| ns as f64 / 1e6)
    }

    /// Broker-observed processing-time quantile for a type, in ms.
    pub fn broker_pt_ms(&self, kind: QueryKind, q: f64) -> Option<f64> {
        self.broker_pt[kind_type_id(kind).index()]
            .as_ref()?
            .value_at_quantile(q)
            .map(|ns| ns as f64 / 1e6)
    }
}

/// The generator mix: published proportions; the lognormal column is unused
/// by the generator (costs come from actually executing the queries).
pub fn liquid_mix() -> QueryMix {
    QueryMix::new(
        LIQUID_MIX_PROPORTIONS
            .iter()
            .enumerate()
            .map(|(i, &(name, prop))| QueryClass {
                ty: kind_type_id(QueryKind::ALL[i]),
                name: name.to_owned(),
                proportion: prop,
                processing_ms: LogNormal::new(0.0, 0.0),
            })
            .collect(),
    )
}

/// The §5.4 SLO configuration: `{p50 = 18 ms, p90 = 50 ms}` for every type.
pub fn liquid_slos(registry: &TypeRegistry) -> SloConfig {
    SloConfig::uniform(registry, Slo::p50_p90(millis(18), millis(50)))
}

/// Bouncer + acceptance-allowance (A = 0.05), the paper's §5.4 setup.
pub fn bouncer_aa_factory() -> Box<PolicyFactory> {
    Box::new(|reg, engines, seed| {
        let bouncer = Bouncer::new(liquid_slos(reg), BouncerConfig::with_parallelism(engines));
        Arc::new(AcceptanceAllowance::new(bouncer, reg.len(), 0.05, seed))
    })
}

/// Bouncer + helping-the-underserved (α = 1.0).
pub fn bouncer_htu_factory() -> Box<PolicyFactory> {
    Box::new(|reg, engines, seed| {
        let bouncer = Bouncer::new(liquid_slos(reg), BouncerConfig::with_parallelism(engines));
        Arc::new(HelpingTheUnderserved::new(bouncer, reg.len(), 1.0, seed))
    })
}

/// MaxQL with the `L_limit = 800` setting.
pub fn maxql_factory() -> Box<PolicyFactory> {
    Box::new(|_reg, _engines, _seed| Arc::new(MaxQueueLength::new(800)))
}

/// MaxQWT with the paper's 12 ms wait-time limit.
pub fn maxqwt_factory() -> Box<PolicyFactory> {
    Box::new(|_reg, engines, _seed| Arc::new(MaxQueueWaitTime::new(millis(12), engines)))
}

/// AcceptFraction with the paper's conservative 80 % threshold.
pub fn accept_fraction_factory() -> Box<PolicyFactory> {
    Box::new(|_reg, engines, seed| {
        let mut cfg = AcceptFractionConfig::new(0.8, engines);
        cfg.seed = seed;
        Arc::new(AcceptFraction::new(cfg))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_lines_up_with_kinds() {
        let mix = liquid_mix();
        assert_eq!(mix.classes().len(), 11);
        for (i, c) in mix.classes().iter().enumerate() {
            assert_eq!(c.ty, kind_type_id(QueryKind::ALL[i]));
            assert_eq!(c.name, QueryKind::ALL[i].name());
        }
        // QT11 dominates, like the published mix.
        assert!(mix.classes()[10].proportion > 0.27);
    }

    #[test]
    fn factories_build_policies() {
        let reg = liquid_registry();
        for factory in [
            bouncer_aa_factory(),
            bouncer_htu_factory(),
            maxql_factory(),
            maxqwt_factory(),
            accept_fraction_factory(),
        ] {
            let policy = factory(&reg, 8, 1);
            assert!(!policy.name().is_empty());
        }
    }

    #[test]
    fn slos_cover_all_types() {
        let reg = liquid_registry();
        let slos = liquid_slos(&reg);
        assert_eq!(slos.n_types(), 12);
    }
}
