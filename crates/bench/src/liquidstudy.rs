//! The §5.4 real-system study setup, shared by the Figure 11–13 benches.
//!
//! The paper drives a 16-shard / 12-broker production cluster at 36K–180K
//! QPS with a wrk2-derived generator, the published QT1..QT11 mix, brokers
//! running the policy under evaluation and shards running AcceptFraction
//! (80 %), `L_limit = 800`, SLO `{p50 = 18 ms, p90 = 90 ms}` — our scaled
//! stand-in keeps every one of those structural choices and replaces the
//! absolute rate axis with multiples of the mini-cluster's *measured*
//! capacity (the paper's own observation anchors the mapping: "shards
//! report high CPU utilization at rates ≥ 108K QPS", i.e. the third of the
//! five points sits at the knee).
//!
//! Since the scenario-spec refactor the cluster shape, traffic points, and
//! broker policies all come from a `scenarios/*.scn` file: the fixture is
//! built with [`LiquidStudy::load`], and [`LiquidStudy::run_point`] builds
//! each broker's policy through [`PolicySpec::build`] — no bench declares
//! its own policy factory.

use std::sync::Arc;
use std::time::Duration;

use bouncer_core::policy::AlwaysAccept;
use bouncer_core::slo::{Slo, SloConfig};
use bouncer_core::spec::{
    defaults, PolicyEnv, PolicySpec, ScenarioSpec, StrategySpec, TransportSpec,
};
use bouncer_core::types::TypeRegistry;
use bouncer_metrics::histogram::HistogramSnapshot;
use bouncer_metrics::time::millis_f64;
use bouncer_workload::dist::{Exponential, LogNormal};
use bouncer_workload::generator::{LoadReport, TypeReport};
use bouncer_workload::mix::{QueryClass, QueryMix, LIQUID_MIX_PROPORTIONS};
use liquid::broker::{kind_type_id, liquid_registry, ClientOutcome, RouteStrategy};
use liquid::cluster::{Cluster, ClusterConfig, TransportKind};
use liquid::query::{Query, QueryKind};

use crate::runmode::RunMode;
use crate::simstudy::scenario_path;

/// The shared fixture: the scenario, the cluster shape it maps to, and the
/// measured capacity anchor.
pub struct LiquidStudy {
    spec: ScenarioSpec,
    /// Cluster shape used by every run.
    pub cluster_cfg: ClusterConfig,
    /// The QT1..QT11 registry.
    pub registry: TypeRegistry,
    /// Measured admitted-throughput capacity (QPS) of this machine.
    pub capacity_qps: f64,
    /// Generator mix with the published proportions.
    pub mix: QueryMix,
    /// Worker threads for the closed-loop capacity probe.
    pub workers: usize,
}

impl LiquidStudy {
    /// The default §5.4 fixture shape (2 shards, 1 broker, the five
    /// capacity-relative traffic points).
    pub fn new(mode: &RunMode) -> Self {
        Self::from_spec(
            ScenarioSpec::parse("name = liquid_study\nruntime = liquid\npolicy = always\n")
                .expect("default spec"),
            mode,
        )
    }

    /// Loads a liquid scenario file from `scenarios/` by file name.
    pub fn load(file_name: &str, mode: &RunMode) -> Self {
        let path = scenario_path(file_name);
        let spec = ScenarioSpec::load(&path)
            .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));
        Self::from_spec(spec, mode)
    }

    /// Builds the fixture from a spec (which must select the liquid
    /// runtime) and probes capacity once with pass-through brokers.
    pub fn from_spec(spec: ScenarioSpec, mode: &RunMode) -> Self {
        let liquid = spec.liquid().unwrap_or_else(|e| panic!("{e}")).clone();
        let mut cluster_cfg = ClusterConfig {
            n_shards: liquid.shards as usize,
            n_brokers: liquid.brokers as usize,
            transport: match liquid.transport {
                TransportSpec::Channels => TransportKind::InProc,
                TransportSpec::Tcp => TransportKind::Tcp,
                // Rings clusters take queries through `Cluster::execute`
                // only; the study driver's submit/poll loop has no
                // equivalent there yet.
                TransportSpec::Rings => panic!(
                    "rings transport is not supported by the rate study driver; \
                     use channels or tcp"
                ),
            },
            shard_max_utilization: liquid.shard_max_utilization,
            replicas: liquid.replicas as usize,
            strategy: match liquid.strategy {
                StrategySpec::PrimaryOnly => RouteStrategy::PrimaryOnly,
                StrategySpec::LoadBalanced => RouteStrategy::LoadBalanced,
                StrategySpec::Hedged => RouteStrategy::Hedged,
            },
            ..ClusterConfig::default()
        };
        cluster_cfg.broker.batch_fanout = liquid.batch_fanout;
        cluster_cfg.graph.vertices = liquid.graph_vertices;
        cluster_cfg.graph.edges_per_vertex = liquid.graph_edges_per_vertex;
        let registry = liquid_registry();
        let mix = liquid_mix();

        let probe_cluster =
            Cluster::spawn(&cluster_cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        let vertices = probe_cluster.vertices();
        let probe_mix = mix.clone();
        let probe_time = if mode.full {
            Duration::from_secs(10)
        } else {
            Duration::from_secs(4)
        };
        let capacity_qps = probe_cluster.probe_capacity(probe_time, 16, move |rng| {
            let class = probe_mix.sample_class(rng);
            let kind = QueryKind::from_index(class.ty.index() - 1).expect("kind");
            Query::random(kind, vertices, rng)
        });
        probe_cluster.shutdown();

        Self {
            spec,
            cluster_cfg,
            registry,
            capacity_qps,
            mix,
            workers: 12,
        }
    }

    /// The scenario this fixture was resolved from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// `"{name} {hash}"` — the banner tag benches stamp on table titles.
    pub fn tag(&self) -> String {
        self.spec.tag()
    }

    /// The scenario's traffic points: `(label, factor)` with factors
    /// relative to the measured saturation capacity.
    pub fn rate_points(&self) -> &[(String, f64)] {
        &self.spec.liquid().expect("checked in from_spec").rate_points
    }

    /// The scenario's policy labeled `label`.
    pub fn policy(&self, label: &str) -> &PolicySpec {
        self.spec.policy(label).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs one (policy, rate) data point: spawn the cluster with brokers
    /// built through the spec registry, warm up, measure, tear down.
    pub fn run_point(
        &self,
        policy: &PolicySpec,
        rate_qps: f64,
        seed: u64,
        mode: &RunMode,
    ) -> LiquidPoint {
        let cluster = Cluster::spawn(&self.cluster_cfg, |reg, engines| {
            let env = PolicyEnv {
                registry: reg,
                slos: liquid_slos(reg),
                parallelism: engines,
            };
            policy.build(&env, seed)
        });
        let n_types = self.registry.len();

        // Warm-up at the same rate (the paper warms the cluster one minute
        // before each run), then reset host statistics and measure.
        let _ = drive_cluster(&cluster, &self.mix, rate_qps, mode.liquid_warmup, seed, n_types);
        cluster.reset_stats();

        let client = drive_cluster(
            &cluster,
            &self.mix,
            rate_qps,
            mode.liquid_measure,
            seed ^ 0xFEED,
            n_types,
        );

        // Merge broker-side statistics across brokers.
        let mut broker_rt: Vec<Option<HistogramSnapshot>> = vec![None; n_types];
        let mut broker_pt: Vec<Option<HistogramSnapshot>> = vec![None; n_types];
        let mut received = vec![0u64; n_types];
        let mut rejected = vec![0u64; n_types];
        for broker in cluster.brokers() {
            let snap = broker.stats().snapshot(1, broker.parallelism());
            for (i, t) in snap.per_type.iter().enumerate() {
                received[i] += t.received;
                rejected[i] += t.rejected();
                merge_into(&mut broker_rt[i], &t.response);
                merge_into(&mut broker_pt[i], &t.processing);
            }
        }
        let shard_rejections: u64 = cluster
            .shards()
            .iter()
            .map(|s| s.stats().snapshot(1, 1).total_rejected())
            .sum();

        cluster.shutdown();
        LiquidPoint {
            client,
            broker_rt: broker_rt.into_iter().collect(),
            broker_pt: broker_pt.into_iter().collect(),
            received,
            rejected,
            shard_rejections,
        }
    }
}

/// Drives a cluster truly open-loop: one pacing thread submits queries at
/// the intended Poisson instants *without waiting for responses* (tagged
/// submission), and one collector thread measures latencies from the
/// intended send times. Unlike a pool of blocking workers, this sustains
/// the intended rate even when the system under test holds seconds of
/// queued work — which is exactly the regime the non-early-rejecting
/// policies (MaxQL, AcceptFraction) enter at overload.
pub fn drive_cluster(
    cluster: &Cluster,
    mix: &QueryMix,
    rate_qps: f64,
    duration: std::time::Duration,
    seed: u64,
    n_types: usize,
) -> LoadReport {
    use bouncer_metrics::AtomicHistogram;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    struct Counters {
        sent: AtomicU64,
        ok: AtomicU64,
        rejected: AtomicU64,
        errors: AtomicU64,
        latency: AtomicHistogram,
    }
    let counters: Vec<Counters> = (0..n_types)
        .map(|_| Counters {
            sent: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: AtomicHistogram::new(),
        })
        .collect();

    let epoch = Instant::now();
    let (tx, rx) = crossbeam::channel::unbounded::<(u64, ClientOutcome)>();
    let vertices = cluster.vertices();

    std::thread::scope(|scope| {
        // Collector: one thread services any number of in-flight queries.
        // Tokens pack (type index << 56 | intended nanos) so latency can be
        // computed without a lookup table.
        let counters_ref = &counters;
        let collector = scope.spawn(move || {
            // The channel disconnects once the submitter's sender and every
            // in-flight Responder clone have dropped; a timeout bounds the
            // drain if an engine wedges.
            while let Ok((token, outcome)) =
                rx.recv_timeout(std::time::Duration::from_secs(30))
            {
                let ty = (token >> 56) as usize;
                let intended_ns = token & ((1 << 56) - 1);
                let c = &counters_ref[ty.min(counters_ref.len() - 1)];
                match outcome {
                    ClientOutcome::Ok(_) => {
                        let now_ns = epoch.elapsed().as_nanos() as u64;
                        c.ok.fetch_add(1, Ordering::Relaxed);
                        c.latency.record(now_ns.saturating_sub(intended_ns));
                    }
                    ClientOutcome::Rejected(_) | ClientOutcome::ShardRejected => {
                        c.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    ClientOutcome::Expired | ClientOutcome::Failed => {
                        c.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });

        // Submitter: paced, non-blocking.
        let mut rng = SmallRng::seed_from_u64(seed);
        let gaps = Exponential::new(rate_qps);
        let deadline = duration;
        let mut intended = std::time::Duration::from_secs_f64(gaps.sample(&mut rng));
        while intended < deadline {
            let target = epoch + intended;
            let now = Instant::now();
            if now < target {
                std::thread::sleep(target - now);
            }
            let class = mix.sample_class(&mut rng);
            let kind = QueryKind::from_index(class.ty.index() - 1).expect("kind");
            let q = Query::random(kind, vertices, &mut rng);
            counters[class.ty.index()].sent.fetch_add(1, Ordering::Relaxed);
            let token = ((class.ty.index() as u64) << 56) | intended.as_nanos() as u64;
            cluster.submit_tagged(q, tx.clone(), token);
            intended += std::time::Duration::from_secs_f64(gaps.sample(&mut rng));
        }
        drop(tx);
        let _ = collector.join();
    });

    LoadReport {
        per_type: counters
            .iter()
            .map(|c| TypeReport {
                sent: c.sent.load(Ordering::Relaxed),
                ok: c.ok.load(Ordering::Relaxed),
                rejected: c.rejected.load(Ordering::Relaxed),
                errors: c.errors.load(Ordering::Relaxed),
                latency: c.latency.snapshot(),
            })
            .collect(),
        elapsed: epoch.elapsed(),
    }
}

fn merge_into(slot: &mut Option<HistogramSnapshot>, snap: &HistogramSnapshot) {
    match slot {
        Some(acc) => acc.merge(snap),
        None => *slot = Some(snap.clone()),
    }
}

/// One (policy, rate) measurement.
#[derive(Debug)]
pub struct LiquidPoint {
    /// Client-side (wrk2-style) per-type results.
    pub client: LoadReport,
    /// Broker-side response-time distributions per type (merged).
    pub broker_rt: Vec<Option<HistogramSnapshot>>,
    /// Broker-side processing-time distributions per type (merged).
    pub broker_pt: Vec<Option<HistogramSnapshot>>,
    /// Broker-side received counts per type.
    pub received: Vec<u64>,
    /// Broker-side rejected counts per type.
    pub rejected: Vec<u64>,
    /// Rejections produced by the shard tier (the paper confirms brokers
    /// produce the vast majority).
    pub shard_rejections: u64,
}

impl LiquidPoint {
    /// Client-observed overall rejection percentage.
    pub fn overall_rejection_pct(&self) -> f64 {
        self.client.overall_rejection_ratio() * 100.0
    }

    /// Client-observed latency quantile for a type, in ms.
    pub fn client_latency_ms(&self, kind: QueryKind, q: f64) -> Option<f64> {
        self.client.per_type[kind_type_id(kind).index()]
            .latency
            .value_at_quantile(q)
            .map(|ns| ns as f64 / 1e6)
    }

    /// Broker-observed response-time quantile for a type, in ms.
    pub fn broker_rt_ms(&self, kind: QueryKind, q: f64) -> Option<f64> {
        self.broker_rt[kind_type_id(kind).index()]
            .as_ref()?
            .value_at_quantile(q)
            .map(|ns| ns as f64 / 1e6)
    }

    /// Broker-observed processing-time quantile for a type, in ms.
    pub fn broker_pt_ms(&self, kind: QueryKind, q: f64) -> Option<f64> {
        self.broker_pt[kind_type_id(kind).index()]
            .as_ref()?
            .value_at_quantile(q)
            .map(|ns| ns as f64 / 1e6)
    }
}

/// The generator mix: published proportions; the lognormal column is unused
/// by the generator (costs come from actually executing the queries).
pub fn liquid_mix() -> QueryMix {
    QueryMix::new(
        LIQUID_MIX_PROPORTIONS
            .iter()
            .enumerate()
            .map(|(i, &(name, prop))| QueryClass {
                ty: kind_type_id(QueryKind::ALL[i]),
                name: name.to_owned(),
                proportion: prop,
                processing_ms: LogNormal::new(0.0, 0.0),
            })
            .collect(),
    )
}

/// The §5.4 SLO configuration: `{p50 = 18 ms, p90 = 50 ms}` for every type.
pub fn liquid_slos(registry: &TypeRegistry) -> SloConfig {
    SloConfig::uniform(
        registry,
        Slo::p50_p90(
            millis_f64(defaults::SLO_P50_MS),
            millis_f64(defaults::SLO_P90_MS),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_lines_up_with_kinds() {
        let mix = liquid_mix();
        assert_eq!(mix.classes().len(), 11);
        for (i, c) in mix.classes().iter().enumerate() {
            assert_eq!(c.ty, kind_type_id(QueryKind::ALL[i]));
            assert_eq!(c.name, QueryKind::ALL[i].name());
        }
        // QT11 dominates, like the published mix.
        assert!(mix.classes()[10].proportion > 0.27);
    }

    #[test]
    fn scenario_policies_build_for_brokers() {
        let spec = ScenarioSpec::parse(
            "name = t\nruntime = liquid\n\
             policy.aa = bouncer+aa A=0.05\npolicy.maxql = maxql limit=800\n\
             policy.maxqwt = maxqwt wait=12ms\npolicy.af = acceptfraction util=0.8\n",
        )
        .unwrap();
        let reg = liquid_registry();
        let env = PolicyEnv {
            registry: &reg,
            slos: liquid_slos(&reg),
            parallelism: 8,
        };
        for (label, p) in &spec.policies {
            let policy = p.build(&env, 1);
            assert!(!policy.name().is_empty(), "{label}");
        }
    }

    #[test]
    fn default_spec_has_the_five_paper_points() {
        let spec =
            ScenarioSpec::parse("name = t\nruntime = liquid\npolicy = always\n").unwrap();
        let points = &spec.liquid().unwrap().rate_points;
        assert_eq!(points.len(), 5);
        assert_eq!(points[0].0, "36K-analog");
        assert!((points[2].1 - 1.25).abs() < 1e-9);
    }

    #[test]
    fn slos_cover_all_types() {
        let reg = liquid_registry();
        let slos = liquid_slos(&reg);
        assert_eq!(slos.n_types(), 12);
    }
}
