//! The §5.3 simulation-study harness, shared by the figure/table benches.
//!
//! Since the scenario-spec refactor this is a thin wrapper around
//! [`ScenarioSim`]: every bench loads its declarative `.scn` file from
//! `scenarios/`, and all policies are built through the spec registry
//! ([`PolicySpec::build`]) — the Table 2 parameters live in the scenario
//! files and `bouncer_core::spec::defaults`, not here. What this module
//! adds is the study's multi-seed averaging ([`SimStudy::run_avg`]) and
//! the [`RunMode`] sizing (quick vs paper-scale).

use std::path::{Path, PathBuf};

use bouncer_core::policy::AdmissionPolicy;
use bouncer_core::slo::SloConfig;
use bouncer_core::spec::{PolicySpec, ScenarioSpec};
use bouncer_core::types::{TypeId, TypeRegistry};
use bouncer_sim::{run, ScenarioSim, SimResult};
use bouncer_workload::QueryMix;

use crate::runmode::RunMode;

pub use bouncer_core::spec::defaults::{PARALLELISM, SIM_RATE_FACTORS as RATE_FACTORS, TYPE_NAMES};

/// Absolute path of a checked-in scenario file (`scenarios/<name>` under
/// the workspace root), so benches find their specs regardless of the
/// directory `cargo bench` runs from.
pub fn scenario_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name)
}

/// Shared study fixture: a resolved sim scenario.
pub struct SimStudy {
    scenario: ScenarioSim,
}

impl SimStudy {
    /// The default §5.3 fixture (Table 1 mix, `P = 100`, Table 3 sweep) —
    /// the same shape every sim scenario file starts from.
    pub fn new() -> Self {
        Self::from_spec(
            ScenarioSpec::parse("name = sim_study\nseed = 45232\n").expect("default spec"),
        )
    }

    /// Loads a scenario file from `scenarios/` by file name.
    pub fn load(file_name: &str) -> Self {
        let path = scenario_path(file_name);
        let spec = ScenarioSpec::load(&path)
            .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));
        Self::from_spec(spec)
    }

    /// Resolves an in-memory scenario (must select the sim runtime).
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        let scenario =
            ScenarioSim::new(spec).unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        Self { scenario }
    }

    /// The resolved scenario fixture.
    pub fn scenario(&self) -> &ScenarioSim {
        &self.scenario
    }

    /// The scenario spec this study runs.
    pub fn spec(&self) -> &ScenarioSpec {
        self.scenario.spec()
    }

    /// `"{name} {hash}"` — the banner tag benches stamp on table titles.
    pub fn tag(&self) -> String {
        self.spec().tag()
    }

    /// The type registry (default + workload types).
    pub fn registry(&self) -> &TypeRegistry {
        self.scenario.registry()
    }

    /// The resolved query mix.
    pub fn mix(&self) -> &QueryMix {
        self.scenario.mix()
    }

    /// `QPS_full_load` at the scenario's parallelism (≈ 15.1 kQPS for the
    /// Table 1 mix at `P = 100`).
    pub fn full_load(&self) -> f64 {
        self.scenario.full_load()
    }

    /// The scenario's rate sweep (multiples of `QPS_full_load`).
    pub fn rate_factors(&self) -> &[f64] {
        &self.scenario.sim_spec().rate_factors
    }

    /// The resolved SLO table.
    pub fn slos(&self) -> SloConfig {
        self.scenario.slos().clone()
    }

    /// Resolves a workload type by name.
    pub fn ty(&self, name: &str) -> TypeId {
        self.registry().resolve(name).expect("unknown type")
    }

    /// The scenario's policy labeled `label`.
    pub fn policy(&self, label: &str) -> &PolicySpec {
        self.spec()
            .policy(label)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// One simulation run of an already-built policy at
    /// `factor × QPS_full_load`, sized by `mode`.
    pub fn run_once(
        &self,
        policy: &dyn AdmissionPolicy,
        factor: f64,
        seed: u64,
        mode: &RunMode,
    ) -> SimResult {
        let mut cfg = self.scenario.sim_config_at_factor(factor, seed);
        cfg.measured_queries = mode.sim_measured;
        cfg.warmup_queries = mode.sim_warmup;
        run(policy, self.mix(), &cfg)
    }

    /// Averages `mode.runs` seeded runs of the scenario's policy labeled
    /// `label`, optionally closing the loop: with `adaptive` the
    /// scenario's `controller` line is wired in (Observe tap + staged
    /// parameter updates), without it the same policy runs open-loop at
    /// its spec'd parameter — the static baselines of an adaptive study.
    pub fn run_avg_labeled(
        &self,
        label: &str,
        factor: f64,
        mode: &RunMode,
        adaptive: bool,
    ) -> AvgResult {
        let mut acc = AvgResult::zero(self.registry().len());
        for i in 0..mode.runs {
            let seed = self.spec().seed + 7919 * i;
            let policy = self
                .scenario
                .build_policy(label, seed)
                .unwrap_or_else(|e| panic!("{e}"));
            let mut cfg = self.scenario.sim_config_at_factor(factor, seed);
            cfg.measured_queries = mode.sim_measured;
            cfg.warmup_queries = mode.sim_warmup;
            if adaptive {
                self.scenario
                    .attach_controller(label, &policy, &mut cfg)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            let result = run(policy.as_ref(), self.mix(), &cfg);
            acc.add(&result, self.registry());
        }
        acc.finish(mode.runs);
        acc
    }

    /// Averages `mode.runs` seeded runs of a policy spec. Seeds derive
    /// from the scenario's base seed (`seed + 7919·i`), and the policy is
    /// rebuilt through the registry per run so probabilistic policies vary
    /// with the seed.
    pub fn run_avg(&self, policy: &PolicySpec, factor: f64, mode: &RunMode) -> AvgResult {
        let mut acc = AvgResult::zero(self.registry().len());
        for i in 0..mode.runs {
            let seed = self.spec().seed + 7919 * i;
            let result = self.run_once(self.scenario.build(policy, seed).as_ref(), factor, seed, mode);
            acc.add(&result, self.registry());
        }
        acc.finish(mode.runs);
        acc
    }
}

impl Default for SimStudy {
    fn default() -> Self {
        Self::new()
    }
}

/// Metrics averaged over seeded runs (the paper reports 5-run averages).
#[derive(Debug, Clone)]
pub struct AvgResult {
    /// Per-type rejection percentage, indexed by `TypeId::index()`.
    pub rej_pct: Vec<f64>,
    /// Overall rejection percentage.
    pub rej_all_pct: f64,
    /// Per-type median response time (ms) of serviced queries; `NaN` when a
    /// type had none.
    pub rt_p50_ms: Vec<f64>,
    /// Per-type p90 response time (ms).
    pub rt_p90_ms: Vec<f64>,
    /// Per-type median processing time (ms).
    pub pt_p50_ms: Vec<f64>,
    /// Engine utilization percentage.
    pub util_pct: f64,
    counts: Vec<u64>, // runs contributing response-time samples per type
}

impl AvgResult {
    fn zero(n_types: usize) -> Self {
        Self {
            rej_pct: vec![0.0; n_types],
            rej_all_pct: 0.0,
            rt_p50_ms: vec![0.0; n_types],
            rt_p90_ms: vec![0.0; n_types],
            pt_p50_ms: vec![0.0; n_types],
            util_pct: 0.0,
            counts: vec![0; n_types],
        }
    }

    fn add(&mut self, r: &SimResult, registry: &TypeRegistry) {
        for (ty, _) in registry.iter() {
            let i = ty.index();
            self.rej_pct[i] += r.rejection_pct(ty);
            if let Some(p50) = r.response_ms(ty, 0.5) {
                self.rt_p50_ms[i] += p50;
                self.rt_p90_ms[i] += r.response_ms(ty, 0.9).unwrap_or(p50);
                self.pt_p50_ms[i] += r.processing_ms(ty, 0.5).unwrap_or(0.0);
                self.counts[i] += 1;
            }
        }
        self.rej_all_pct += r.overall_rejection_pct();
        self.util_pct += r.utilization_pct();
    }

    fn finish(&mut self, runs: u64) {
        let n = runs as f64;
        for v in &mut self.rej_pct {
            *v /= n;
        }
        self.rej_all_pct /= n;
        self.util_pct /= n;
        for i in 0..self.rt_p50_ms.len() {
            let c = self.counts[i] as f64;
            if c > 0.0 {
                self.rt_p50_ms[i] /= c;
                self.rt_p90_ms[i] /= c;
                self.pt_p50_ms[i] /= c;
            } else {
                self.rt_p50_ms[i] = f64::NAN;
                self.rt_p90_ms[i] = f64::NAN;
                self.pt_p50_ms[i] = f64::NAN;
            }
        }
    }

    /// Median response time (ms) for `ty`, `None` if no run serviced it.
    pub fn rt_p50(&self, ty: TypeId) -> Option<f64> {
        let v = self.rt_p50_ms[ty.index()];
        (!v.is_nan()).then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runmode::RunMode;
    use std::time::Duration;

    fn tiny_mode() -> RunMode {
        RunMode {
            sim_measured: 30_000,
            sim_warmup: 10_000,
            runs: 2,
            liquid_measure: Duration::from_secs(1),
            liquid_warmup: Duration::from_secs(1),
            full: false,
        }
    }

    #[test]
    fn fixture_matches_paper_capacity() {
        let s = SimStudy::new();
        assert!((s.full_load() - 15_100.0).abs() < 1_000.0);
        assert_eq!(s.registry().len(), 5);
        assert_eq!(s.spec().seed, 45232);
        assert_eq!(s.rate_factors(), &RATE_FACTORS);
    }

    #[test]
    fn run_avg_aggregates_metrics() {
        let s = SimStudy::new();
        let avg = s.run_avg(&PolicySpec::parse("bouncer").unwrap(), 1.2, &tiny_mode());
        let slow = s.ty("slow");
        assert!(avg.rej_pct[slow.index()] > 10.0);
        assert!(avg.util_pct > 50.0);
        assert!(avg.rt_p50(slow).is_some() || avg.rej_pct[slow.index()] > 99.0);
    }

    #[test]
    fn checked_in_scenarios_load() {
        // Every sim bench's scenario file resolves through the registry.
        for file in [
            "fig03_starvation.scn",
            "fig06_policies.scn",
            "fig09_strategies.scn",
            "fig10_param_rt.scn",
            "fig14_maxqwt_pertype.scn",
            "table3_rejections.scn",
            "table4_allowance.scn",
            "table5_underserved.scn",
            "abl_scheduling.scn",
            "abl_histogram_modes.scn",
            "abl_literature.scn",
            "adaptive_shift.scn",
        ] {
            let s = SimStudy::load(file);
            assert!(!s.spec().policies.is_empty(), "{file} has no policies");
        }
    }

    #[test]
    fn every_checked_in_scenario_parses() {
        // The whole scenarios/ directory, liquid and sim alike, parses —
        // the same invariant scripts/check.sh enforces via scenario-hash.
        let dir = scenario_path("");
        let mut seen = 0usize;
        for entry in std::fs::read_dir(&dir).expect("scenarios/ directory") {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("scn") {
                continue;
            }
            bouncer_core::spec::ScenarioSpec::load(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            seen += 1;
        }
        assert!(seen >= 20, "expected the checked-in scenario set, saw {seen}");
    }
}
