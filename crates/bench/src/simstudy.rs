//! The §5.3 simulation-study setup, shared by the figure/table benches.
//!
//! Fixed pieces from the paper: a simulated broker with `P = 100` engine
//! processes; the Table 1 query mix; Table 2 policy parameters
//! (`SLO_p50 = 18 ms`, `SLO_p90 = 50 ms` for every type; MaxQL limit 400;
//! MaxQWT limit 15 ms; AcceptFraction threshold 95 %); rates swept as
//! multiples of `QPS_full_load`; each cell averaged over several seeded
//! runs.

use std::sync::Arc;

use bouncer_core::prelude::*;
use bouncer_metrics::time::millis;
use bouncer_sim::{run, SimConfig, SimResult};
use bouncer_workload::mix::paper_table1_mix;
use bouncer_workload::QueryMix;

use crate::runmode::RunMode;

/// The simulated engine parallelism (`P`), per the paper.
pub const PARALLELISM: u32 = 100;

/// The rate factors of Table 3 (multiples of `QPS_full_load`).
pub const RATE_FACTORS: [f64; 13] = [
    0.90, 0.95, 1.00, 1.05, 1.10, 1.15, 1.20, 1.25, 1.30, 1.35, 1.40, 1.45, 1.50,
];

/// Names of the Table 1 types, in registry order after `default`.
pub const TYPE_NAMES: [&str; 4] = ["fast", "medium fast", "medium slow", "slow"];

/// Shared study fixture.
pub struct SimStudy {
    /// The type registry (default + Table 1 types).
    pub registry: TypeRegistry,
    /// The Table 1 query mix.
    pub mix: QueryMix,
    /// `QPS_full_load` at `P = 100` (≈ 15.1 kQPS).
    pub full_load: f64,
}

impl SimStudy {
    /// Builds the fixture.
    pub fn new() -> Self {
        let mut registry = TypeRegistry::new();
        let mix = paper_table1_mix(&mut registry);
        let full_load = mix.qps_full_load(PARALLELISM);
        Self {
            registry,
            mix,
            full_load,
        }
    }

    /// Resolves a Table 1 type by name.
    pub fn ty(&self, name: &str) -> TypeId {
        self.registry.resolve(name).expect("unknown type")
    }

    /// The uniform Table 2 SLO: `{p50 = 18 ms, p90 = 50 ms}` for all types.
    pub fn slos(&self) -> SloConfig {
        SloConfig::uniform(&self.registry, Slo::p50_p90(millis(18), millis(50)))
    }

    /// Basic Bouncer, Table 2 configuration.
    pub fn bouncer(&self) -> Bouncer {
        Bouncer::new(self.slos(), BouncerConfig::with_parallelism(PARALLELISM))
    }

    /// Bouncer + acceptance-allowance (§4.1).
    pub fn bouncer_allowance(&self, a: f64, seed: u64) -> AcceptanceAllowance<Bouncer> {
        AcceptanceAllowance::new(self.bouncer(), self.registry.len(), a, seed)
    }

    /// Bouncer + helping-the-underserved (§4.2).
    pub fn bouncer_underserved(&self, alpha: f64, seed: u64) -> HelpingTheUnderserved<Bouncer> {
        HelpingTheUnderserved::new(self.bouncer(), self.registry.len(), alpha, seed)
    }

    /// MaxQL with the Table 2 limit (400).
    pub fn maxql(&self) -> MaxQueueLength {
        MaxQueueLength::new(400)
    }

    /// MaxQWT with the Table 2 limit (15 ms).
    pub fn maxqwt(&self) -> MaxQueueWaitTime {
        MaxQueueWaitTime::new(millis(15), PARALLELISM)
    }

    /// AcceptFraction with the Table 2 threshold (95 %).
    pub fn accept_fraction(&self, seed: u64) -> AcceptFraction {
        let mut cfg = AcceptFractionConfig::new(0.95, PARALLELISM);
        cfg.seed = seed;
        AcceptFraction::new(cfg)
    }

    /// One simulation run at `factor × QPS_full_load`.
    pub fn run_once(
        &self,
        policy: &dyn AdmissionPolicy,
        factor: f64,
        seed: u64,
        mode: &RunMode,
    ) -> SimResult {
        let mut cfg = SimConfig::paper(self.full_load * factor, seed);
        cfg.measured_queries = mode.sim_measured;
        cfg.warmup_queries = mode.sim_warmup;
        run(policy, &self.mix, &cfg)
    }

    /// Averages `mode.runs` seeded runs of the policy built by `make` (which
    /// receives the seed, so probabilistic policies vary per run).
    pub fn run_avg(
        &self,
        make: &dyn Fn(u64) -> Arc<dyn AdmissionPolicy>,
        factor: f64,
        mode: &RunMode,
    ) -> AvgResult {
        let mut acc = AvgResult::zero(self.registry.len());
        for i in 0..mode.runs {
            let seed = 0xB0B0 + 7919 * i;
            let policy = make(seed);
            let result = self.run_once(&policy, factor, seed, mode);
            acc.add(&result, &self.registry);
        }
        acc.finish(mode.runs);
        acc
    }
}

impl Default for SimStudy {
    fn default() -> Self {
        Self::new()
    }
}

/// Metrics averaged over seeded runs (the paper reports 5-run averages).
#[derive(Debug, Clone)]
pub struct AvgResult {
    /// Per-type rejection percentage, indexed by `TypeId::index()`.
    pub rej_pct: Vec<f64>,
    /// Overall rejection percentage.
    pub rej_all_pct: f64,
    /// Per-type median response time (ms) of serviced queries; `NaN` when a
    /// type had none.
    pub rt_p50_ms: Vec<f64>,
    /// Per-type p90 response time (ms).
    pub rt_p90_ms: Vec<f64>,
    /// Per-type median processing time (ms).
    pub pt_p50_ms: Vec<f64>,
    /// Engine utilization percentage.
    pub util_pct: f64,
    counts: Vec<u64>, // runs contributing response-time samples per type
}

impl AvgResult {
    fn zero(n_types: usize) -> Self {
        Self {
            rej_pct: vec![0.0; n_types],
            rej_all_pct: 0.0,
            rt_p50_ms: vec![0.0; n_types],
            rt_p90_ms: vec![0.0; n_types],
            pt_p50_ms: vec![0.0; n_types],
            util_pct: 0.0,
            counts: vec![0; n_types],
        }
    }

    fn add(&mut self, r: &SimResult, registry: &TypeRegistry) {
        for (ty, _) in registry.iter() {
            let i = ty.index();
            self.rej_pct[i] += r.rejection_pct(ty);
            if let Some(p50) = r.response_ms(ty, 0.5) {
                self.rt_p50_ms[i] += p50;
                self.rt_p90_ms[i] += r.response_ms(ty, 0.9).unwrap_or(p50);
                self.pt_p50_ms[i] += r.processing_ms(ty, 0.5).unwrap_or(0.0);
                self.counts[i] += 1;
            }
        }
        self.rej_all_pct += r.overall_rejection_pct();
        self.util_pct += r.utilization_pct();
    }

    fn finish(&mut self, runs: u64) {
        let n = runs as f64;
        for v in &mut self.rej_pct {
            *v /= n;
        }
        self.rej_all_pct /= n;
        self.util_pct /= n;
        for i in 0..self.rt_p50_ms.len() {
            let c = self.counts[i] as f64;
            if c > 0.0 {
                self.rt_p50_ms[i] /= c;
                self.rt_p90_ms[i] /= c;
                self.pt_p50_ms[i] /= c;
            } else {
                self.rt_p50_ms[i] = f64::NAN;
                self.rt_p90_ms[i] = f64::NAN;
                self.pt_p50_ms[i] = f64::NAN;
            }
        }
    }

    /// Median response time (ms) for `ty`, `None` if no run serviced it.
    pub fn rt_p50(&self, ty: TypeId) -> Option<f64> {
        let v = self.rt_p50_ms[ty.index()];
        (!v.is_nan()).then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runmode::RunMode;
    use std::time::Duration;

    fn tiny_mode() -> RunMode {
        RunMode {
            sim_measured: 30_000,
            sim_warmup: 10_000,
            runs: 2,
            liquid_measure: Duration::from_secs(1),
            liquid_warmup: Duration::from_secs(1),
            full: false,
        }
    }

    #[test]
    fn fixture_matches_paper_capacity() {
        let s = SimStudy::new();
        assert!((s.full_load - 15_100.0).abs() < 1_000.0);
        assert_eq!(s.registry.len(), 5);
    }

    #[test]
    fn run_avg_aggregates_metrics() {
        let s = SimStudy::new();
        let avg = s.run_avg(&|_seed| Arc::new(s.bouncer()), 1.2, &tiny_mode());
        let slow = s.ty("slow");
        assert!(avg.rej_pct[slow.index()] > 10.0);
        assert!(avg.util_pct > 50.0);
        assert!(avg.rt_p50(slow).is_some() || avg.rej_pct[slow.index()] > 99.0);
    }
}
