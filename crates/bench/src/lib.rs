//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every bench target in `benches/` (custom harness, run via `cargo bench`)
//! builds on these pieces:
//!
//! * [`runmode`] — run-size selection: quick (CI-scale, default) vs full
//!   (paper-scale, `BOUNCER_BENCH_FULL=1`);
//! * [`simstudy`] — the §5.3 simulation study setup (Table 1 mix, Table 2
//!   policy parameters, multi-seed averaging);
//! * [`liquidstudy`] — the §5.4 real-system setup (mini-LIquid cluster,
//!   published QT1..QT11 mix, capacity-normalized rates, open-loop load);
//! * [`table`] — aligned text tables so each bench prints the same rows or
//!   series the paper reports, with the paper's values alongside.

#![warn(missing_docs)]

pub mod liquidstudy;
pub mod runmode;
pub mod simstudy;
pub mod table;
