//! Aligned text tables for experiment output.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                let w = widths[i];
                let pad = w.saturating_sub(cell.chars().count());
                let numeric = cell
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.')
                    .unwrap_or(false);
                if numeric {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table under a title banner, and — when
    /// `BOUNCER_BENCH_CSV_DIR` is set — also saves it as a CSV artifact
    /// named after the title.
    pub fn print(&self, title: &str) {
        println!("\n== {title}");
        print!("{}", self.render());
        self.save_csv(title);
    }

    /// Like [`Table::print`], but stamps a scenario tag
    /// (`"{name} {hash}"`) on the banner so output names the spec that
    /// produced it. The CSV artifact is still named after the title alone,
    /// keeping file names stable across spec edits.
    pub fn print_tagged(&self, title: &str, tag: &str) {
        println!("\n== {title} [{tag}]");
        print!("{}", self.render());
        self.save_csv(title);
    }

    fn save_csv(&self, title: &str) {
        if let Ok(dir) = std::env::var("BOUNCER_BENCH_CSV_DIR") {
            let slug: String = title
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("_");
            let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
            if std::fs::create_dir_all(&dir).is_ok() {
                if let Err(e) = std::fs::write(&path, self.to_csv()) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
        }
    }

    /// Renders the table as CSV (RFC-4180-style quoting where needed).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| cell(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats milliseconds with one decimal.
pub fn ms(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats an optional millisecond value.
pub fn ms_opt(v: Option<f64>) -> String {
    v.map(ms).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1.00"]);
        t.row(vec!["b", "123.45"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[3].ends_with("123.45"));
    }

    #[test]
    fn rows_are_padded_to_header() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain", "with,comma"]);
        t.row(vec!["with\"quote", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(11.297), "11.30");
        assert_eq!(ms(18.04), "18.0");
        assert_eq!(ms_opt(None), "-");
    }
}
