//! Open-loop load generator, modeled on the paper's modified wrk2 (§5.4).
//!
//! "Our load generator sends … requests at an average rate given by the
//! user, and emulates traffic burstiness with inter-departure times
//! following an exponential distribution. It draws queries from one or more
//! query sets … and generates traffic according to a query mix."
//!
//! wrk2's defining property is kept: latency is measured from each request's
//! *intended* (scheduled) send time, not from when the worker actually got
//! around to sending it, so queueing delay inside the target — or backlog in
//! the generator itself — cannot hide behind coordinated omission.
//!
//! Workers split the target rate evenly; superposing independent Poisson
//! processes yields a Poisson process at the full rate, so burstiness
//! matches a single-source generator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bouncer_core::obs::{
    new_span_id, new_trace_id, SpanKind, SpanStatus, TraceContext, Tracer,
};
use bouncer_core::types::TypeId;
use bouncer_metrics::histogram::HistogramSnapshot;
use bouncer_metrics::{AtomicHistogram, Clock};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::Exponential;
use crate::mix::QueryMix;

/// Result of one generated request, as reported by the target closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The query was serviced.
    Ok,
    /// The target rejected the query (admission control).
    Rejected,
    /// Transport or execution error.
    Error,
}

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Target average rate, queries per second, across all workers.
    pub rate_qps: f64,
    /// How long to generate for.
    pub duration: Duration,
    /// Concurrent generator workers (≈ open connections).
    pub workers: usize,
    /// RNG seed; workers derive their own seeds from it.
    pub seed: u64,
}

struct TypeCounters {
    sent: AtomicU64,
    ok: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    /// Latency of *serviced* queries from intended send time, nanoseconds.
    latency: AtomicHistogram,
}

/// Aggregated load-generation results.
#[derive(Debug)]
pub struct LoadReport {
    /// Per-type results, indexed by `TypeId::index()`.
    pub per_type: Vec<TypeReport>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Per-type slice of a [`LoadReport`].
#[derive(Debug, Clone)]
pub struct TypeReport {
    /// Requests sent.
    pub sent: u64,
    /// Requests serviced.
    pub ok: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Transport/execution errors.
    pub errors: u64,
    /// Latency (from intended send time) of serviced requests.
    pub latency: HistogramSnapshot,
}

impl LoadReport {
    /// Total requests sent.
    pub fn total_sent(&self) -> u64 {
        self.per_type.iter().map(|t| t.sent).sum()
    }

    /// Total rejections.
    pub fn total_rejected(&self) -> u64 {
        self.per_type.iter().map(|t| t.rejected).sum()
    }

    /// Overall rejection ratio in `[0, 1]`.
    pub fn overall_rejection_ratio(&self) -> f64 {
        let sent = self.total_sent();
        if sent == 0 {
            0.0
        } else {
            self.total_rejected() as f64 / sent as f64
        }
    }

    /// Achieved send rate in QPS.
    pub fn achieved_qps(&self) -> f64 {
        self.total_sent() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Sleeps until `deadline`. Plain `thread::sleep` only — no spin phase:
/// spinning generator threads would steal cycles from the system under
/// test on small machines, and the ~50-100 us sleep overshoot is
/// negligible against millisecond-scale latencies (and is *measured*
/// anyway, since latency is taken from the intended time).
fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if now < deadline {
        std::thread::sleep(deadline - now);
    }
}

/// Runs an open-loop load test against `target`.
///
/// `target` is called once per generated request with the sampled query type
/// and a worker-local RNG (for choosing query parameters); it must perform
/// the request synchronously and classify the outcome. `n_types` sizes the
/// per-type report (use the registry's `len()`).
pub fn run_open_loop<F>(mix: &QueryMix, n_types: usize, cfg: &LoadGenConfig, target: F) -> LoadReport
where
    F: Fn(TypeId, &mut SmallRng) -> QueryOutcome + Sync,
{
    run_open_loop_traced(mix, n_types, cfg, None, |ty, rng, _ctx| target(ty, rng))
}

/// The tracer and clock a traced load generation stamps its
/// [`SpanKind::Client`] root spans with. Share the clock with the system
/// under test so client and server span timestamps are comparable.
pub type GenTrace = (Arc<Tracer>, Arc<dyn Clock>);

/// [`run_open_loop`] with distributed tracing: requests selected by the
/// tracer's head sampling carry a [`TraceContext`] rooted at a
/// client span (emitted when the target returns), which the target should
/// propagate into the system under test.
pub fn run_open_loop_traced<F>(
    mix: &QueryMix,
    n_types: usize,
    cfg: &LoadGenConfig,
    trace: Option<GenTrace>,
    target: F,
) -> LoadReport
where
    F: Fn(TypeId, &mut SmallRng, Option<TraceContext>) -> QueryOutcome + Sync,
{
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.rate_qps > 0.0, "rate must be positive");
    let counters: Vec<TypeCounters> = (0..n_types)
        .map(|_| TypeCounters {
            sent: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: AtomicHistogram::new(),
        })
        .collect();

    let start = Instant::now();
    let deadline = start + cfg.duration;
    let per_worker_rate = cfg.rate_qps / cfg.workers as f64;

    std::thread::scope(|scope| {
        for w in 0..cfg.workers {
            let counters = &counters;
            let target = &target;
            let trace = trace.clone();
            let gaps = Exponential::new(per_worker_rate);
            let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(w as u64 * 0x9E37));
            scope.spawn(move || {
                let mut intended = start + Duration::from_secs_f64(gaps.sample(&mut rng));
                while intended < deadline {
                    sleep_until(intended);
                    let class = mix.sample_class(&mut rng);
                    let c = &counters[class.ty.index()];
                    c.sent.fetch_add(1, Ordering::Relaxed);
                    // Head-sample here, at the system's edge: a sampled
                    // request carries a client-rooted context end to end.
                    let span = trace.as_ref().and_then(|(tracer, clock)| {
                        tracer
                            .head_decision()
                            .then(|| (new_trace_id(), new_span_id(), clock.now()))
                    });
                    let ctx = span.map(|(trace_id, parent, _)| TraceContext {
                        trace: trace_id,
                        parent,
                        sampled: true,
                    });
                    let outcome = target(class.ty, &mut rng, ctx);
                    if let (Some((tracer, clock)), Some((trace_id, span_id, t0))) =
                        (trace.as_ref(), span)
                    {
                        let status = match outcome {
                            QueryOutcome::Ok => SpanStatus::Ok,
                            QueryOutcome::Rejected => SpanStatus::Rejected,
                            QueryOutcome::Error => SpanStatus::Failed,
                        };
                        tracer.emit_root(
                            trace_id,
                            span_id,
                            SpanKind::Client,
                            Some(class.ty),
                            t0,
                            clock.now(),
                            status,
                        );
                    }
                    match outcome {
                        QueryOutcome::Ok => {
                            // wrk2 semantics: latency from the intended time.
                            let latency = intended.elapsed();
                            c.ok.fetch_add(1, Ordering::Relaxed);
                            c.latency.record(latency.as_nanos() as u64);
                        }
                        QueryOutcome::Rejected => {
                            c.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        QueryOutcome::Error => {
                            c.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    intended += Duration::from_secs_f64(gaps.sample(&mut rng));
                }
            });
        }
    });

    LoadReport {
        per_type: counters
            .iter()
            .map(|c| TypeReport {
                sent: c.sent.load(Ordering::Relaxed),
                ok: c.ok.load(Ordering::Relaxed),
                rejected: c.rejected.load(Ordering::Relaxed),
                errors: c.errors.load(Ordering::Relaxed),
                latency: c.latency.snapshot(),
            })
            .collect(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::paper_table1_mix;
    use bouncer_core::types::TypeRegistry;

    fn quick_cfg(rate: f64) -> LoadGenConfig {
        LoadGenConfig {
            rate_qps: rate,
            duration: Duration::from_millis(400),
            workers: 4,
            seed: 42,
        }
    }

    #[test]
    fn achieves_target_rate_with_fast_target() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        let report = run_open_loop(&mix, reg.len(), &quick_cfg(2_000.0), |_, _| QueryOutcome::Ok);
        let qps = report.achieved_qps();
        assert!((qps - 2_000.0).abs() / 2_000.0 < 0.15, "qps={qps}");
        assert_eq!(report.total_rejected(), 0);
    }

    #[test]
    fn classifies_outcomes_per_type() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        let slow = reg.resolve("slow").unwrap();
        let report = run_open_loop(&mix, reg.len(), &quick_cfg(1_000.0), |ty, _| {
            if ty == slow {
                QueryOutcome::Rejected
            } else {
                QueryOutcome::Ok
            }
        });
        let s = &report.per_type[slow.index()];
        assert_eq!(s.rejected, s.sent);
        assert_eq!(s.ok, 0);
        assert!(report.overall_rejection_ratio() > 0.05);
        assert!(report.overall_rejection_ratio() < 0.2);
    }

    #[test]
    fn latency_measured_from_intended_time_sees_stalls() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        let cfg = LoadGenConfig {
            rate_qps: 200.0,
            duration: Duration::from_millis(300),
            workers: 1,
            seed: 7,
        };
        // A target that stalls 20ms per call while 200 qps are scheduled on
        // one worker: the backlog must show up as growing latency.
        let report = run_open_loop(&mix, reg.len(), &cfg, |_, _| {
            std::thread::sleep(Duration::from_millis(20));
            QueryOutcome::Ok
        });
        let max = report
            .per_type
            .iter()
            .filter_map(|t| t.latency.max())
            .max()
            .unwrap();
        // Without intended-time accounting every sample would be ~20ms.
        assert!(max > 50_000_000, "max latency={max}ns");
    }

    #[test]
    fn errors_are_counted_separately() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        let report = run_open_loop(&mix, reg.len(), &quick_cfg(500.0), |_, _| QueryOutcome::Error);
        assert_eq!(report.total_rejected(), 0);
        let errors: u64 = report.per_type.iter().map(|t| t.errors).sum();
        assert_eq!(errors, report.total_sent());
    }
}
