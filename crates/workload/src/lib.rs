//! Workload generation for the Bouncer reproduction.
//!
//! * [`dist`] — the random distributions the paper's workloads are built
//!   from: lognormal processing times ("its processing times follow a
//!   lognormal distribution, which approximates those of real production
//!   queries", §5.3) and exponential inter-arrival times ("to simulate
//!   traffic burstiness").
//! * [`mix`] — query mixes: per-type proportions plus processing-time
//!   distributions, including the paper's Table 1 simulation mix and the
//!   published QT1..QT11 production proportions of §5.4.
//! * [`generator`] — an open-loop (wrk2-style) load generator for driving a
//!   real target at a fixed average rate with Poisson arrivals, measuring
//!   latency from the *intended* send time so coordinated omission cannot
//!   hide queueing delay.

#![warn(missing_docs)]

pub mod dist;
pub mod generator;
pub mod mix;

pub use dist::{Exponential, LogNormal};
pub use generator::{run_open_loop, LoadGenConfig, LoadReport, QueryOutcome};
pub use mix::{build_mix, paper_table1_mix, QueryClass, QueryMix};
