//! Random distributions used by the paper's workloads.
//!
//! Implemented from first principles on top of `rand`'s uniform source (the
//! `rand_distr` companion crate is outside this workspace's approved
//! dependency set, and the three distributions needed are small):
//!
//! * standard normal via Box–Muller,
//! * [`LogNormal`] — processing times (§5.3, Table 1),
//! * [`Exponential`] — inter-arrival gaps ("generated from an exponential
//!   distribution to simulate traffic burstiness", §5.3).
//!
//! [`LogNormal`] supports fitting from published summary statistics: the
//! paper's Table 1 reports per-type `(mean, p50, p90)`, and fitting `(p50,
//! p90)` exactly reproduces the reported means within a few percent — see
//! the `table1` tests in [`crate::mix`].

use rand::{Rng, RngExt};

/// z-value of the standard normal at the 90th percentile.
pub const Z90: f64 = 1.281_551_565_545;

/// Samples a standard normal deviate via the Box–Muller transform.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over (0, 1)).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A lognormal distribution: `exp(μ + σZ)` with `Z ~ N(0,1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the underlying normal's parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { mu, sigma }
    }

    /// Fits the distribution to a given median (= p50) and 90th percentile.
    ///
    /// `median = e^μ` and `p90 = e^(μ + z₉₀σ)`, so
    /// `μ = ln(median)`, `σ = ln(p90/median) / z₉₀`.
    pub fn from_median_p90(median: f64, p90: f64) -> Self {
        assert!(median > 0.0 && p90 >= median, "need 0 < median <= p90");
        Self::new(median.ln(), (p90 / median).ln() / Z90)
    }

    /// Fits the distribution to a given mean and median.
    ///
    /// `mean = e^(μ + σ²/2)` and `median = e^μ`, so
    /// `μ = ln(median)`, `σ = sqrt(2 ln(mean/median))`.
    pub fn from_mean_median(mean: f64, median: f64) -> Self {
        assert!(median > 0.0 && mean >= median, "need 0 < median <= mean");
        Self::new(median.ln(), (2.0 * (mean / median).ln()).sqrt())
    }

    /// The distribution mean, `e^(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// The distribution median, `e^μ`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The value at quantile `q ∈ (0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * normal_quantile(q)).exp()
    }

    /// Draws a sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// An exponential distribution with the given rate (events per unit time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates the distribution; `rate` must be positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive, got {rate}");
        Self { rate }
    }

    /// The mean inter-event gap, `1/rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws a sample via inverse-CDF.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xB0C5)
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.9) - Z90).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.001) + 3.090_232).abs() < 1e-5);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn lognormal_fit_from_median_p90_round_trips() {
        let d = LogNormal::from_median_p90(12.51, 44.26);
        assert!((d.median() - 12.51).abs() < 1e-9);
        assert!((d.quantile(0.9) - 44.26).abs() < 1e-6);
    }

    #[test]
    fn lognormal_fit_from_mean_median_round_trips() {
        let d = LogNormal::from_mean_median(20.05, 12.51);
        assert!((d.mean() - 20.05).abs() < 1e-9);
        assert!((d.median() - 12.51).abs() < 1e-9);
    }

    #[test]
    fn lognormal_samples_match_parameters() {
        let d = LogNormal::from_median_p90(7.40, 26.44);
        let mut r = rng();
        let n = 200_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = samples[n / 2];
        let p90 = samples[n * 9 / 10];
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((p50 - 7.40).abs() / 7.40 < 0.03, "p50={p50}");
        assert!((p90 - 26.44).abs() / 26.44 < 0.03, "p90={p90}");
        assert!((mean - d.mean()).abs() / d.mean() < 0.05, "mean={mean}");
    }

    #[test]
    fn exponential_mean_and_memorylessness_shape() {
        let e = Exponential::new(2.0);
        assert_eq!(e.mean(), 0.5);
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| e.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        // P(X > t) = e^(-2t): check t = 0.5 -> ~0.3679.
        let frac = samples.iter().filter(|&&x| x > 0.5).count() as f64 / n as f64;
        assert!((frac - 0.3679).abs() < 0.01, "frac={frac}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn degenerate_lognormal_is_constant() {
        let d = LogNormal::new(2.0_f64.ln(), 0.0);
        let mut r = rng();
        for _ in 0..10 {
            assert!((d.sample(&mut r) - 2.0).abs() < 1e-12);
        }
    }
}
