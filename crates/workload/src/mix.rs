//! Query mixes: per-type proportions and processing-time distributions.
//!
//! A [`QueryMix`] is what both studies drive their systems with: "Each type
//! is given a fixed percentage among the generated queries (i.e., its
//! proportion in the query mix), and its processing times follow a lognormal
//! distribution" (§5.3). The capacity math lives here too:
//!
//! ```text
//! QPS_full_load = P / pt_wmean
//! ```
//!
//! with `pt_wmean` the proportion-weighted mean processing time of the mix.

use bouncer_core::slo_spec::SpecError;
use bouncer_core::spec::WorkloadSpec;
use bouncer_core::types::{TypeId, TypeRegistry};
use bouncer_metrics::time::{millis_f64, Nanos, SECOND};
use rand::{Rng, RngExt};

use crate::dist::LogNormal;

/// One query class in a mix.
#[derive(Debug, Clone)]
pub struct QueryClass {
    /// The class's registered type id.
    pub ty: TypeId,
    /// Human-readable name (matches the type registry).
    pub name: String,
    /// Fraction of the traffic this class contributes, in `(0, 1]`.
    pub proportion: f64,
    /// Processing-time distribution, in **milliseconds**.
    pub processing_ms: LogNormal,
}

impl QueryClass {
    /// Draws a processing time in nanoseconds.
    #[inline]
    pub fn sample_processing<R: Rng + ?Sized>(&self, rng: &mut R) -> Nanos {
        millis_f64(self.processing_ms.sample(rng))
    }
}

/// A weighted set of query classes.
#[derive(Debug, Clone)]
pub struct QueryMix {
    classes: Vec<QueryClass>,
    /// Cumulative proportions for O(log n) class sampling.
    cumulative: Vec<f64>,
}

impl QueryMix {
    /// Creates a mix; proportions must sum to 1 within ±1e-3 and are
    /// normalized internally. (The tolerance matters in practice: the
    /// paper's own published QT1..QT11 percentages add up to 100.01 %.)
    pub fn new(mut classes: Vec<QueryClass>) -> Self {
        assert!(!classes.is_empty(), "a mix needs at least one class");
        let total: f64 = classes.iter().map(|c| c.proportion).sum();
        assert!(
            (total - 1.0).abs() < 1e-3,
            "proportions must sum to 1, got {total}"
        );
        for c in &mut classes {
            assert!(c.proportion > 0.0, "proportions must be positive");
            c.proportion /= total;
        }
        let mut acc = 0.0;
        let cumulative = classes
            .iter()
            .map(|c| {
                acc += c.proportion;
                acc
            })
            .collect();
        Self { classes, cumulative }
    }

    /// The classes in the mix.
    pub fn classes(&self) -> &[QueryClass] {
        &self.classes
    }

    /// Looks up a class by registered type id.
    pub fn class_for(&self, ty: TypeId) -> Option<&QueryClass> {
        self.classes.iter().find(|c| c.ty == ty)
    }

    /// Samples a class according to the proportions.
    #[inline]
    pub fn sample_class<R: Rng + ?Sized>(&self, rng: &mut R) -> &QueryClass {
        let u: f64 = rng.random();
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.classes.len() - 1);
        &self.classes[idx]
    }

    /// `pt_wmean`: the proportion-weighted mean processing time, in ms.
    pub fn weighted_mean_pt_ms(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.proportion * c.processing_ms.mean())
            .sum()
    }

    /// `QPS_full_load = P / pt_wmean`: the traffic rate that fully utilizes
    /// `parallelism` engine processes (§5.3).
    pub fn qps_full_load(&self, parallelism: u32) -> f64 {
        let wmean_secs = self.weighted_mean_pt_ms() / 1e3;
        parallelism as f64 / wmean_secs
    }

    /// Largest registered type index plus one — the per-type array size a
    /// policy tracking this mix needs. (Registries may hold more types.)
    pub fn max_type_index(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.ty.index())
            .max()
            .unwrap_or(0)
            + 1
    }
}

/// The paper's Table 1 simulation mix, registered into `registry`:
///
/// | type         | proportion | pt_mean | pt_p50 | pt_p90 (ms) |
/// |--------------|-----------:|--------:|-------:|------------:|
/// | fast         | 40 %       | 1.16    | 0.38   | 2.70        |
/// | medium fast  | 20 %       | 2.53    | 2.22   | 4.27        |
/// | medium slow  | 30 %       | 12.13   | 7.40   | 26.44       |
/// | slow         | 10 %       | 20.05   | 12.51  | 44.26       |
///
/// Distributions are fitted from `(p50, p90)`; the fitted means land within
/// ~6 % of the published column (exact for medium fast/medium slow), which
/// also reproduces `pt_wmean ≈ 6.6 ms` and `QPS_full_load ≈ 15.1 kQPS` at
/// `P = 100`.
pub fn paper_table1_mix(registry: &mut TypeRegistry) -> QueryMix {
    let spec: [(&str, f64, f64, f64); 4] = [
        ("fast", 0.40, 0.38, 2.70),
        ("medium fast", 0.20, 2.22, 4.27),
        ("medium slow", 0.30, 7.40, 26.44),
        ("slow", 0.10, 12.51, 44.26),
    ];
    QueryMix::new(
        spec.iter()
            .map(|&(name, prop, p50, p90)| QueryClass {
                ty: registry.register(name),
                name: name.to_owned(),
                proportion: prop,
                processing_ms: LogNormal::from_median_p90(p50, p90),
            })
            .collect(),
    )
}

/// Builds the mix a [`WorkloadSpec`] describes, registering its types —
/// the spec-layer entry point the CLI, simulator studies, and examples
/// construct workloads through.
///
/// The `liquid` workload is not buildable here: its types and costs belong
/// to the cluster harness (`kind_type_id`, the shard cost model), which
/// sits above this crate. Liquid scenarios build their mix there.
pub fn build_mix(
    spec: &WorkloadSpec,
    registry: &mut TypeRegistry,
) -> Result<QueryMix, SpecError> {
    match spec {
        WorkloadSpec::PaperTable1 => Ok(paper_table1_mix(registry)),
        WorkloadSpec::Custom(classes) => {
            spec.validate()?;
            Ok(QueryMix::new(
                classes
                    .iter()
                    .map(|c| QueryClass {
                        ty: registry.register(&c.name),
                        name: c.name.clone(),
                        proportion: c.proportion,
                        processing_ms: LogNormal::from_median_p90(c.median_ms, c.p90_ms),
                    })
                    .collect(),
            ))
        }
        WorkloadSpec::Liquid => Err(SpecError(
            "the `liquid` workload is built by the cluster harness, not the simulator".into(),
        )),
    }
}

/// Builds the post-shift mix of a custom workload whose classes carry
/// `pshift` proportions (`Ok(None)` when they don't — the mix never
/// changes). Call after [`build_mix`]: type registration is idempotent,
/// so both mixes share type ids. Classes shifted to `pshift=0` drop out
/// of the returned mix entirely.
pub fn build_shift_mix(
    spec: &WorkloadSpec,
    registry: &mut TypeRegistry,
) -> Result<Option<QueryMix>, SpecError> {
    let classes = spec.classes();
    if classes.iter().all(|c| c.pshift.is_none()) {
        return Ok(None);
    }
    spec.validate()?;
    Ok(Some(QueryMix::new(
        classes
            .iter()
            .filter(|c| c.pshift.unwrap_or(0.0) > 0.0)
            .map(|c| QueryClass {
                ty: registry.register(&c.name),
                name: c.name.clone(),
                proportion: c.pshift.unwrap(),
                processing_ms: LogNormal::from_median_p90(c.median_ms, c.p90_ms),
            })
            .collect(),
    )))
}

/// The published production query mix of §5.4 (types sorted by cost,
/// ascending): proportions for QT1..QT11.
pub const LIQUID_MIX_PROPORTIONS: [(&str, f64); 11] = [
    ("QT1", 0.1156),
    ("QT2", 0.0004),
    ("QT3", 0.0004),
    ("QT4", 0.0234),
    ("QT5", 0.1344),
    ("QT6", 0.1344),
    ("QT7", 0.0042),
    ("QT8", 0.0009),
    ("QT9", 0.2635),
    ("QT10", 0.0449),
    ("QT11", 0.2780),
];

/// Helper: a mean inter-arrival gap in nanoseconds for a QPS rate.
pub fn mean_gap_ns(rate_qps: f64) -> f64 {
    SECOND as f64 / rate_qps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn table1_reproduces_published_capacity_math() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        // Paper: pt_wmean = 6.614 ms, QPS_full_load ~ 15.1 kQPS at P=100.
        let wmean = mix.weighted_mean_pt_ms();
        assert!((wmean - 6.614).abs() < 0.4, "wmean={wmean}");
        let full = mix.qps_full_load(100);
        assert!((full - 15_100.0).abs() < 1_000.0, "full={full}");
    }

    #[test]
    fn table1_fitted_means_are_close_to_published() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        let published = [1.16, 2.53, 12.13, 20.05];
        for (c, &m) in mix.classes().iter().zip(&published) {
            let fitted = c.processing_ms.mean();
            let rel = (fitted - m).abs() / m;
            assert!(rel < 0.06, "{}: fitted={fitted} published={m}", c.name);
        }
    }

    #[test]
    fn build_mix_covers_paper_and_custom_specs() {
        use bouncer_core::spec::ClassSpec;

        let mut reg = TypeRegistry::new();
        let via_spec = build_mix(&WorkloadSpec::PaperTable1, &mut reg).unwrap();
        let mut reg2 = TypeRegistry::new();
        let direct = paper_table1_mix(&mut reg2);
        assert_eq!(via_spec.classes().len(), direct.classes().len());
        assert_eq!(via_spec.weighted_mean_pt_ms(), direct.weighted_mean_pt_ms());

        let custom = WorkloadSpec::Custom(vec![
            ClassSpec {
                name: "FAST".into(),
                proportion: 0.9,
                median_ms: 4.5,
                p90_ms: 12.0,
                pshift: None,
            },
            ClassSpec {
                name: "SLOW".into(),
                proportion: 0.1,
                median_ms: 12.51,
                p90_ms: 44.26,
                pshift: None,
            },
        ]);
        let mut reg3 = TypeRegistry::new();
        let mix = build_mix(&custom, &mut reg3).unwrap();
        assert_eq!(mix.classes()[0].processing_ms.median(), 4.5);
        assert!(reg3.resolve("SLOW").is_some());
        assert!(build_shift_mix(&custom, &mut reg3).unwrap().is_none());

        let mut reg4 = TypeRegistry::new();
        assert!(build_mix(&WorkloadSpec::Liquid, &mut reg4).is_err());
    }

    #[test]
    fn shift_mix_reuses_type_ids_and_drops_zero_classes() {
        use bouncer_core::spec::ClassSpec;

        let spec = WorkloadSpec::Custom(vec![
            ClassSpec::parse("FAST", "p=0.85 p50=2ms p90=5ms pshift=0").unwrap(),
            ClassSpec::parse("SLOW", "p=0.15 p50=14ms p90=40ms pshift=1").unwrap(),
        ]);
        let mut reg = TypeRegistry::new();
        let base = build_mix(&spec, &mut reg).unwrap();
        let shifted = build_shift_mix(&spec, &mut reg).unwrap().unwrap();
        // FAST shifted to zero: only SLOW remains, with the same type id
        // it had in the base mix.
        assert_eq!(shifted.classes().len(), 1);
        assert_eq!(shifted.classes()[0].name, "SLOW");
        assert_eq!(shifted.classes()[0].ty, base.classes()[1].ty);
        // default + FAST + SLOW, and no more after the shift build.
        assert_eq!(reg.len(), 3, "shift build must not mint new types");
    }

    #[test]
    fn sampling_respects_proportions() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = vec![0u64; mix.max_type_index()];
        for _ in 0..n {
            counts[mix.sample_class(&mut rng).ty.index()] += 1;
        }
        for c in mix.classes() {
            let got = counts[c.ty.index()] as f64 / n as f64;
            assert!(
                (got - c.proportion).abs() < 0.01,
                "{}: got={got} want={}",
                c.name,
                c.proportion
            );
        }
    }

    #[test]
    fn liquid_proportions_sum_to_one() {
        let total: f64 = LIQUID_MIX_PROPORTIONS.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-3, "total={total}"); // paper rounding: 100.01%
    }

    #[test]
    #[should_panic(expected = "proportions must sum to 1")]
    fn mix_validates_proportions() {
        let mut reg = TypeRegistry::new();
        let ty = reg.register("x");
        let _ = QueryMix::new(vec![QueryClass {
            ty,
            name: "x".into(),
            proportion: 0.5,
            processing_ms: LogNormal::new(0.0, 1.0),
        }]);
    }

    #[test]
    fn class_for_finds_registered_type() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        let slow = reg.resolve("slow").unwrap();
        assert_eq!(mix.class_for(slow).unwrap().name, "slow");
        assert!(mix.class_for(bouncer_core::types::DEFAULT_TYPE).is_none());
    }

    #[test]
    fn sample_processing_is_positive_nanos() {
        let mut reg = TypeRegistry::new();
        let mix = paper_table1_mix(&mut reg);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let c = mix.sample_class(&mut rng);
            assert!(c.sample_processing(&mut rng) > 0);
        }
    }
}
