//! Property-based tests for distribution fitting and mix construction.

use bouncer_core::types::TypeRegistry;
use bouncer_workload::dist::{normal_quantile, Exponential, LogNormal};
use bouncer_workload::mix::{QueryClass, QueryMix};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Fitting from (median, p90) recovers both statistics exactly, for any
    /// valid pair.
    #[test]
    fn lognormal_median_p90_fit_is_exact(
        median in 0.01f64..1000.0,
        ratio in 1.0f64..50.0,
    ) {
        let p90 = median * ratio;
        let d = LogNormal::from_median_p90(median, p90);
        prop_assert!((d.median() - median).abs() / median < 1e-9);
        // The inverse-CDF approximation error (~1e-9 in z) is amplified by
        // exp(sigma * z); 1e-6 relative covers the largest sigma here.
        prop_assert!((d.quantile(0.9) - p90).abs() / p90 < 1e-6);
    }

    /// Fitting from (mean, median) recovers both exactly.
    #[test]
    fn lognormal_mean_median_fit_is_exact(
        median in 0.01f64..1000.0,
        ratio in 1.0f64..20.0,
    ) {
        let mean = median * ratio;
        let d = LogNormal::from_mean_median(mean, median);
        prop_assert!((d.mean() - mean).abs() / mean < 1e-9);
        prop_assert!((d.median() - median).abs() / median < 1e-9);
    }

    /// Quantiles are monotone in q for any lognormal.
    #[test]
    fn lognormal_quantiles_monotone(mu in -5.0f64..5.0, sigma in 0.0f64..3.0) {
        let d = LogNormal::new(mu, sigma);
        let mut last = 0.0f64;
        for i in 1..20 {
            let q = d.quantile(i as f64 / 20.0);
            prop_assert!(q >= last);
            last = q;
        }
    }

    /// The inverse normal CDF is odd around 0.5 and monotone.
    #[test]
    fn normal_quantile_symmetry(p in 0.001f64..0.5) {
        let lo = normal_quantile(p);
        let hi = normal_quantile(1.0 - p);
        prop_assert!((lo + hi).abs() < 1e-7, "lo={lo} hi={hi}");
        prop_assert!(lo <= 0.0 && hi >= 0.0);
    }

    /// Exponential samples are positive with the right mean, any rate.
    #[test]
    fn exponential_sample_mean(rate in 0.1f64..100.0, seed in any::<u64>()) {
        let e = Exponential::new(rate);
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = e.sample(&mut rng);
            prop_assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        // SE of the mean is 1/(rate*sqrt(n)); allow 5 sigma.
        let tolerance = 5.0 / (rate * (n as f64).sqrt());
        prop_assert!((mean - 1.0 / rate).abs() < tolerance, "mean={mean}");
    }

    /// Mix normalization: any proportion vector summing to ~1 yields exact
    /// post-normalization proportions and a working sampler.
    #[test]
    fn mix_normalizes_and_samples(
        weights in prop::collection::vec(1u32..100, 1..8),
        seed in any::<u64>(),
    ) {
        let total: u32 = weights.iter().sum();
        let mut reg = TypeRegistry::new();
        let classes: Vec<QueryClass> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| QueryClass {
                ty: reg.register(&format!("t{i}")),
                name: format!("t{i}"),
                proportion: w as f64 / total as f64,
                processing_ms: LogNormal::new(0.0, 0.5),
            })
            .collect();
        let mix = QueryMix::new(classes);
        let sum: f64 = mix.classes().iter().map(|c| c.proportion).sum();
        prop_assert!((sum - 1.0).abs() < 1e-12);
        // Sampling returns only registered classes.
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let c = mix.sample_class(&mut rng);
            prop_assert!(c.ty.index() >= 1 && c.ty.index() <= mix.classes().len());
        }
    }

    /// `qps_full_load` scales linearly with parallelism.
    #[test]
    fn full_load_scales_with_parallelism(p in 1u32..1000) {
        let mut reg = TypeRegistry::new();
        let mix = QueryMix::new(vec![QueryClass {
            ty: reg.register("x"),
            name: "x".into(),
            proportion: 1.0,
            processing_ms: LogNormal::from_median_p90(10.0, 20.0),
        }]);
        let one = mix.qps_full_load(1);
        let many = mix.qps_full_load(p);
        prop_assert!((many - one * p as f64).abs() / many < 1e-9);
    }
}
