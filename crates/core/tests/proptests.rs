//! Property-based tests on the admission policies' invariants.

use std::sync::Arc;

use bouncer_core::framework::{AdmissionQueue, Entry};
use bouncer_core::prelude::*;
use bouncer_metrics::time::{millis, secs};
use proptest::prelude::*;

/// A Bouncer over one type, fed `samples` (ms) and swapped so estimates are
/// live.
fn warmed_bouncer(samples: &[u64], slo_p50: u64, slo_p90: u64, parallelism: u32) -> Bouncer {
    let mut reg = TypeRegistry::new();
    let t = reg.register("t");
    let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(slo_p50), millis(slo_p90)));
    let mut cfg = BouncerConfig::with_parallelism(parallelism);
    cfg.warmup_min_samples = 1;
    let b = Bouncer::new(slos, cfg);
    for &s in samples {
        b.on_completed(t, millis(s), 0);
    }
    b.on_tick(secs(1));
    b
}

proptest! {
    /// Deeper queues can only make Bouncer stricter: if a query is rejected
    /// at some backlog, it is also rejected at any deeper backlog
    /// (ewt_mean in Eq. 2 is monotone in every queue count).
    #[test]
    fn bouncer_rejection_monotone_in_backlog(
        samples in prop::collection::vec(1u64..100, 8..64),
        backlogs in prop::collection::vec(0u32..64, 2..6),
    ) {
        let b = warmed_bouncer(&samples, 20, 60, 4);
        let t = TypeId::from_index(1);
        let mut sorted = backlogs.clone();
        sorted.sort_unstable();
        let mut last_accept = true;
        let mut current = 0u32;
        for depth in sorted {
            while current < depth {
                b.on_enqueued(t, secs(1));
                current += 1;
            }
            let accept = b.admit(t, secs(1)).is_accept();
            prop_assert!(
                accept <= last_accept,
                "accept flipped back on at depth {depth}"
            );
            last_accept = accept;
        }
    }

    /// Loosening every SLO target can only turn rejections into accepts,
    /// never the reverse.
    #[test]
    fn bouncer_accepts_monotone_in_slo(
        samples in prop::collection::vec(1u64..100, 8..64),
        p50 in 1u64..200,
        p90 in 1u64..400,
        slack in 1u64..200,
        backlog in 0u32..32,
    ) {
        let p90 = p90.max(p50);
        let tight = warmed_bouncer(&samples, p50, p90, 4);
        let loose = warmed_bouncer(&samples, p50 + slack, p90 + slack, 4);
        let t = TypeId::from_index(1);
        for _ in 0..backlog {
            tight.on_enqueued(t, secs(1));
            loose.on_enqueued(t, secs(1));
        }
        let tight_accepts = tight.admit(t, secs(1)).is_accept();
        let loose_accepts = loose.admit(t, secs(1)).is_accept();
        prop_assert!(tight_accepts <= loose_accepts);
    }

    /// Bouncer is deterministic: identical state, identical decision.
    #[test]
    fn bouncer_is_deterministic(
        samples in prop::collection::vec(1u64..100, 8..64),
        backlog in 0u32..32,
    ) {
        let make = || {
            let b = warmed_bouncer(&samples, 20, 60, 4);
            for _ in 0..backlog {
                b.on_enqueued(TypeId::from_index(1), secs(1));
            }
            b
        };
        let a = make().admit(TypeId::from_index(1), secs(1));
        let b = make().admit(TypeId::from_index(1), secs(1));
        prop_assert_eq!(a, b);
    }

    /// More engine parallelism never makes Bouncer stricter (Eq. 2 divides
    /// the queued demand by P).
    #[test]
    fn bouncer_accepts_monotone_in_parallelism(
        samples in prop::collection::vec(1u64..100, 8..64),
        backlog in 0u32..48,
    ) {
        let small = warmed_bouncer(&samples, 20, 60, 2);
        let large = warmed_bouncer(&samples, 20, 60, 16);
        let t = TypeId::from_index(1);
        for _ in 0..backlog {
            small.on_enqueued(t, secs(1));
            large.on_enqueued(t, secs(1));
        }
        prop_assert!(
            small.admit(t, secs(1)).is_accept() <= large.admit(t, secs(1)).is_accept()
        );
    }

    /// MaxQL matches a reference counter over arbitrary enqueue/dequeue
    /// interleavings.
    #[test]
    fn maxql_matches_reference_model(
        limit in 1u64..32,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let p = MaxQueueLength::new(limit);
        let mut model_len = 0u64;
        for enqueue in ops {
            if enqueue {
                p.on_enqueued(TypeId::from_index(0), 0);
                model_len += 1;
            } else if model_len > 0 {
                p.on_dequeued(TypeId::from_index(0), 0, 0);
                model_len -= 1;
            }
            let expected = model_len < limit;
            prop_assert_eq!(p.admit(TypeId::from_index(0), 0).is_accept(), expected);
        }
    }

    /// The FIFO queue delivers entries in push order, regardless of the
    /// interleaving of pushes and pops.
    #[test]
    fn admission_queue_is_fifo(
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let q: AdmissionQueue<u64> = AdmissionQueue::new(None);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for push in ops {
            if push {
                q.push(Entry { ty: TypeId::from_index(0), enqueued_at: 0, deadline: None, payload: next_push })
                    .unwrap();
                next_push += 1;
            } else if next_pop < next_push {
                match q.try_pop() {
                    Some(e) => {
                        prop_assert_eq!(e.payload, next_pop);
                        next_pop += 1;
                    }
                    None => prop_assert!(false, "queue should not be empty"),
                }
            }
        }
        prop_assert_eq!(q.len() as u64, next_push - next_pop);
    }

    /// The acceptance-allowance historical branch always admits when the
    /// windowed acceptance ratio is below A (the strategy's hard floor).
    #[test]
    fn allowance_floor_is_honored(
        a_percent in 1u32..30,
        rejections in 1u64..500,
    ) {
        struct RejectAll;
        impl AdmissionPolicy for RejectAll {
            fn name(&self) -> &str { "reject-all" }
            fn admit(&self, _ty: TypeId, _now: u64) -> Decision {
                Decision::Reject(RejectReason::PredictedSloViolation)
            }
        }
        let a = a_percent as f64 / 100.0;
        let p = AcceptanceAllowance::new(RejectAll, 1, a, 1);
        let t = TypeId::from_index(0);
        // Pack all decisions into one window; first is accepted (empty
        // window), then the floor keeps the ratio near A.
        let mut accepted = 0u64;
        for i in 0..rejections {
            if p.admit(t, i * 1_000).is_accept() {
                accepted += 1;
            }
            // Invariant: whenever the ratio has dipped below A, the next
            // query must be accepted. Checked indirectly: ratio never falls
            // below A by more than one query's worth.
            let ratio = accepted as f64 / (i + 1) as f64;
            prop_assert!(
                ratio >= a - 1.0 / (i + 1) as f64 - 1e-9,
                "ratio {ratio} fell below allowance {a} at query {i}"
            );
        }
    }

    /// Arc-wrapped policies forward every hook (smoke property over the
    /// blanket impl).
    #[test]
    fn arc_blanket_impl_forwards(backlog in 0u32..16) {
        let inner = Arc::new(MaxQueueLength::new(8));
        let as_dyn: Arc<dyn AdmissionPolicy> = inner.clone();
        for _ in 0..backlog {
            as_dyn.on_enqueued(TypeId::from_index(0), 0);
        }
        prop_assert_eq!(inner.queue_len(), backlog as u64);
        prop_assert_eq!(
            as_dyn.admit(TypeId::from_index(0), 0).is_accept(),
            backlog < 8
        );
    }
}
