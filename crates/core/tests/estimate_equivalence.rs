//! Exhaustive equivalence check between Bouncer's interval-cached decision
//! path ([`Bouncer::can_admit`]) and the recompute-from-scratch reference
//! ([`Bouncer::can_admit_reference`]).
//!
//! The cached path is designed to be *exact*, not approximate: under random
//! interleavings of completions, enqueues, dequeues, ticks, and time
//! advances, both paths must return the identical [`Decision`] for every
//! type after every single operation — through warm-up transitions, general
//! -histogram fallback, retention, and (in sliding mode) lazy window
//! expiry.
//!
//! The vendored `proptest` stub runs `PROPTEST_CASES` (default 64) cases
//! per property with no override knob, so this harness drives its own
//! seeded loop: at least [`MIN_CASES`] random interleavings per
//! (decision rule × histogram mode) combination.

use bouncer_core::prelude::*;
use bouncer_metrics::time::{millis, secs, Nanos};
use proptest::test_runner::TestRng;

/// Minimum random interleavings per (rule × mode) combination. The
/// environment variable `PROPTEST_CASES` can raise (never lower) this.
const MIN_CASES: u32 = 1_000;

/// Types exercised per case.
const N_TYPES: usize = 3;

/// Operations per interleaving.
const OPS_PER_CASE: usize = 28;

fn cases() -> u32 {
    proptest::test_runner::cases().max(MIN_CASES)
}

/// Builds a Bouncer over [`N_TYPES`] types with small, randomized warm-up
/// and retention thresholds so a short interleaving crosses cold → warm
/// (and, with retention, swap-retained) regimes.
fn build(rule: DecisionRule, mode: HistogramMode, rng: &mut TestRng) -> Bouncer {
    let mut reg = TypeRegistry::new();
    let t0 = reg.register("qt0");
    let t1 = reg.register("qt1");
    let t2 = reg.register("qt2");
    // Tight-ish SLOs around the 1..=60 ms processing times generated below,
    // so decisions actually flip between accept and reject.
    let slos = SloConfig::builder(&reg)
        .default_slo(Slo::p50_p90(millis(40), millis(120)))
        .set(t0, Slo::p50_p90(millis(10), millis(30)))
        .set(t1, Slo::p50_p90(millis(25), millis(70)))
        .set(t2, Slo::single(Percentile::P99, millis(90)))
        .build();
    let cfg = BouncerConfig {
        parallelism: 1 + rng.below(4) as u32,
        histogram_interval: secs(1),
        retention_min_samples: rng.below(4), // 0 = paper default, >0 = Appendix A
        warmup_min_samples: 2 + rng.below(5),
        decision_rule: rule,
        histogram_mode: mode,
    };
    Bouncer::new(slos, cfg)
}

/// One random interleaving; asserts cached == reference for every type
/// after every operation.
fn run_case(rule: DecisionRule, mode: HistogramMode, rng: &mut TestRng, case: u32) {
    let b = build(rule, mode, rng);
    let mut now: Nanos = 0;
    let mut queued = [0u64; N_TYPES];
    for op in 0..OPS_PER_CASE {
        let ty = TypeId::from_index(rng.below(N_TYPES as u64) as u32);
        match rng.below(6) {
            // Completions are the most interesting op (they move volatile
            // estimators), so give them two slots.
            0 | 1 => b.on_completed(ty, millis(1 + rng.below(60)), now),
            2 => {
                b.on_enqueued(ty, now);
                queued[ty.index()] += 1;
            }
            3 => {
                if queued[ty.index()] > 0 {
                    b.on_dequeued(ty, 0, now);
                    queued[ty.index()] -= 1;
                } else {
                    b.on_enqueued(ty, now);
                    queued[ty.index()] += 1;
                }
            }
            4 => b.on_tick(now),
            // Advance time: 0..700 ms steps cross histogram-interval
            // boundaries mid-sequence (dual-buffer swaps happen via
            // on_tick, but sliding windows expire with time alone).
            _ => now += millis(rng.below(700)),
        }
        for i in 0..N_TYPES {
            let t = TypeId::from_index(i as u32);
            let cached = b.can_admit(t, now);
            let reference = b.can_admit_reference(t, now);
            assert_eq!(
                cached, reference,
                "case {case} op {op}: cached vs reference diverged for \
                 type {i} at now={now} (rule {rule:?}, mode {mode:?}, \
                 warming_up={})",
                b.is_warming_up_at(t, now),
            );
        }
    }
}

fn run_mode(rule: DecisionRule, mode: HistogramMode, seed_name: &str) {
    let mut rng = TestRng::deterministic(seed_name);
    for case in 0..cases() {
        run_case(rule, mode, &mut rng, case);
    }
}

#[test]
fn cached_matches_reference_dual_any_violated() {
    run_mode(
        DecisionRule::RejectIfAnyViolated,
        HistogramMode::DualBuffer,
        "estimate_equivalence::dual_any",
    );
}

#[test]
fn cached_matches_reference_dual_all_violated() {
    run_mode(
        DecisionRule::RejectIfAllViolated,
        HistogramMode::DualBuffer,
        "estimate_equivalence::dual_all",
    );
}

#[test]
fn cached_matches_reference_sliding_any_violated() {
    run_mode(
        DecisionRule::RejectIfAnyViolated,
        HistogramMode::Sliding { intervals: 3 },
        "estimate_equivalence::sliding_any",
    );
}

#[test]
fn cached_matches_reference_sliding_all_violated() {
    run_mode(
        DecisionRule::RejectIfAllViolated,
        HistogramMode::Sliding { intervals: 2 },
        "estimate_equivalence::sliding_all",
    );
}
