//! Round-trip property tests for the scenario-spec layer: for every spec
//! kind, `parse(render(x)) == x` over randomly generated specs, so the
//! canonical text form loses nothing and the content hash is meaningful.
//!
//! Generated numbers are dyadic rationals (n/4, n/256) so `f64` Display
//! round-trips exactly — the format's own guarantee (`fmt_f64` uses the
//! shortest-round-trip form); the strategies just keep the values readable.

use bouncer_core::spec::{
    BouncerParams, ClassSpec, ControllerSpec, DisciplineSpec, HistogramSpec, LawKind, LiquidSpec,
    PolicySpec, RuleSpec, RuntimeSpec, ScenarioSpec, SimSpec, SloEntrySpec, StrategySpec,
    TransportSpec, WorkloadSpec,
};
use proptest::prelude::*;

/// A lowercase alphanumeric identifier — safe for names, labels, and key
/// segments in the flat `key = value` format.
fn ident() -> BoxedStrategy<String> {
    prop::collection::vec(0usize..36, 1..8)
        .prop_map(|ix| {
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
            ix.into_iter().map(|i| ALPHABET[i] as char).collect()
        })
        .boxed()
}

/// Durations in quarter-millisecond steps, spanning the sub-ms, plain-ms,
/// and whole-second (`1s`) rendering paths.
fn dur_ms() -> BoxedStrategy<f64> {
    (1u32..8000).prop_map(|q| q as f64 / 4.0).boxed()
}

/// Positive factors in 1/256 steps (rate factors, allowances, alphas).
fn pos_frac() -> BoxedStrategy<f64> {
    (1u32..1024).prop_map(|n| n as f64 / 256.0).boxed()
}

/// A fraction in `(0, 1]` (utilization thresholds).
fn unit_frac() -> BoxedStrategy<f64> {
    (1u32..=256).prop_map(|n| n as f64 / 256.0).boxed()
}

fn arb_bouncer_params() -> BoxedStrategy<BouncerParams> {
    (
        prop_oneof![
            Just(HistogramSpec::Dual),
            (1u32..8).prop_map(HistogramSpec::Sliding),
        ],
        dur_ms(),
        0u64..64,
        0u64..64,
        prop_oneof![Just(RuleSpec::Any), Just(RuleSpec::All)],
    )
        .prop_map(|(histogram, interval_ms, retention, warmup, rule)| BouncerParams {
            histogram,
            interval_ms,
            retention,
            warmup,
            rule,
        })
        .boxed()
}

fn arb_policy() -> BoxedStrategy<PolicySpec> {
    prop_oneof![
        arb_bouncer_params().prop_map(PolicySpec::Bouncer),
        (arb_bouncer_params(), unit_frac()).prop_map(|(bouncer, allowance)| {
            PolicySpec::BouncerAllowance { bouncer, allowance }
        }),
        (arb_bouncer_params(), pos_frac()).prop_map(|(bouncer, alpha)| {
            PolicySpec::BouncerUnderserved { bouncer, alpha }
        }),
        (1u64..10_000).prop_map(|limit| PolicySpec::MaxQl { limit }),
        dur_ms().prop_map(|wait_ms| PolicySpec::MaxQwt { wait_ms }),
        prop::collection::vec(dur_ms(), 1..6)
            .prop_map(|wait_ms| PolicySpec::MaxQwtPerType { wait_ms }),
        unit_frac().prop_map(|max_utilization| PolicySpec::AcceptFraction { max_utilization }),
        (dur_ms(), pos_frac())
            .prop_map(|(horizon_ms, beta)| PolicySpec::Gatekeeper { horizon_ms, beta }),
        Just(PolicySpec::Always),
    ]
    .boxed()
}

fn arb_workload() -> BoxedStrategy<WorkloadSpec> {
    prop_oneof![
        Just(WorkloadSpec::PaperTable1),
        Just(WorkloadSpec::Liquid),
        (
            ident(),
            prop::collection::vec((dur_ms(), dur_ms()), 1..5),
            any::<bool>(),
        )
            .prop_map(|(prefix, times, shifted)| {
                // Equal proportions sum to 1 within the format's 1e-3
                // tolerance even when 1/n is not exactly representable.
                // `pshift` is all-or-none per the validation rule, so the
                // shifted variant gives every class the same equal share.
                let n = times.len();
                WorkloadSpec::Custom(
                    times
                        .into_iter()
                        .enumerate()
                        .map(|(i, (median_ms, p90_ms))| ClassSpec {
                            name: format!("{prefix}{i}"),
                            proportion: 1.0 / n as f64,
                            median_ms,
                            p90_ms,
                            pshift: shifted.then(|| 1.0 / n as f64),
                        })
                        .collect(),
                )
            }),
    ]
    .boxed()
}

fn arb_discipline() -> BoxedStrategy<DisciplineSpec> {
    prop_oneof![
        Just(DisciplineSpec::Fifo),
        Just(DisciplineSpec::ShortestJobFirst),
        prop::collection::vec(0u8..4, 1..6).prop_map(DisciplineSpec::Priority),
    ]
    .boxed()
}

fn arb_sim() -> BoxedStrategy<SimSpec> {
    (
        1u32..300,
        prop::collection::vec(pos_frac(), 1..5),
        prop::option::of(pos_frac().prop_map(|f| f * 1000.0)),
        prop::option::of(1u64..5000),
        arb_discipline(),
        (
            prop::collection::vec((dur_ms(), pos_frac()), 0..3),
            prop::option::of(dur_ms()),
        ),
    )
        .prop_map(
            |(parallelism, rate_factors, rate_qps, queue_limit, discipline, (rate_steps, shift_at))| {
                SimSpec {
                    parallelism,
                    rate_factors,
                    rate_qps,
                    queue_limit,
                    discipline,
                    rate_steps,
                    shift_at,
                }
            },
        )
        .boxed()
}

fn arb_liquid() -> BoxedStrategy<LiquidSpec> {
    (
        1u32..8,
        1u32..4,
        prop_oneof![
            Just(TransportSpec::Channels),
            Just(TransportSpec::Rings),
            Just(TransportSpec::Tcp)
        ],
        any::<bool>(),
        unit_frac(),
        (
            (ident(), prop::collection::vec(pos_frac(), 1..6)),
            (1u32..2_000_000, 1u32..32),
            (
                1u32..4,
                prop_oneof![
                    Just(StrategySpec::PrimaryOnly),
                    Just(StrategySpec::LoadBalanced),
                    Just(StrategySpec::Hedged)
                ],
            ),
        ),
    )
        .prop_map(
            |(shards, brokers, transport, batch_fanout, shard_max_utilization, extra)| {
                let (points, graph, replication) = extra;
                let (prefix, factors) = points;
                let (graph_vertices, graph_edges_per_vertex) = graph;
                let (replicas, strategy) = replication;
                LiquidSpec {
                    shards,
                    replicas,
                    strategy,
                    brokers,
                    transport,
                    batch_fanout,
                    shard_max_utilization,
                    rate_points: factors
                        .into_iter()
                        .enumerate()
                        .map(|(i, f)| (format!("{prefix}-{i}"), f))
                        .collect(),
                    graph_vertices,
                    graph_edges_per_vertex,
                }
            },
        )
        .boxed()
}

fn arb_runtime() -> BoxedStrategy<RuntimeSpec> {
    prop_oneof![
        arb_sim().prop_map(RuntimeSpec::Sim),
        arb_liquid().prop_map(RuntimeSpec::Liquid),
    ]
    .boxed()
}

/// `(percentile, target_ms)` lists with distinct percentiles, at least one.
fn arb_slo_targets() -> BoxedStrategy<Vec<(f64, f64)>> {
    (
        prop::collection::vec(any::<bool>(), 4),
        prop::collection::vec(dur_ms(), 4),
    )
        .prop_map(|(selected, durs)| {
            let pcts = [50.0, 90.0, 95.0, 99.0];
            let mut targets: Vec<(f64, f64)> = pcts
                .iter()
                .zip(selected)
                .zip(durs)
                .filter(|((_, sel), _)| *sel)
                .map(|((&pct, _), ms)| (pct, ms))
                .collect();
            if targets.is_empty() {
                targets.push((50.0, 18.0));
            }
            targets
        })
        .boxed()
}

fn arb_slos() -> BoxedStrategy<Vec<SloEntrySpec>> {
    (
        any::<bool>(),
        ident(),
        prop::collection::vec(arb_slo_targets(), 0..4),
    )
        .prop_map(|(with_default, prefix, target_lists)| {
            target_lists
                .into_iter()
                .enumerate()
                .map(|(i, targets)| SloEntrySpec {
                    name: if with_default && i == 0 {
                        "default".to_string()
                    } else {
                        format!("{prefix}{i}")
                    },
                    targets,
                })
                .collect()
        })
        .boxed()
}

/// Either a single unlabeled policy, distinctly labeled policies, or none.
fn arb_policies() -> BoxedStrategy<Vec<(String, PolicySpec)>> {
    prop_oneof![
        Just(Vec::new()),
        arb_policy().prop_map(|p| vec![(String::new(), p)]),
        (ident(), prop::collection::vec(arb_policy(), 1..4)).prop_map(|(prefix, specs)| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, p)| (format!("{prefix}{i}"), p))
                .collect()
        }),
    ]
    .boxed()
}

fn arb_params() -> BoxedStrategy<Vec<(String, Vec<f64>)>> {
    (
        ident(),
        prop::collection::vec(prop::collection::vec(pos_frac(), 1..5), 0..3),
    )
        .prop_map(|(prefix, lists)| {
            lists
                .into_iter()
                .enumerate()
                .map(|(i, values)| (format!("{prefix}{i}"), values))
                .collect()
        })
        .boxed()
}

/// String sweep lists: every token gets an `x` prefix so it can never
/// parse as a number (which would reclassify it as a numeric sweep).
fn arb_sparams() -> BoxedStrategy<Vec<(String, Vec<String>)>> {
    (
        ident(),
        prop::collection::vec(prop::collection::vec(ident(), 1..5), 0..3),
    )
        .prop_map(|(prefix, lists)| {
            lists
                .into_iter()
                .enumerate()
                .map(|(i, tokens)| {
                    (
                        format!("{prefix}s{i}"),
                        tokens.into_iter().map(|t| format!("x{t}")).collect(),
                    )
                })
                .collect()
        })
        .boxed()
}

/// Controller specs with dyadic fields; `min < max` by construction.
fn arb_controller() -> BoxedStrategy<ControllerSpec> {
    (
        prop_oneof![
            Just(LawKind::Aimd),
            Just(LawKind::Budget),
            Just(LawKind::Gradient),
        ],
        1u32..=256,
        dur_ms(),
        pos_frac(),
        1u32..256,
        (1u32..128, 129u32..1024),
    )
        .prop_map(|(law, ta, interval_ms, step, backoff, (mn, mx))| ControllerSpec {
            law,
            target_attain: ta as f64 / 256.0,
            interval_ms,
            step,
            backoff: backoff as f64 / 256.0,
            min: mn as f64 / 256.0,
            max: mx as f64 / 256.0,
        })
        .boxed()
}

fn arb_scenario() -> BoxedStrategy<ScenarioSpec> {
    (
        (
            ident(),
            any::<u64>(),
            prop::option::of(1u32..20),
            prop::option::of(1u64..1_000_000),
            prop::option::of(1u64..1_000_000),
        ),
        arb_slos(),
        arb_workload(),
        (arb_runtime(), prop::option::of(arb_controller())),
        arb_policies(),
        (arb_params(), arb_sparams()),
    )
        .prop_map(
            |(
                (name, seed, runs, measured, warmup),
                slos,
                workload,
                (runtime, controller),
                policies,
                (params, sparams),
            )| {
                ScenarioSpec {
                    name,
                    seed,
                    runs,
                    measured,
                    warmup,
                    slos,
                    workload,
                    runtime,
                    controller,
                    policies,
                    params,
                    sparams,
                }
            },
        )
        .boxed()
}

proptest! {
    /// The policy one-liner grammar loses nothing: every generated spec
    /// reparses from its canonical rendering to an equal value.
    #[test]
    fn policy_specs_round_trip(spec in arb_policy()) {
        let rendered = spec.render();
        let reparsed = PolicySpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse of `{rendered}` failed: {e}"));
        prop_assert_eq!(&reparsed, &spec, "rendered as `{}`", rendered);
    }

    /// Workload and runtime specs round-trip through a scenario wrapper
    /// (they have no standalone text form — their lines are scenario keys).
    #[test]
    fn workload_and_runtime_round_trip(
        workload in arb_workload(),
        runtime in arb_runtime(),
    ) {
        let spec = ScenarioSpec {
            workload,
            runtime,
            ..ScenarioSpec::cli_default()
        };
        let rendered = spec.render();
        let reparsed = ScenarioSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{rendered}"));
        prop_assert_eq!(&reparsed.workload, &spec.workload);
        prop_assert_eq!(&reparsed.runtime, &spec.runtime);
    }

    /// Controller one-liners lose nothing: every generated spec reparses
    /// from its canonical (default-omitting) rendering to an equal value.
    #[test]
    fn controller_specs_round_trip(spec in arb_controller()) {
        let rendered = spec.render();
        let reparsed = ControllerSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse of `{rendered}` failed: {e}"));
        prop_assert_eq!(&reparsed, &spec, "rendered as `{}`", rendered);
    }

    /// Full scenarios round-trip, and the content hash is a function of the
    /// canonical form: reparsing reproduces the hash, and comments or
    /// whitespace around the same pairs never change it.
    #[test]
    fn scenario_specs_round_trip(spec in arb_scenario()) {
        let rendered = spec.render();
        let reparsed = ScenarioSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{rendered}"));
        prop_assert_eq!(&reparsed, &spec, "canonical form:\n{}", rendered);
        prop_assert_eq!(reparsed.content_hash(), spec.content_hash());

        let commented = format!("# a leading comment\n\n{rendered}\n# trailing\n");
        let from_commented = ScenarioSpec::parse(&commented)
            .unwrap_or_else(|e| panic!("commented reparse failed: {e}\n{commented}"));
        prop_assert_eq!(from_commented.content_hash(), spec.content_hash());
    }
}
