//! Concurrency smoke tests: policies under simultaneous decision, hook, and
//! maintenance traffic — the shape of load they face on a real broker,
//! where "transport threads call admit concurrently while engine threads
//! invoke the recording hooks".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bouncer_core::prelude::*;
use bouncer_metrics::time::{millis, secs};

fn slos(n: usize) -> (TypeRegistry, SloConfig) {
    let mut reg = TypeRegistry::new();
    for i in 0..n {
        reg.register(&format!("t{i}"));
    }
    let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
    (reg, slos)
}

/// Hammers a policy from many threads: deciders, engine-hook callers, and a
/// ticker, all racing. Success = no panic, no deadlock, and the policy still
/// makes sane decisions afterwards.
fn hammer(policy: Arc<dyn AdmissionPolicy>, n_types: u32) {
    let stop = Arc::new(AtomicBool::new(false));
    let decisions = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let policy = Arc::clone(&policy);
            let stop = Arc::clone(&stop);
            let decisions = Arc::clone(&decisions);
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let ty = TypeId::from_index(((t * 7 + i) % n_types as u64) as u32);
                    let _ = policy.admit(ty, i * 1_000);
                    decisions.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        for t in 0..2u64 {
            let policy = Arc::clone(&policy);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let ty = TypeId::from_index(((t * 3 + i) % n_types as u64) as u32);
                    policy.on_enqueued(ty, i * 1_000);
                    policy.on_dequeued(ty, 500, i * 1_000 + 500);
                    policy.on_completed(ty, millis(1 + (i % 30)), i * 1_000 + 900);
                    i += 1;
                }
            });
        }
        {
            let policy = Arc::clone(&policy);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut now = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    now += millis(100);
                    policy.on_tick(now);
                    std::thread::yield_now();
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    assert!(decisions.load(Ordering::Relaxed) > 1_000);
    // Still functional afterwards.
    let _ = policy.admit(TypeId::from_index(0), secs(100));
}

/// Many engine threads emit spans through one shared `MemorySink` (the
/// broker's deployment shape). The sink must not corrupt or drop events,
/// and a stable sort on timestamp must give a usable merged timeline:
/// non-decreasing times with each thread's own emission order preserved.
#[test]
fn memory_sink_survives_concurrent_writers() {
    use bouncer_core::obs::{SpanKind, SpanStatus};

    const WRITERS: u64 = 8;
    const TRACES_PER_WRITER: u64 = 500;

    let sink = Arc::new(MemorySink::new());
    let tracer = Arc::new(Tracer::new(
        sink.clone() as Arc<dyn EventSink>,
        TracerConfig::default(),
    ));
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let tracer = Arc::clone(&tracer);
            scope.spawn(move || {
                for i in 0..TRACES_PER_WRITER {
                    // Encode (writer, sequence) into the virtual timestamps
                    // so the assertions below can check per-writer order.
                    let start = i * WRITERS + w;
                    let mut qt = tracer.begin(Some(TypeId::from_index(w as u32)), start, None);
                    qt.record_child(SpanKind::Admission, start, start);
                    tracer.finish(qt, SpanStatus::Ok, start);
                }
            });
        }
    });

    let events = sink.events();
    assert_eq!(tracer.sampled_total(), WRITERS * TRACES_PER_WRITER);
    // Two spans per trace (root + admission), none lost or invented.
    assert_eq!(events.len() as u64, 2 * WRITERS * TRACES_PER_WRITER);

    // No corruption: every event is a well-formed span whose JSONL line
    // round-trips through the strict parser.
    let lines: Vec<String> = events.iter().map(|e| e.to_json()).collect();
    let records =
        bouncer_core::obs::trace_report::parse_spans(&lines.join("\n")).expect("valid spans");
    let report = bouncer_core::obs::trace_report::analyze(records);
    assert_eq!(report.traces as u64, WRITERS * TRACES_PER_WRITER);
    assert!(report.all_complete(), "interleaving must not tear traces");

    // Stable ordering: sorting by timestamp yields a non-decreasing
    // timeline, and (because the sort is stable and each writer's own
    // timestamps are strictly increasing) each writer sees its traces in
    // emission order.
    let mut sorted: Vec<_> = events.iter().collect();
    sorted.sort_by_key(|e| e.at());
    assert!(sorted.windows(2).all(|p| p[0].at() <= p[1].at()));
    for w in 0..WRITERS {
        let starts: Vec<u64> = sorted
            .iter()
            .filter_map(|e| match e {
                Event::Span {
                    ty: Some(t),
                    parent: None,
                    start,
                    ..
                } if t.index() as u64 == w => Some(*start),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len() as u64, TRACES_PER_WRITER);
        assert!(
            starts.windows(2).all(|p| p[0] < p[1]),
            "writer {w} order lost"
        );
    }
}

#[test]
fn bouncer_survives_concurrent_traffic() {
    let (_reg, slos) = slos(4);
    hammer(
        Arc::new(Bouncer::new(slos, BouncerConfig::with_parallelism(8))),
        5,
    );
}

#[test]
fn bouncer_sliding_mode_survives_concurrent_traffic() {
    let (_reg, slos) = slos(4);
    let mut cfg = BouncerConfig::with_parallelism(8);
    cfg.histogram_mode = HistogramMode::Sliding { intervals: 4 };
    hammer(Arc::new(Bouncer::new(slos, cfg)), 5);
}

#[test]
fn allowance_wrapper_survives_concurrent_traffic() {
    let (reg, slos) = slos(4);
    let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(8));
    hammer(
        Arc::new(AcceptanceAllowance::new(bouncer, reg.len(), 0.05, 1)),
        5,
    );
}

#[test]
fn underserved_wrapper_survives_concurrent_traffic() {
    let (reg, slos) = slos(4);
    let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(8));
    hammer(
        Arc::new(HelpingTheUnderserved::new(bouncer, reg.len(), 1.0, 1)),
        5,
    );
}

#[test]
fn accept_fraction_survives_concurrent_traffic() {
    hammer(
        Arc::new(AcceptFraction::new(AcceptFractionConfig::new(0.9, 8))),
        5,
    );
}

#[test]
fn gatekeeper_survives_concurrent_traffic() {
    hammer(
        Arc::new(GatekeeperStyle::new(5, GatekeeperConfig::new(8))),
        5,
    );
}
