//! Concurrency smoke tests: policies under simultaneous decision, hook, and
//! maintenance traffic — the shape of load they face on a real broker,
//! where "transport threads call admit concurrently while engine threads
//! invoke the recording hooks".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bouncer_core::prelude::*;
use bouncer_metrics::time::{millis, secs};

fn slos(n: usize) -> (TypeRegistry, SloConfig) {
    let mut reg = TypeRegistry::new();
    for i in 0..n {
        reg.register(&format!("t{i}"));
    }
    let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
    (reg, slos)
}

/// Hammers a policy from many threads: deciders, engine-hook callers, and a
/// ticker, all racing. Success = no panic, no deadlock, and the policy still
/// makes sane decisions afterwards.
fn hammer(policy: Arc<dyn AdmissionPolicy>, n_types: u32) {
    let stop = Arc::new(AtomicBool::new(false));
    let decisions = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let policy = Arc::clone(&policy);
            let stop = Arc::clone(&stop);
            let decisions = Arc::clone(&decisions);
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let ty = TypeId::from_index(((t * 7 + i) % n_types as u64) as u32);
                    let _ = policy.admit(ty, i * 1_000);
                    decisions.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        for t in 0..2u64 {
            let policy = Arc::clone(&policy);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let ty = TypeId::from_index(((t * 3 + i) % n_types as u64) as u32);
                    policy.on_enqueued(ty, i * 1_000);
                    policy.on_dequeued(ty, 500, i * 1_000 + 500);
                    policy.on_completed(ty, millis(1 + (i % 30)), i * 1_000 + 900);
                    i += 1;
                }
            });
        }
        {
            let policy = Arc::clone(&policy);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut now = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    now += millis(100);
                    policy.on_tick(now);
                    std::thread::yield_now();
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    assert!(decisions.load(Ordering::Relaxed) > 1_000);
    // Still functional afterwards.
    let _ = policy.admit(TypeId::from_index(0), secs(100));
}

#[test]
fn bouncer_survives_concurrent_traffic() {
    let (_reg, slos) = slos(4);
    hammer(
        Arc::new(Bouncer::new(slos, BouncerConfig::with_parallelism(8))),
        5,
    );
}

#[test]
fn bouncer_sliding_mode_survives_concurrent_traffic() {
    let (_reg, slos) = slos(4);
    let mut cfg = BouncerConfig::with_parallelism(8);
    cfg.histogram_mode = HistogramMode::Sliding { intervals: 4 };
    hammer(Arc::new(Bouncer::new(slos, cfg)), 5);
}

#[test]
fn allowance_wrapper_survives_concurrent_traffic() {
    let (reg, slos) = slos(4);
    let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(8));
    hammer(
        Arc::new(AcceptanceAllowance::new(bouncer, reg.len(), 0.05, 1)),
        5,
    );
}

#[test]
fn underserved_wrapper_survives_concurrent_traffic() {
    let (reg, slos) = slos(4);
    let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(8));
    hammer(
        Arc::new(HelpingTheUnderserved::new(bouncer, reg.len(), 1.0, 1)),
        5,
    );
}

#[test]
fn accept_fraction_survives_concurrent_traffic() {
    hammer(
        Arc::new(AcceptFraction::new(AcceptFractionConfig::new(0.9, 8))),
        5,
    );
}

#[test]
fn gatekeeper_survives_concurrent_traffic() {
    hammer(
        Arc::new(GatekeeperStyle::new(5, GatekeeperConfig::new(8))),
        5,
    );
}
