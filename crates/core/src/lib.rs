//! The Bouncer admission-control policy and its surrounding framework.
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`policy::Bouncer`] — the measurement-based policy of §3: per-query
//!   percentile response-time estimates (Eq. 2–4) compared against per-type
//!   latency SLOs (Algorithm 1), with the cold-start handling of Appendix A.
//! * [`policy::AcceptanceAllowance`] and [`policy::HelpingTheUnderserved`] —
//!   the starvation-avoidance strategies of §4 (Algorithms 2 and 3).
//! * [`policy::MaxQueueLength`], [`policy::MaxQueueWaitTime`], and
//!   [`policy::AcceptFraction`] — the in-house baseline policies of §5.2.
//! * [`framework`] — the SEDA-style stage of Figure 1: an admission gate in
//!   front of a FIFO queue drained by a fixed pool of query-engine workers,
//!   with measurement hooks at the three points the paper instruments.
//!
//! All time is explicit (`Nanos`), so the same policy objects run unmodified
//! under the discrete-event simulator (§5.3) and the LIquid-like real system
//! (§5.4) elsewhere in this workspace.
//!
//! # Quick example
//!
//! ```
//! use bouncer_core::prelude::*;
//! use bouncer_metrics::time::millis;
//!
//! let mut registry = TypeRegistry::new();
//! let fast = registry.register("Fast");
//! let slow = registry.register("Slow");
//!
//! let slos = SloConfig::builder(&registry)
//!     .default_slo(Slo::p50_p90(millis(30), millis(400)))
//!     .set(fast, Slo::p50_p90(millis(10), millis(90)))
//!     .set(slow, Slo::p50_p90(millis(60), millis(270)))
//!     .build();
//!
//! let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(64));
//! // Cold start: nothing measured yet, Bouncer lets queries in (Appendix A).
//! assert!(bouncer.admit(fast, 0).is_accept());
//! ```

#![warn(missing_docs)]

pub mod control;
pub mod framework;
pub mod obs;
pub mod policy;
pub mod rng;
pub mod slo;
pub mod slo_spec;
pub mod spec;
pub mod types;

/// Convenient glob-import surface for downstream crates and examples.
pub mod prelude {
    pub use crate::control::{
        slo_tail_targets, ControlDecision, ControlParam, ControlTap, Controller, StagedParam,
        Telemetry, TypeTelemetry,
    };
    pub use crate::framework::{Discipline, Gate, GateConfig, ServerStats, StatsSnapshot};
    pub use crate::obs::{
        null_sink, render_prometheus, render_prometheus_full, render_prometheus_with_traces, Event,
        EventSink, HedgeCounters, JsonlSink, MemorySink, NullSink, PoolCounters, TraceContext,
        TraceCounters, Tracer, TracerConfig,
    };
    pub use crate::policy::{
        AcceptFraction, AcceptFractionConfig, AcceptanceAllowance, AdmissionPolicy, AlwaysAccept,
        Bouncer, BouncerConfig, Decision, DecisionRule, GatekeeperConfig, GatekeeperStyle,
        HelpingTheUnderserved, HistogramMode, MaxQueueLength, MaxQueueWaitTime, RejectReason,
    };
    pub use crate::slo::{Percentile, Slo, SloConfig};
    pub use crate::slo_spec::{apply_slo_spec, parse_slo_spec};
    pub use crate::spec::{
        BouncerParams, ClassSpec, ControllerSpec, DisciplineSpec, HistogramSpec, LawKind,
        LiquidSpec, PolicyEnv, PolicySpec, RuleSpec, RuntimeSpec, ScenarioSpec, SimSpec,
        SloEntrySpec, StrategySpec, TransportSpec, WorkloadSpec,
    };
    pub use crate::types::{TypeId, TypeRegistry, DEFAULT_TYPE};
}

pub use prelude::*;
