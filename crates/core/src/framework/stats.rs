//! Server-side measurement collection for experiments and operations.
//!
//! Separate from the policies' own internal metrics: this is the ground
//! truth the evaluation reports — per-type response-time percentiles,
//! rejection ratios by reason, throughput, and engine utilization. Recording
//! can be toggled so warm-up traffic is excluded from results, mirroring the
//! paper's warm-up phases (§5.3, §5.4).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bouncer_metrics::histogram::HistogramSnapshot;
use bouncer_metrics::time::Nanos;
use bouncer_metrics::AtomicHistogram;

use crate::policy::RejectReason;
use crate::types::TypeId;

const N_REASONS: usize = RejectReason::ALL.len();

struct TypeCounters {
    received: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    expired: AtomicU64,
    rejected: [AtomicU64; N_REASONS],
    response: AtomicHistogram,
    wait: AtomicHistogram,
    processing: AtomicHistogram,
}

impl TypeCounters {
    fn new() -> Self {
        Self {
            received: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            rejected: std::array::from_fn(|_| AtomicU64::new(0)),
            response: AtomicHistogram::new(),
            wait: AtomicHistogram::new(),
            processing: AtomicHistogram::new(),
        }
    }

    fn reset(&self) {
        self.received.store(0, Ordering::Relaxed);
        self.accepted.store(0, Ordering::Relaxed);
        self.completed.store(0, Ordering::Relaxed);
        self.expired.store(0, Ordering::Relaxed);
        for r in &self.rejected {
            r.store(0, Ordering::Relaxed);
        }
        self.response.reset();
        self.wait.reset();
        self.processing.reset();
    }
}

/// Thread-safe experiment/operations statistics for one host.
pub struct ServerStats {
    per_type: Vec<TypeCounters>,
    /// Sum of processing durations, for utilization = busy / (P · span).
    busy: AtomicU64,
    /// When collection (last) started, for span computation.
    started_at: AtomicU64,
    enabled: AtomicBool,
}

impl ServerStats {
    /// Creates collection for `n_types` query types, enabled, with the
    /// measurement span starting at time 0.
    pub fn new(n_types: usize) -> Self {
        assert!(n_types > 0);
        Self {
            per_type: (0..n_types).map(|_| TypeCounters::new()).collect(),
            busy: AtomicU64::new(0),
            started_at: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Number of tracked types.
    pub fn n_types(&self) -> usize {
        self.per_type.len()
    }

    /// Pauses recording (warm-up traffic).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Resumes recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Clears all counters and restarts the measurement span at `now`.
    pub fn reset(&self, now: Nanos) {
        for t in &self.per_type {
            t.reset();
        }
        self.busy.store(0, Ordering::Relaxed);
        self.started_at.store(now, Ordering::Relaxed);
    }

    #[inline]
    fn recording(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// A query arrived (before the admission decision).
    #[inline]
    pub fn on_received(&self, ty: TypeId) {
        if self.recording() {
            self.per_type[ty.index()].received.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A query was admitted into the queue (Point 1).
    #[inline]
    pub fn on_accepted(&self, ty: TypeId) {
        if self.recording() {
            self.per_type[ty.index()].accepted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A query was rejected (Point 1).
    #[inline]
    pub fn on_rejected(&self, ty: TypeId, reason: RejectReason) {
        if self.recording() {
            self.per_type[ty.index()].rejected[reason.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An admitted query expired in the queue and was dropped undone.
    #[inline]
    pub fn on_expired(&self, ty: TypeId) {
        if self.recording() {
            self.per_type[ty.index()].expired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A query finished: records wait (Point 2), processing and response
    /// time (Point 3). `rt = wait + processing` per Eq. 1 with ξ = 0.
    #[inline]
    pub fn on_completed(&self, ty: TypeId, wait: Nanos, processing: Nanos) {
        // Busy time always counts: utilization is a property of the engine,
        // not of the measured request population.
        self.busy.fetch_add(processing, Ordering::Relaxed);
        if self.recording() {
            let t = &self.per_type[ty.index()];
            t.completed.fetch_add(1, Ordering::Relaxed);
            t.wait.record(wait);
            t.processing.record(processing);
            t.response.record(wait.saturating_add(processing));
        }
    }

    /// Snapshot of everything, with `span = now - started_at` and
    /// utilization computed against `parallelism` engine processes.
    pub fn snapshot(&self, now: Nanos, parallelism: u32) -> StatsSnapshot {
        let started = self.started_at.load(Ordering::Relaxed);
        let span = now.saturating_sub(started);
        let busy = self.busy.load(Ordering::Relaxed);
        let utilization = if span == 0 {
            0.0
        } else {
            busy as f64 / (span as f64 * parallelism as f64)
        };
        StatsSnapshot {
            per_type: self
                .per_type
                .iter()
                .map(|t| TypeStats {
                    received: t.received.load(Ordering::Relaxed),
                    accepted: t.accepted.load(Ordering::Relaxed),
                    completed: t.completed.load(Ordering::Relaxed),
                    expired: t.expired.load(Ordering::Relaxed),
                    rejected_by_reason: std::array::from_fn(|i| {
                        t.rejected[i].load(Ordering::Relaxed)
                    }),
                    response: t.response.snapshot(),
                    wait: t.wait.snapshot(),
                    processing: t.processing.snapshot(),
                })
                .collect(),
            span,
            utilization,
        }
    }
}

/// Immutable snapshot of a host's statistics.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Per-type statistics, indexed by `TypeId::index()`.
    pub per_type: Vec<TypeStats>,
    /// Measurement span in nanoseconds.
    pub span: Nanos,
    /// Engine utilization in `[0, 1]` (busy time over `P · span`).
    pub utilization: f64,
}

impl StatsSnapshot {
    /// Total queries received across types.
    pub fn total_received(&self) -> u64 {
        self.per_type.iter().map(|t| t.received).sum()
    }

    /// Total rejections across types and reasons.
    pub fn total_rejected(&self) -> u64 {
        self.per_type.iter().map(|t| t.rejected()).sum()
    }

    /// Overall rejection ratio in `[0, 1]`.
    pub fn overall_rejection_ratio(&self) -> f64 {
        let r = self.total_received();
        if r == 0 {
            0.0
        } else {
            self.total_rejected() as f64 / r as f64
        }
    }

    /// Per-type rejection ratio in `[0, 1]`.
    pub fn rejection_ratio(&self, ty: TypeId) -> f64 {
        self.per_type[ty.index()].rejection_ratio()
    }
}

/// Per-type statistics within a [`StatsSnapshot`].
#[derive(Debug, Clone)]
pub struct TypeStats {
    /// Queries received (admitted + rejected).
    pub received: u64,
    /// Queries admitted into the queue.
    pub accepted: u64,
    /// Queries fully processed.
    pub completed: u64,
    /// Admitted queries dropped after expiring in the queue.
    pub expired: u64,
    /// Rejections by [`RejectReason::index`].
    pub rejected_by_reason: [u64; N_REASONS],
    /// Response-time distribution of serviced queries.
    pub response: HistogramSnapshot,
    /// Queue-wait distribution of serviced queries.
    pub wait: HistogramSnapshot,
    /// Processing-time distribution of serviced queries.
    pub processing: HistogramSnapshot,
}

impl TypeStats {
    /// Total rejections across reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_by_reason.iter().sum()
    }

    /// Rejection ratio in `[0, 1]` (0 when nothing was received).
    pub fn rejection_ratio(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.rejected() as f64 / self.received as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bouncer_metrics::time::{millis, secs};

    #[test]
    fn counts_flow_through() {
        let s = ServerStats::new(2);
        s.on_received(TypeId(0));
        s.on_accepted(TypeId(0));
        s.on_completed(TypeId(0), millis(2), millis(8));
        s.on_received(TypeId(1));
        s.on_rejected(TypeId(1), RejectReason::PredictedSloViolation);

        let snap = s.snapshot(secs(1), 1);
        assert_eq!(snap.per_type[0].received, 1);
        assert_eq!(snap.per_type[0].completed, 1);
        assert_eq!(snap.per_type[1].rejected(), 1);
        assert_eq!(snap.total_received(), 2);
        assert_eq!(snap.total_rejected(), 1);
        assert!((snap.overall_rejection_ratio() - 0.5).abs() < 1e-9);
        // Response = wait + processing = 10ms.
        let rt = snap.per_type[0].response.value_at_quantile(0.5).unwrap();
        assert!(rt.abs_diff(millis(10)) < millis(1));
    }

    #[test]
    fn utilization_is_busy_over_capacity() {
        let s = ServerStats::new(1);
        // 2 queries x 250ms busy on P=1 over 1s -> 50%.
        s.on_completed(TypeId(0), 0, millis(250));
        s.on_completed(TypeId(0), 0, millis(250));
        let snap = s.snapshot(secs(1), 1);
        assert!((snap.utilization - 0.5).abs() < 1e-9);
        // With P=2 the same busy time is 25%.
        let snap = s.snapshot(secs(1), 2);
        assert!((snap.utilization - 0.25).abs() < 1e-9);
    }

    #[test]
    fn disabled_stats_ignore_warmup_traffic() {
        let s = ServerStats::new(1);
        s.disable();
        s.on_received(TypeId(0));
        s.on_completed(TypeId(0), 0, millis(10));
        s.enable();
        s.on_received(TypeId(0));
        let snap = s.snapshot(secs(1), 1);
        assert_eq!(snap.per_type[0].received, 1);
        assert_eq!(snap.per_type[0].completed, 0);
    }

    #[test]
    fn reset_restarts_span() {
        let s = ServerStats::new(1);
        s.on_completed(TypeId(0), 0, secs(1));
        s.reset(secs(10));
        let snap = s.snapshot(secs(11), 1);
        assert_eq!(snap.span, secs(1));
        assert_eq!(snap.utilization, 0.0);
        assert_eq!(snap.total_received(), 0);
    }

    #[test]
    fn rejection_ratio_by_type() {
        let s = ServerStats::new(2);
        for _ in 0..4 {
            s.on_received(TypeId(1));
        }
        s.on_rejected(TypeId(1), RejectReason::QueueFull);
        let snap = s.snapshot(secs(1), 1);
        assert!((snap.rejection_ratio(TypeId(1)) - 0.25).abs() < 1e-9);
        assert_eq!(snap.rejection_ratio(TypeId(0)), 0.0);
        assert_eq!(
            snap.per_type[1].rejected_by_reason[RejectReason::QueueFull.index()],
            1
        );
    }
}
