//! The admission gate: policy + FIFO queue + statistics, wired together.
//!
//! [`Gate`] is the runtime embodiment of Figure 1 for real (threaded) hosts:
//! transport threads call [`Gate::offer`] with incoming queries, engine
//! threads loop on [`Gate::take`] / do the work / [`Gate::complete`]. All
//! policy hooks and measurement points fire in the right order from these
//! three calls, so a host implementation cannot get the bookkeeping wrong.

use std::sync::Arc;
use std::time::Duration;

use bouncer_metrics::{Clock, Nanos};

use crate::framework::queue::{AdmissionQueue, Discipline, Entry, PopOutcome};
use crate::framework::stats::ServerStats;
use crate::obs::{null_sink, Event, EventSink};
use crate::policy::{AdmissionPolicy, RejectReason};
use crate::types::TypeId;

/// Gate configuration.
#[derive(Debug, Clone, Default)]
pub struct GateConfig {
    /// The `L_limit` queue-length safeguard (§5.4). `None` = unbounded.
    pub max_queue_len: Option<usize>,
    /// Service discipline for the queue (FIFO in the paper's deployment;
    /// per-type priorities per the §7 extension).
    pub discipline: Discipline,
}

/// A query handed to an engine thread by [`Gate::take`].
#[derive(Debug)]
pub struct Admitted<T> {
    /// The query's type.
    pub ty: TypeId,
    /// When the query entered the queue.
    pub enqueued_at: Nanos,
    /// When the engine thread dequeued it (wait = dequeued − enqueued).
    pub dequeued_at: Nanos,
    /// Caller payload.
    pub payload: T,
}

/// Outcome of [`Gate::take`].
#[derive(Debug)]
pub enum TakeOutcome<T> {
    /// A query to process.
    Query(Admitted<T>),
    /// An admitted query whose deadline passed while it waited; the host
    /// should reply with a timeout error without processing it ("brokers
    /// and shards also enforce expiration times for admitted queries",
    /// §5.1).
    Expired(Admitted<T>),
    /// The gate was closed and the queue drained.
    Closed,
    /// The timeout elapsed.
    TimedOut,
}

/// The admission-controlled entrance of a host.
///
/// ```
/// use std::sync::Arc;
/// use bouncer_core::framework::{Gate, GateConfig, TakeOutcome};
/// use bouncer_core::policy::MaxQueueLength;
/// use bouncer_core::types::DEFAULT_TYPE;
/// use bouncer_metrics::MonotonicClock;
///
/// let gate: Gate<&str> = Gate::new(
///     Arc::new(MaxQueueLength::new(128)),
///     1,
///     Arc::new(MonotonicClock::new()),
///     GateConfig::default(),
/// );
/// gate.offer(DEFAULT_TYPE, "payload").unwrap();
/// if let TakeOutcome::Query(q) = gate.take(None) {
///     // ... process ...
///     gate.complete(q.ty, q.enqueued_at, q.dequeued_at);
/// }
/// assert_eq!(gate.stats().snapshot(1, 1).per_type[0].completed, 1);
/// ```
pub struct Gate<T> {
    policy: Arc<dyn AdmissionPolicy>,
    queue: AdmissionQueue<T>,
    stats: Arc<ServerStats>,
    clock: Arc<dyn Clock>,
    sink: Arc<dyn EventSink>,
}

impl<T> Gate<T> {
    /// Creates a gate in front of `policy`, tracking `n_types` query types,
    /// with observability disabled (the [`NullSink`]).
    ///
    /// [`NullSink`]: crate::obs::NullSink
    pub fn new(
        policy: Arc<dyn AdmissionPolicy>,
        n_types: usize,
        clock: Arc<dyn Clock>,
        cfg: GateConfig,
    ) -> Self {
        Self::new_with_sink(policy, n_types, clock, cfg, null_sink())
    }

    /// Like [`Gate::new`], emitting query-lifecycle events into `sink`.
    /// The sink is also handed to the policy (via
    /// [`AdmissionPolicy::attach_sink`]) for its per-interval maintenance
    /// events.
    pub fn new_with_sink(
        policy: Arc<dyn AdmissionPolicy>,
        n_types: usize,
        clock: Arc<dyn Clock>,
        cfg: GateConfig,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        policy.attach_sink(Arc::clone(&sink));
        Self {
            policy,
            queue: AdmissionQueue::with_discipline(cfg.max_queue_len, cfg.discipline),
            stats: Arc::new(ServerStats::new(n_types)),
            clock,
            sink,
        }
    }

    /// Offers an incoming query to the policy. On acceptance the query is
    /// enqueued; on rejection the reason is returned together with the
    /// payload so the host can reply with an error response immediately
    /// (the early rejection of §2).
    pub fn offer(&self, ty: TypeId, payload: T) -> Result<(), (RejectReason, T)> {
        self.offer_with_deadline(ty, payload, None)
    }

    /// Like [`Gate::offer`], with an absolute expiration time: if the query
    /// is still queued past `deadline`, engines drop it undone.
    pub fn offer_with_deadline(
        &self,
        ty: TypeId,
        payload: T,
        deadline: Option<Nanos>,
    ) -> Result<(), (RejectReason, T)> {
        let now = self.clock.now();
        self.stats.on_received(ty);
        match self.policy.admit(ty, now) {
            crate::policy::Decision::Reject(reason) => {
                self.stats.on_rejected(ty, reason);
                if self.sink.enabled() {
                    self.sink.emit(&Event::Rejected { at: now, ty, reason });
                }
                Err((reason, payload))
            }
            crate::policy::Decision::Accept => {
                let entry = Entry {
                    ty,
                    enqueued_at: now,
                    deadline,
                    payload,
                };
                match self.queue.push(entry) {
                    Ok(()) => {
                        self.stats.on_accepted(ty);
                        self.policy.on_enqueued(ty, now);
                        if self.sink.enabled() {
                            self.sink.emit(&Event::Admitted { at: now, ty });
                            self.sink.emit(&Event::Enqueued {
                                at: now,
                                ty,
                                queue_len: self.queue.len(),
                            });
                        }
                        Ok(())
                    }
                    Err(entry) => {
                        // The L_limit safeguard overrode the policy.
                        self.stats.on_rejected(ty, RejectReason::QueueFull);
                        if self.sink.enabled() {
                            self.sink.emit(&Event::Rejected {
                                at: now,
                                ty,
                                reason: RejectReason::QueueFull,
                            });
                        }
                        Err((RejectReason::QueueFull, entry.payload))
                    }
                }
            }
        }
    }

    /// Producer-side admission bookkeeping for a queue that lives *outside*
    /// the gate (the SPSC-ring data path): Point-1 receive accounting, the
    /// policy decision, and rejection stats/events — without touching the
    /// gate's own mutex-guarded queue. On acceptance the caller must either
    /// publish the query to its external queue and report
    /// [`Gate::enqueued_external`] with the returned timestamp, or report
    /// [`Gate::reject_full_external`] if the queue had no room (the
    /// external queue's bound plays the role of `L_limit`).
    pub fn admit_external(&self, ty: TypeId) -> Result<Nanos, RejectReason> {
        let now = self.clock.now();
        self.stats.on_received(ty);
        match self.policy.admit(ty, now) {
            crate::policy::Decision::Reject(reason) => {
                self.stats.on_rejected(ty, reason);
                if self.sink.enabled() {
                    self.sink.emit(&Event::Rejected { at: now, ty, reason });
                }
                Err(reason)
            }
            crate::policy::Decision::Accept => Ok(now),
        }
    }

    /// Completes an [`Gate::admit_external`] acceptance after the query was
    /// published to the external queue: accepted stats, the policy's
    /// enqueue hook, and the admitted/enqueued events. `queue_len` is the
    /// external queue's length with this query included.
    pub fn enqueued_external(&self, ty: TypeId, enqueued_at: Nanos, queue_len: usize) {
        self.stats.on_accepted(ty);
        self.policy.on_enqueued(ty, enqueued_at);
        if self.sink.enabled() {
            self.sink.emit(&Event::Admitted { at: enqueued_at, ty });
            self.sink.emit(&Event::Enqueued {
                at: enqueued_at,
                ty,
                queue_len,
            });
        }
    }

    /// Reports that the external queue was full for a query the policy had
    /// accepted — the external-queue analogue of the `L_limit` safeguard
    /// overriding the policy.
    pub fn reject_full_external(&self, ty: TypeId, at: Nanos) {
        self.stats.on_rejected(ty, RejectReason::QueueFull);
        if self.sink.enabled() {
            self.sink.emit(&Event::Rejected {
                at,
                ty,
                reason: RejectReason::QueueFull,
            });
        }
    }

    /// Consumer-side bookkeeping when an engine pops a query from the
    /// external queue (Point 2), mirroring [`Gate::take`] exactly: the
    /// policy's dequeue hook always runs; then either the dequeued/started
    /// events fire (`expired == false`, proceed and [`Gate::complete`]), or
    /// the query is past `deadline` and only the expired stats/event fire
    /// (`expired == true`, drop it undone without completing). Returns
    /// `(dequeued_at, expired)`.
    pub fn dequeued_external(
        &self,
        ty: TypeId,
        enqueued_at: Nanos,
        deadline: Option<Nanos>,
    ) -> (Nanos, bool) {
        let now = self.clock.now();
        let wait = now.saturating_sub(enqueued_at);
        self.policy.on_dequeued(ty, wait, now);
        if deadline.is_some_and(|d| now > d) {
            self.stats.on_expired(ty);
            if self.sink.enabled() {
                self.sink.emit(&Event::Expired { at: now, ty, wait });
            }
            (now, true)
        } else {
            if self.sink.enabled() {
                self.sink.emit(&Event::Dequeued { at: now, ty, wait });
                self.sink.emit(&Event::Started { at: now, ty });
            }
            (now, false)
        }
    }

    /// Engine-thread side: dequeues the next admitted query, recording its
    /// queue wait (Point 2).
    pub fn take(&self, timeout: Option<Duration>) -> TakeOutcome<T> {
        match self.queue.pop(timeout) {
            PopOutcome::Entry(entry) => {
                let now = self.clock.now();
                let wait = now.saturating_sub(entry.enqueued_at);
                self.policy.on_dequeued(entry.ty, wait, now);
                let admitted = Admitted {
                    ty: entry.ty,
                    enqueued_at: entry.enqueued_at,
                    dequeued_at: now,
                    payload: entry.payload,
                };
                if entry.deadline.is_some_and(|d| now > d) {
                    self.stats.on_expired(entry.ty);
                    if self.sink.enabled() {
                        self.sink.emit(&Event::Expired { at: now, ty: admitted.ty, wait });
                    }
                    TakeOutcome::Expired(admitted)
                } else {
                    if self.sink.enabled() {
                        self.sink.emit(&Event::Dequeued { at: now, ty: admitted.ty, wait });
                        self.sink.emit(&Event::Started { at: now, ty: admitted.ty });
                    }
                    TakeOutcome::Query(admitted)
                }
            }
            PopOutcome::Closed => TakeOutcome::Closed,
            PopOutcome::TimedOut => TakeOutcome::TimedOut,
        }
    }

    /// Engine-thread side: reports a processed query (Point 3), feeding the
    /// policy's processing-time measurements and the host statistics.
    pub fn complete(&self, ty: TypeId, enqueued_at: Nanos, dequeued_at: Nanos) {
        let now = self.clock.now();
        let processing = now.saturating_sub(dequeued_at);
        let wait = dequeued_at.saturating_sub(enqueued_at);
        self.policy.on_completed(ty, processing, now);
        self.stats.on_completed(ty, wait, processing);
        if self.sink.enabled() {
            self.sink.emit(&Event::Completed {
                at: now,
                ty,
                wait,
                processing,
                rt: wait.saturating_add(processing),
            });
        }
    }

    /// Runs policy maintenance; hosts call this from a [`Ticker`] or their
    /// own timer loop.
    ///
    /// [`Ticker`]: crate::framework::Ticker
    pub fn tick(&self) {
        self.policy.on_tick(self.clock.now());
    }

    /// The host statistics recorder.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The admission policy behind the gate.
    pub fn policy(&self) -> &Arc<dyn AdmissionPolicy> {
        &self.policy
    }

    /// The clock this gate stamps times with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The event sink lifecycle events are emitted into.
    pub fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }

    /// Current FIFO queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Closes the gate: engine threads drain and exit, new offers fail.
    pub fn close(&self) {
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlwaysAccept, Decision, MaxQueueLength};
    use bouncer_metrics::{ManualClock, MonotonicClock};

    #[test]
    fn offer_take_complete_round_trip() {
        let clock = Arc::new(ManualClock::new());
        let gate: Gate<&str> = Gate::new(
            Arc::new(AlwaysAccept::new()),
            1,
            clock.clone(),
            GateConfig::default(),
        );
        gate.offer(TypeId(0), "q1").unwrap();
        clock.set(1_000_000); // 1ms queue wait
        let q = match gate.take(None) {
            TakeOutcome::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q.payload, "q1");
        clock.set(5_000_000); // 4ms processing
        gate.complete(q.ty, q.enqueued_at, q.dequeued_at);

        let snap = gate.stats().snapshot(clock.now(), 1);
        assert_eq!(snap.per_type[0].completed, 1);
        let rt = snap.per_type[0].response.value_at_quantile(0.5).unwrap();
        assert!(rt.abs_diff(5_000_000) < 200_000, "rt={rt}");
        let wait = snap.per_type[0].wait.value_at_quantile(0.5).unwrap();
        assert!(wait.abs_diff(1_000_000) < 50_000, "wait={wait}");
    }

    #[test]
    fn rejection_returns_payload_and_reason() {
        let clock = Arc::new(ManualClock::new());
        let gate: Gate<u32> = Gate::new(
            Arc::new(MaxQueueLength::new(1)),
            1,
            clock,
            GateConfig::default(),
        );
        gate.offer(TypeId(0), 1).unwrap();
        let (reason, payload) = gate.offer(TypeId(0), 2).unwrap_err();
        assert_eq!(reason, RejectReason::QueueLengthLimit);
        assert_eq!(payload, 2);
        let snap = gate.stats().snapshot(1, 1);
        assert_eq!(snap.total_rejected(), 1);
    }

    #[test]
    fn queue_full_safeguard_overrides_policy() {
        let clock = Arc::new(ManualClock::new());
        let gate: Gate<u32> = Gate::new(
            Arc::new(AlwaysAccept::new()),
            1,
            clock,
            GateConfig {
                max_queue_len: Some(1),
                ..GateConfig::default()
            },
        );
        gate.offer(TypeId(0), 1).unwrap();
        let (reason, _) = gate.offer(TypeId(0), 2).unwrap_err();
        assert_eq!(reason, RejectReason::QueueFull);
    }

    #[test]
    fn policy_sees_queue_through_hooks() {
        // MaxQL's view of the queue must match the gate's real queue.
        let clock = Arc::new(ManualClock::new());
        let policy = Arc::new(MaxQueueLength::new(100));
        let gate: Gate<u32> = Gate::new(policy.clone(), 1, clock, GateConfig::default());
        for i in 0..5 {
            gate.offer(TypeId(0), i).unwrap();
        }
        assert_eq!(policy.queue_len(), 5);
        assert_eq!(gate.queue_len(), 5);
        if let TakeOutcome::Query(q) = gate.take(None) {
            gate.complete(q.ty, q.enqueued_at, q.dequeued_at);
        }
        assert_eq!(policy.queue_len(), 4);
    }

    #[test]
    fn expired_queries_are_dropped_undone() {
        let clock = Arc::new(ManualClock::new());
        let gate: Gate<u32> = Gate::new(
            Arc::new(AlwaysAccept::new()),
            1,
            clock.clone(),
            GateConfig::default(),
        );
        gate.offer_with_deadline(TypeId(0), 1, Some(1_000_000)).unwrap();
        gate.offer_with_deadline(TypeId(0), 2, Some(10_000_000)).unwrap();
        clock.set(5_000_000); // past the first deadline, not the second
        match gate.take(None) {
            TakeOutcome::Expired(q) => assert_eq!(q.payload, 1),
            other => panic!("{other:?}"),
        }
        match gate.take(None) {
            TakeOutcome::Query(q) => assert_eq!(q.payload, 2),
            other => panic!("{other:?}"),
        }
        let snap = gate.stats().snapshot(clock.now(), 1);
        assert_eq!(snap.per_type[0].expired, 1);
        assert_eq!(snap.per_type[0].completed, 0);
    }

    #[test]
    fn sink_sees_the_full_lifecycle() {
        use crate::obs::MemorySink;

        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(MemorySink::new());
        let gate: Gate<&str> = Gate::new_with_sink(
            Arc::new(MaxQueueLength::new(1)),
            1,
            clock.clone(),
            GateConfig::default(),
            sink.clone(),
        );
        gate.offer(TypeId(0), "served").unwrap();
        let (_, _) = gate.offer(TypeId(0), "shed").unwrap_err();
        clock.set(2_000_000);
        let q = match gate.take(None) {
            TakeOutcome::Query(q) => q,
            other => panic!("{other:?}"),
        };
        clock.set(3_000_000);
        gate.complete(q.ty, q.enqueued_at, q.dequeued_at);

        let names: Vec<&str> = sink.events().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            ["admitted", "enqueued", "rejected", "dequeued", "started", "completed"]
        );
        match sink.events()[5] {
            Event::Completed { wait, processing, rt, .. } => {
                assert_eq!(wait, 2_000_000);
                assert_eq!(processing, 1_000_000);
                assert_eq!(rt, 3_000_000);
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn external_hooks_mirror_the_internal_path_exactly() {
        use crate::obs::MemorySink;

        // Drive one gate through offer/take/complete and a second through
        // the external-queue hooks at the same clock readings; events and
        // stats must match field for field.
        let run = |external: bool| {
            let clock = Arc::new(ManualClock::new());
            let sink = Arc::new(MemorySink::new());
            let gate: Gate<&str> = Gate::new_with_sink(
                Arc::new(MaxQueueLength::new(1)),
                1,
                clock.clone(),
                GateConfig::default(),
                sink.clone(),
            );
            if external {
                let enq = gate.admit_external(TypeId(0)).unwrap();
                gate.enqueued_external(TypeId(0), enq, 1);
                // Queue "full" from the second query's perspective: the
                // policy rejects on queue length 1 just like the internal
                // path (policy saw on_enqueued), keeping streams aligned.
                let _ = gate.admit_external(TypeId(0)).unwrap_err();
                clock.set(2_000_000);
                let (deq, expired) = gate.dequeued_external(TypeId(0), enq, None);
                assert!(!expired);
                clock.set(3_000_000);
                gate.complete(TypeId(0), enq, deq);
            } else {
                gate.offer(TypeId(0), "served").unwrap();
                let _ = gate.offer(TypeId(0), "shed").unwrap_err();
                clock.set(2_000_000);
                let q = match gate.take(None) {
                    TakeOutcome::Query(q) => q,
                    other => panic!("{other:?}"),
                };
                clock.set(3_000_000);
                gate.complete(q.ty, q.enqueued_at, q.dequeued_at);
            }
            let snap = gate.stats().snapshot(clock.now(), 1);
            (sink.events(), snap.per_type[0].completed, snap.total_rejected())
        };
        let (internal_events, internal_done, internal_rej) = run(false);
        let (external_events, external_done, external_rej) = run(true);
        assert_eq!(format!("{internal_events:?}"), format!("{external_events:?}"));
        assert_eq!(internal_done, external_done);
        assert_eq!(internal_rej, external_rej);
    }

    #[test]
    fn external_expiry_mirrors_take() {
        let clock = Arc::new(ManualClock::new());
        let gate: Gate<u32> = Gate::new(
            Arc::new(AlwaysAccept::new()),
            1,
            clock.clone(),
            GateConfig::default(),
        );
        let enq = gate.admit_external(TypeId(0)).unwrap();
        gate.enqueued_external(TypeId(0), enq, 1);
        clock.set(5_000_000);
        let (_, expired) = gate.dequeued_external(TypeId(0), enq, Some(1_000_000));
        assert!(expired);
        let snap = gate.stats().snapshot(clock.now(), 1);
        assert_eq!(snap.per_type[0].expired, 1);
        assert_eq!(snap.per_type[0].completed, 0);
    }

    #[test]
    fn external_queue_full_records_the_safeguard_rejection() {
        let clock = Arc::new(ManualClock::new());
        let gate: Gate<u32> = Gate::new(
            Arc::new(AlwaysAccept::new()),
            1,
            clock,
            GateConfig::default(),
        );
        let at = gate.admit_external(TypeId(0)).unwrap();
        gate.reject_full_external(TypeId(0), at);
        let snap = gate.stats().snapshot(1, 1);
        assert_eq!(snap.total_rejected(), 1);
    }

    #[test]
    fn threaded_engine_drains_gate() {
        let clock = Arc::new(MonotonicClock::new());
        let gate: Arc<Gate<u64>> = Arc::new(Gate::new(
            Arc::new(AlwaysAccept::new()),
            1,
            clock,
            GateConfig::default(),
        ));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    loop {
                        match gate.take(None) {
                            TakeOutcome::Query(q) => {
                                gate.complete(q.ty, q.enqueued_at, q.dequeued_at);
                                n += 1;
                            }
                            TakeOutcome::Expired(_) => unreachable!("no deadlines set"),
                            TakeOutcome::Closed => return n,
                            TakeOutcome::TimedOut => {}
                        }
                    }
                })
            })
            .collect();
        for i in 0..1_000 {
            gate.offer(TypeId(0), i).unwrap();
        }
        // Wait for the queue to drain before closing so nothing is lost.
        while gate.queue_len() > 0 {
            std::thread::yield_now();
        }
        gate.close();
        let done: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(done, 1_000);
        let decision = gate.policy().admit(TypeId(0), 0);
        assert_eq!(decision, Decision::Accept);
    }
}
