//! Background maintenance timer for real-time hosts.
//!
//! Policies do periodic work — Bouncer swaps its dual-buffer histograms
//! every interval, AcceptFraction recomputes its fraction every second. In
//! the simulator these fire from scheduled events; on a real host a
//! [`Ticker`] thread drives [`AdmissionPolicy::on_tick`] at a fixed period.
//!
//! [`AdmissionPolicy::on_tick`]: crate::policy::AdmissionPolicy::on_tick

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bouncer_metrics::Clock;

use crate::policy::AdmissionPolicy;

/// A background thread calling `policy.on_tick(clock.now())` at a fixed
/// period until dropped or [`Ticker::stop`]ped.
pub struct Ticker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Ticker {
    /// Spawns the ticker thread.
    pub fn spawn(
        policy: Arc<dyn AdmissionPolicy>,
        clock: Arc<dyn Clock>,
        period: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("admission-ticker".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    std::thread::sleep(period);
                    policy.on_tick(clock.now());
                }
            })
            .expect("failed to spawn ticker thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops and joins the ticker thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Decision;
    use crate::types::TypeId;
    use bouncer_metrics::{MonotonicClock, Nanos};
    use std::sync::atomic::AtomicU64;

    struct CountTicks(AtomicU64);
    impl AdmissionPolicy for CountTicks {
        fn name(&self) -> &str {
            "count-ticks"
        }
        fn admit(&self, _ty: TypeId, _now: Nanos) -> Decision {
            Decision::Accept
        }
        fn on_tick(&self, _now: Nanos) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn ticks_fire_and_stop() {
        let policy = Arc::new(CountTicks(AtomicU64::new(0)));
        let ticker = Ticker::spawn(
            policy.clone(),
            Arc::new(MonotonicClock::new()),
            Duration::from_millis(2),
        );
        std::thread::sleep(Duration::from_millis(40));
        ticker.stop();
        let ticks = policy.0.load(Ordering::Relaxed);
        assert!(ticks >= 3, "ticks={ticks}");
        // No more ticks after stop.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(policy.0.load(Ordering::Relaxed), ticks);
    }
}
