//! Human-readable rendering of host statistics.
//!
//! Operators read per-type acceptance/latency tables constantly (every
//! figure in the paper's evaluation is one); this renders a
//! [`StatsSnapshot`] against a [`TypeRegistry`] so examples, CLIs, and
//! admin endpoints print the same thing.

use bouncer_metrics::time::as_millis_f64;

use crate::framework::stats::StatsSnapshot;
use crate::types::TypeRegistry;

/// Renders a per-type summary table: received / rejected % / serviced /
/// expired / rt percentiles. Types with no traffic are omitted.
pub fn render_snapshot(snap: &StatsSnapshot, registry: &TypeRegistry) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>9} {:>10} {:>9} {:>8} {:>11} {:>11}\n",
        "type", "received", "rejected%", "serviced", "expired", "rt_p50(ms)", "rt_p90(ms)"
    ));
    for (ty, name) in registry.iter() {
        let Some(t) = snap.per_type.get(ty.index()) else {
            continue;
        };
        if t.received == 0 && t.completed == 0 {
            continue;
        }
        let fmt_q = |q: f64| {
            t.response
                .value_at_quantile(q)
                .map(|v| format!("{:.1}", as_millis_f64(v)))
                .unwrap_or_else(|| "-".into())
        };
        out.push_str(&format!(
            "{:<16} {:>9} {:>10.2} {:>9} {:>8} {:>11} {:>11}\n",
            name,
            t.received,
            100.0 * t.rejection_ratio(),
            t.completed,
            t.expired,
            fmt_q(0.5),
            fmt_q(0.9),
        ));
    }
    out.push_str(&format!(
        "overall: {:.2}% rejected; utilization {:.1}%\n",
        100.0 * snap.overall_rejection_ratio(),
        100.0 * snap.utilization,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::stats::ServerStats;
    use crate::policy::RejectReason;
    use crate::types::TypeRegistry;
    use bouncer_metrics::time::{millis, secs};

    #[test]
    fn renders_active_types_only() {
        let mut registry = TypeRegistry::new();
        let a = registry.register("Alpha");
        let _b = registry.register("Beta"); // never used
        let stats = ServerStats::new(registry.len());
        for _ in 0..4 {
            stats.on_received(a);
        }
        stats.on_rejected(a, RejectReason::PredictedSloViolation);
        stats.on_completed(a, millis(2), millis(10));

        let text = render_snapshot(&stats.snapshot(secs(1), 2), &registry);
        assert!(text.contains("Alpha"));
        assert!(!text.contains("Beta"));
        assert!(text.contains("overall: 25.00% rejected"));
        // rt_p50 = 12ms (2 wait + 10 processing), within histogram
        // quantization (~1.6%).
        assert!(
            text.contains("11.9") || text.contains("12.0") || text.contains("12.1"),
            "{text}"
        );
    }

    #[test]
    fn empty_snapshot_renders_header_and_totals() {
        let registry = TypeRegistry::new();
        let stats = ServerStats::new(1);
        let text = render_snapshot(&stats.snapshot(secs(1), 1), &registry);
        assert!(text.contains("type"));
        assert!(text.contains("overall: 0.00% rejected"));
    }
}
