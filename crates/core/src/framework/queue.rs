//! The bounded FIFO queue between the admission policy and the query-engine
//! processes.
//!
//! "In LIquid not only MaxQL, but the other policies too can enforce a limit
//! on the queue's length to safeguard against its unbounded growth" (§5.4) —
//! the bound lives here in the framework, so any policy gets the `L_limit`
//! safeguard; an over-limit push is reported as a [`RejectReason::QueueFull`]
//! rejection by the gate.
//!
//! The paper's LIquid "currently processes queries in FIFO order and
//! evaluating other scheduling disciplines is left as future work" (§6);
//! [`Discipline::PriorityByType`] implements the priority extension §7
//! sketches ("extend Bouncer to support queries served based on
//! priorities"), with FIFO order preserved within a priority level.
//!
//! [`RejectReason::QueueFull`]: crate::policy::RejectReason::QueueFull

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use bouncer_metrics::Nanos;

use crate::types::TypeId;

/// A queued query: its type, enqueue timestamp, optional expiration, and
/// caller payload.
#[derive(Debug)]
pub struct Entry<T> {
    /// The query's type.
    pub ty: TypeId,
    /// When the query entered the queue.
    pub enqueued_at: Nanos,
    /// Absolute expiration time; queries past it are not worth processing
    /// ("brokers and shards also enforce expiration times for admitted
    /// queries", §5.1). `None` = never expires.
    pub deadline: Option<Nanos>,
    /// Caller data carried through the queue (the query itself).
    pub payload: T,
}

/// Outcome of a blocking pop.
#[derive(Debug)]
pub enum PopOutcome<T> {
    /// An entry was dequeued.
    Entry(Entry<T>),
    /// The queue was closed and drained; engine threads should exit.
    Closed,
    /// The timeout elapsed with the queue empty.
    TimedOut,
}

/// The order in which engine processes drain admitted queries.
#[derive(Debug, Clone, Default)]
pub enum Discipline {
    /// First-come, first-served — the paper's deployed order.
    #[default]
    Fifo,
    /// Serve higher-priority types first; FIFO within a priority level.
    /// `priorities[TypeId::index()]` gives each type's level (higher wins);
    /// types beyond the vector's length get priority 0.
    PriorityByType(Vec<u8>),
}

/// A queued item inside the priority heap: ordered by (priority desc,
/// arrival sequence asc).
struct HeapItem<T> {
    priority: u8,
    seq: u64,
    entry: Entry<T>,
}

impl<T> PartialEq for HeapItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for HeapItem<T> {}
impl<T> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then older sequence first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| Reverse(self.seq).cmp(&Reverse(other.seq)))
    }
}

enum Store<T> {
    Fifo(VecDeque<Entry<T>>),
    Priority {
        heap: BinaryHeap<HeapItem<T>>,
        priorities: Vec<u8>,
        next_seq: u64,
    },
}

impl<T> Store<T> {
    fn len(&self) -> usize {
        match self {
            Store::Fifo(q) => q.len(),
            Store::Priority { heap, .. } => heap.len(),
        }
    }

    fn push(&mut self, entry: Entry<T>) {
        match self {
            Store::Fifo(q) => q.push_back(entry),
            Store::Priority {
                heap,
                priorities,
                next_seq,
            } => {
                let priority = priorities.get(entry.ty.index()).copied().unwrap_or(0);
                heap.push(HeapItem {
                    priority,
                    seq: *next_seq,
                    entry,
                });
                *next_seq += 1;
            }
        }
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        match self {
            Store::Fifo(q) => q.pop_front(),
            Store::Priority { heap, .. } => heap.pop().map(|item| item.entry),
        }
    }
}

struct Inner<T> {
    store: Store<T>,
    closed: bool,
}

/// A thread-safe bounded queue with blocking consumers and a pluggable
/// service discipline.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    max_len: Option<usize>,
}

impl<T> AdmissionQueue<T> {
    /// Creates a FIFO queue; `max_len` is the `L_limit` safeguard (`None`
    /// for unbounded, as in the paper's simulation study).
    pub fn new(max_len: Option<usize>) -> Self {
        Self::with_discipline(max_len, Discipline::Fifo)
    }

    /// Creates a queue with an explicit service discipline.
    pub fn with_discipline(max_len: Option<usize>, discipline: Discipline) -> Self {
        let store = match discipline {
            Discipline::Fifo => Store::Fifo(VecDeque::new()),
            Discipline::PriorityByType(priorities) => Store::Priority {
                heap: BinaryHeap::new(),
                priorities,
                next_seq: 0,
            },
        };
        Self {
            inner: Mutex::new(Inner {
                store,
                closed: false,
            }),
            available: Condvar::new(),
            max_len,
        }
    }

    /// Appends an entry, failing (returning it back) when the queue is full
    /// or closed.
    pub fn push(&self, entry: Entry<T>) -> Result<(), Entry<T>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(entry);
        }
        if let Some(limit) = self.max_len {
            if inner.store.len() >= limit {
                return Err(entry);
            }
        }
        inner.store.push(entry);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest entry, blocking up to `timeout` (or indefinitely
    /// if `None`) while the queue is empty and open.
    pub fn pop(&self, timeout: Option<Duration>) -> PopOutcome<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(entry) = inner.store.pop() {
                return PopOutcome::Entry(entry);
            }
            if inner.closed {
                return PopOutcome::Closed;
            }
            match timeout {
                Some(t) => {
                    if self.available.wait_for(&mut inner, t).timed_out() {
                        return match inner.store.pop() {
                            Some(entry) => PopOutcome::Entry(entry),
                            None if inner.closed => PopOutcome::Closed,
                            None => PopOutcome::TimedOut,
                        };
                    }
                }
                None => self.available.wait(&mut inner),
            }
        }
    }

    /// Attempts a non-blocking dequeue.
    pub fn try_pop(&self) -> Option<Entry<T>> {
        self.inner.lock().store.pop()
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.inner.lock().store.len()
    }

    /// `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, and consumers observe
    /// [`PopOutcome::Closed`] once drained.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(ty: u32, t: Nanos) -> Entry<u32> {
        Entry {
            ty: TypeId(ty),
            enqueued_at: t,
            deadline: None,
            payload: ty,
        }
    }

    #[test]
    fn fifo_order() {
        let q = AdmissionQueue::new(None);
        q.push(entry(1, 10)).unwrap();
        q.push(entry(2, 20)).unwrap();
        match q.pop(None) {
            PopOutcome::Entry(e) => assert_eq!(e.payload, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.try_pop().unwrap().payload, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let q = AdmissionQueue::new(Some(2));
        q.push(entry(1, 0)).unwrap();
        q.push(entry(2, 0)).unwrap();
        let back = q.push(entry(3, 0)).unwrap_err();
        assert_eq!(back.payload, 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(None);
        match q.pop(Some(Duration::from_millis(5))) {
            PopOutcome::TimedOut => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(None));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || matches!(q2.pop(None), PopOutcome::Closed));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap());
        assert!(q.push(entry(1, 0)).is_err());
    }

    #[test]
    fn drains_remaining_entries_after_close() {
        let q = AdmissionQueue::new(None);
        q.push(entry(1, 0)).unwrap();
        q.close();
        assert!(matches!(q.pop(None), PopOutcome::Entry(_)));
        assert!(matches!(q.pop(None), PopOutcome::Closed));
    }

    #[test]
    fn priority_discipline_serves_high_priority_first() {
        // Types 0 (low) and 1 (high).
        let q = AdmissionQueue::with_discipline(None, Discipline::PriorityByType(vec![0, 5]));
        q.push(entry(0, 1)).unwrap();
        q.push(entry(0, 2)).unwrap();
        q.push(entry(1, 3)).unwrap();
        q.push(entry(0, 4)).unwrap();
        q.push(entry(1, 5)).unwrap();
        let order: Vec<u32> = std::iter::from_fn(|| q.try_pop().map(|e| e.payload)).collect();
        // High-priority entries first (FIFO among them), then the lows.
        assert_eq!(order, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn priority_is_fifo_within_a_level() {
        let q: AdmissionQueue<u64> =
            AdmissionQueue::with_discipline(None, Discipline::PriorityByType(vec![3]));
        for i in 0..10u64 {
            q.push(Entry {
                ty: TypeId(0),
                enqueued_at: i,
                deadline: None,
                payload: i,
            })
            .unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(q.try_pop().unwrap().payload, i);
        }
    }

    #[test]
    fn unlisted_types_default_to_priority_zero() {
        let q = AdmissionQueue::with_discipline(None, Discipline::PriorityByType(vec![0, 9]));
        q.push(entry(7, 1)).unwrap(); // type 7 beyond the vector -> 0
        q.push(entry(1, 2)).unwrap();
        assert_eq!(q.try_pop().unwrap().ty, TypeId(1));
        assert_eq!(q.try_pop().unwrap().ty, TypeId(7));
    }

    #[test]
    fn priority_queue_honors_length_limit() {
        let q = AdmissionQueue::with_discipline(Some(2), Discipline::PriorityByType(vec![1]));
        q.push(entry(0, 1)).unwrap();
        q.push(entry(0, 2)).unwrap();
        assert!(q.push(entry(0, 3)).is_err());
    }

    #[test]
    fn producer_consumer_transfers_everything() {
        let q: Arc<AdmissionQueue<u64>> = Arc::new(AdmissionQueue::new(None));
        let n = 10_000u64;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..n {
                        q.push(Entry {
                            ty: TypeId(0),
                            enqueued_at: i,
                            deadline: None,
                            payload: p * n + i,
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    loop {
                        match q.pop(None) {
                            PopOutcome::Entry(e) => sum += e.payload,
                            PopOutcome::Closed => return sum,
                            PopOutcome::TimedOut => unreachable!(),
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let got: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expected: u64 = (0..4 * n).sum();
        assert_eq!(got, expected);
    }
}
