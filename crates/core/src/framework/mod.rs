//! The admission-control framework of Figure 1.
//!
//! "Bouncer is built atop a software framework that resembles a stage in the
//! staged event-driven architecture (SEDA) … When a new query arrives, the
//! policy examines it and, based on metrics gathered from recent executions,
//! decides to admit or reject it. If admitted, the query is inserted into
//! the FIFO queue to wait for its turn to be processed; otherwise, the
//! policy drops it and instructs the server host to reply with an error
//! response. A fixed number of query engine processes dequeue the admitted
//! queries and process each independently."
//!
//! The framework records time intervals at the paper's three points:
//! Point 1 after the admission decision, Point 2 after dequeue (queue wait
//! time), and Point 3 after processing (processing time, response time).

mod gate;
mod queue;
pub mod report;
mod stats;
mod ticker;

pub use gate::{Admitted, Gate, GateConfig, TakeOutcome};
pub use queue::{AdmissionQueue, Discipline, Entry, PopOutcome};
pub use report::render_snapshot;
pub use stats::{ServerStats, StatsSnapshot, TypeStats};
pub use ticker::Ticker;
