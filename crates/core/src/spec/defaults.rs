//! The paper's named parameter defaults, in one place.
//!
//! Every constant the studies repeat — Table 2 policy parameters, the §5.3
//! rate sweep, the §5.4 cluster analogs — lives here so benches, the CLI,
//! and the examples stop re-declaring the literals. `scripts/check.sh`
//! greps the bench sources to keep it that way.

/// `P`: simulated engine parallelism of the §5.3 study.
pub const PARALLELISM: u32 = 100;

/// Table 2 `SLO_p50`, milliseconds (uniform across types).
pub const SLO_P50_MS: f64 = 18.0;

/// Table 2 `SLO_p90`, milliseconds (uniform across types).
pub const SLO_P90_MS: f64 = 50.0;

/// Table 2 MaxQL queue-length limit.
pub const MAXQL_LIMIT: u64 = 400;

/// Table 2 MaxQWT queue-wait limit, milliseconds.
pub const MAXQWT_LIMIT_MS: f64 = 15.0;

/// Table 2 AcceptFraction utilization threshold.
pub const ACCEPT_FRACTION_UTIL: f64 = 0.95;

/// The §5.4 acceptance-allowance parameter (`A = 0.05`), also the CLI's
/// `--allowance` default.
pub const ALLOWANCE: f64 = 0.05;

/// The Table 3 acceptance-allowance parameter (`A = 0.1`).
pub const ALLOWANCE_TABLE3: f64 = 0.1;

/// The helping-the-underserved scaling factor (`α = 1.0`) used throughout.
pub const ALPHA: f64 = 1.0;

/// The §5.3 rate sweep: multiples of `QPS_full_load` (Table 3's columns).
pub const SIM_RATE_FACTORS: [f64; 13] = [
    0.90, 0.95, 1.00, 1.05, 1.10, 1.15, 1.20, 1.25, 1.30, 1.35, 1.40, 1.45, 1.50,
];

/// Names of the Table 1 types, in registry order after `default`.
pub const TYPE_NAMES: [&str; 4] = ["fast", "medium fast", "medium slow", "slow"];

/// The CLI's default offered-rate factor.
pub const CLI_RATE_FACTOR: f64 = 1.2;

/// §5.4 MaxQL limit on the LIquid-like cluster (`L_limit = 800`).
pub const LIQUID_MAXQL_LIMIT: u64 = 800;

/// §5.4 MaxQWT wait limit on the cluster, milliseconds.
pub const LIQUID_MAXQWT_LIMIT_MS: f64 = 12.0;

/// §5.4 AcceptFraction threshold on the cluster (conservative 80 %).
pub const LIQUID_ACCEPT_FRACTION_UTIL: f64 = 0.8;

/// §5.4 shard-tier AcceptFraction threshold.
pub const LIQUID_SHARD_MAX_UTILIZATION: f64 = 0.8;

/// Adaptive controller (ADAPTIVE.md): default SLO-attainment target the
/// control laws steer toward.
pub const CONTROLLER_TARGET_ATTAIN: f64 = 0.9;

/// Adaptive controller: default telemetry interval, milliseconds.
pub const CONTROLLER_INTERVAL_MS: f64 = 1000.0;

/// AIMD law on `max_utilization`: additive increase per good interval.
pub const AIMD_STEP: f64 = 0.02;

/// AIMD law: multiplicative decrease factor on a bad interval.
pub const AIMD_BACKOFF: f64 = 0.7;

/// AIMD law: `max_utilization` floor.
pub const AIMD_MIN: f64 = 0.3;

/// AIMD law: `max_utilization` ceiling.
pub const AIMD_MAX: f64 = 0.98;

/// Budget law on allowance `A`: multiplicative increase fraction per good
/// interval (`A ← A·(1+step)`).
pub const BUDGET_STEP: f64 = 0.25;

/// Budget law: multiplicative decrease factor on a bad interval.
pub const BUDGET_BACKOFF: f64 = 0.5;

/// Budget law: allowance floor.
pub const BUDGET_MIN: f64 = 0.005;

/// Budget law: allowance ceiling.
pub const BUDGET_MAX: f64 = 0.5;

/// Gradient law on `α`: step size against the attainment spread.
pub const GRADIENT_STEP: f64 = 0.25;

/// Gradient law: `α` floor.
pub const GRADIENT_MIN: f64 = 0.05;

/// Gradient law: `α` ceiling.
pub const GRADIENT_MAX: f64 = 1.0;

/// The five §5.4 traffic points as fractions of measured saturation
/// capacity (the paper's 36K–180K QPS axis, knee at the third point).
pub const LIQUID_RATE_FACTORS: [f64; 5] = [0.42, 0.83, 1.25, 1.67, 2.08];

/// Labels for [`LIQUID_RATE_FACTORS`], naming the paper's absolute rates.
pub const LIQUID_RATE_LABELS: [&str; 5] = [
    "36K-analog",
    "72K-analog",
    "108K-analog",
    "144K-analog",
    "180K-analog",
];
