//! Declarative adaptive-controller specifications.
//!
//! A [`ControllerSpec`] names a control law and its tuning in a one-line
//! text form (`aimd target_attain=0.95 step=0.02`, `budget step=0.25`,
//! `gradient step=0.25`), serializes back canonically, and is carried by
//! [`ScenarioSpec`] under the `controller =` key so a closed-loop run is
//! content-hashed exactly like every other experiment input. The runnable
//! loop it describes lives in [`crate::control`]; ADAPTIVE.md documents
//! each law's update equation and stability argument.
//!
//! [`ScenarioSpec`]: crate::spec::ScenarioSpec

use crate::control::ControlParam;
use crate::slo_spec::SpecError;
use crate::spec::defaults;
use crate::spec::kv::{fmt_f64, parse_duration_ms, render_duration_ms};

/// Which control law drives the loop (one law per controller; each law
/// owns exactly one policy parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LawKind {
    /// Additive-increase / multiplicative-decrease on AcceptFraction's
    /// `max_utilization`.
    Aimd,
    /// Multiplicative budget control on the acceptance allowance `A`.
    Budget,
    /// Gradient step on helping-the-underserved's `α`, keyed to the
    /// per-type attainment spread.
    Gradient,
}

impl LawKind {
    /// The law's spec-form name token.
    pub fn name(self) -> &'static str {
        match self {
            LawKind::Aimd => "aimd",
            LawKind::Budget => "budget",
            LawKind::Gradient => "gradient",
        }
    }

    /// The policy parameter this law retunes.
    pub fn param(self) -> ControlParam {
        match self {
            LawKind::Aimd => ControlParam::MaxUtilization,
            LawKind::Budget => ControlParam::Allowance,
            LawKind::Gradient => ControlParam::Alpha,
        }
    }

    fn parse(name: &str) -> Result<Self, SpecError> {
        match name {
            "aimd" => Ok(LawKind::Aimd),
            "budget" => Ok(LawKind::Budget),
            "gradient" => Ok(LawKind::Gradient),
            other => Err(SpecError(format!(
                "unknown control law `{other}` (aimd, budget, gradient)"
            ))),
        }
    }
}

/// A serializable adaptive-controller choice with its tuning resolved.
///
/// Text form: the law name followed by `key=value` pairs, e.g.
/// `budget target_attain=0.95 interval=1s step=0.25 backoff=0.5
/// min=0.005 max=0.5`. Omitted keys take per-law defaults
/// (see [`crate::spec::defaults`]); the canonical render omits keys at
/// their default, so `parse(render(x)) == x` and the scenario content
/// hash only moves when the tuning does.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSpec {
    /// The control law (and thereby the retuned parameter).
    pub law: LawKind,
    /// The overall SLO-attainment target in `(0, 1]` the law steers
    /// toward. The gradient law reuses `1 - target_attain` as its
    /// tolerated per-type attainment spread.
    pub target_attain: f64,
    /// Telemetry aggregation interval, milliseconds — the Observe→Decide
    /// cadence. Decisions still only *apply* at policy maintenance
    /// boundaries (DESIGN.md S35).
    pub interval_ms: f64,
    /// Step size: additive for `aimd` and `gradient`, the multiplicative
    /// increase fraction for `budget`.
    pub step: f64,
    /// Multiplicative decrease factor in `(0, 1)` applied on a missed
    /// target (`aimd`, `budget`; the gradient law ignores it).
    pub backoff: f64,
    /// Parameter floor (keeps the loop out of dead zones where telemetry
    /// dries up).
    pub min: f64,
    /// Parameter ceiling.
    pub max: f64,
}

impl ControllerSpec {
    /// The per-law defaults every omitted key falls back to.
    pub fn law_default(law: LawKind) -> Self {
        let (step, backoff, min, max) = match law {
            LawKind::Aimd => (
                defaults::AIMD_STEP,
                defaults::AIMD_BACKOFF,
                defaults::AIMD_MIN,
                defaults::AIMD_MAX,
            ),
            LawKind::Budget => (
                defaults::BUDGET_STEP,
                defaults::BUDGET_BACKOFF,
                defaults::BUDGET_MIN,
                defaults::BUDGET_MAX,
            ),
            LawKind::Gradient => (
                defaults::GRADIENT_STEP,
                defaults::BUDGET_BACKOFF,
                defaults::GRADIENT_MIN,
                defaults::GRADIENT_MAX,
            ),
        };
        ControllerSpec {
            law,
            target_attain: defaults::CONTROLLER_TARGET_ATTAIN,
            interval_ms: defaults::CONTROLLER_INTERVAL_MS,
            step,
            backoff,
            min,
            max,
        }
    }

    /// Parses the one-line text form.
    pub fn parse(line: &str) -> Result<ControllerSpec, SpecError> {
        let mut tokens = line.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| SpecError("empty controller spec".into()))?;
        let law = LawKind::parse(name)?;
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        for tok in tokens {
            let (k, v) = tok.split_once('=').ok_or_else(|| {
                SpecError(format!("controller parameter must be key=value, got `{tok}`"))
            })?;
            if pairs.iter().any(|&(seen, _)| seen == k) {
                return Err(SpecError(format!("duplicate controller parameter `{k}`")));
            }
            pairs.push((k, v));
        }
        const KEYS: &[&str] = &["target_attain", "interval", "step", "backoff", "min", "max"];
        for &(k, _) in &pairs {
            if !KEYS.contains(&k) {
                return Err(SpecError(format!(
                    "unknown parameter `{k}` for controller `{name}` (allowed: {})",
                    KEYS.join(", ")
                )));
            }
        }
        let take = |key: &str| pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);

        let mut spec = ControllerSpec::law_default(law);
        if let Some(v) = take("target_attain") {
            spec.target_attain = parse_f64("target_attain", v)?;
        }
        if let Some(v) = take("interval") {
            spec.interval_ms = parse_duration_ms(v)?;
        }
        if let Some(v) = take("step") {
            spec.step = parse_f64("step", v)?;
        }
        if let Some(v) = take("backoff") {
            spec.backoff = parse_f64("backoff", v)?;
        }
        if let Some(v) = take("min") {
            spec.min = parse_f64("min", v)?;
        }
        if let Some(v) = take("max") {
            spec.max = parse_f64("max", v)?;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the canonical one-line text form (`parse(render(x)) == x`).
    pub fn render(&self) -> String {
        let d = ControllerSpec::law_default(self.law);
        let mut out = self.law.name().to_owned();
        if self.target_attain != d.target_attain {
            out.push_str(&format!(" target_attain={}", fmt_f64(self.target_attain)));
        }
        if self.interval_ms != d.interval_ms {
            out.push_str(&format!(" interval={}", render_duration_ms(self.interval_ms)));
        }
        if self.step != d.step {
            out.push_str(&format!(" step={}", fmt_f64(self.step)));
        }
        if self.backoff != d.backoff {
            out.push_str(&format!(" backoff={}", fmt_f64(self.backoff)));
        }
        if self.min != d.min {
            out.push_str(&format!(" min={}", fmt_f64(self.min)));
        }
        if self.max != d.max {
            out.push_str(&format!(" max={}", fmt_f64(self.max)));
        }
        out
    }

    /// Sanity-checks the tuning; [`ControllerSpec::parse`] calls this, and
    /// hand-built specs should too before running.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !(self.target_attain > 0.0 && self.target_attain <= 1.0) {
            return Err(SpecError(format!(
                "target_attain must be in (0, 1], got {}",
                self.target_attain
            )));
        }
        if !self.interval_ms.is_finite() || self.interval_ms <= 0.0 {
            return Err(SpecError(format!(
                "controller interval must be positive, got {}ms",
                self.interval_ms
            )));
        }
        if !self.step.is_finite() || self.step <= 0.0 {
            return Err(SpecError(format!("step must be positive, got {}", self.step)));
        }
        if !(self.backoff > 0.0 && self.backoff < 1.0) {
            return Err(SpecError(format!(
                "backoff must be in (0, 1), got {}",
                self.backoff
            )));
        }
        if !(self.min > 0.0 && self.min < self.max) {
            return Err(SpecError(format!(
                "need 0 < min < max, got min={} max={}",
                self.min, self.max
            )));
        }
        Ok(())
    }
}

fn parse_f64(key: &str, v: &str) -> Result<f64, SpecError> {
    let parsed: f64 = v
        .parse()
        .map_err(|_| SpecError(format!("`{key}` must be a number, got `{v}`")))?;
    if !parsed.is_finite() {
        return Err(SpecError(format!("`{key}` must be finite, got `{v}`")));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_canonically() {
        for (input, canon) in [
            ("aimd", "aimd"),
            ("budget", "budget"),
            ("gradient", "gradient"),
            ("aimd target_attain=0.9", "aimd"),
            ("budget  step=0.3   backoff=0.6", "budget step=0.3 backoff=0.6"),
            ("aimd interval=500ms", "aimd interval=500ms"),
            ("gradient target_attain=0.95 max=0.8", "gradient target_attain=0.95 max=0.8"),
            ("budget min=0.01 max=0.4", "budget min=0.01 max=0.4"),
        ] {
            let spec =
                ControllerSpec::parse(input).unwrap_or_else(|e| panic!("`{input}`: {e}"));
            assert_eq!(spec.render(), canon, "input `{input}`");
            assert_eq!(ControllerSpec::parse(canon).unwrap(), spec, "reparse `{canon}`");
        }
    }

    #[test]
    fn rejects_malformed_controller_lines() {
        for bad in [
            "",
            "pid",
            "aimd bogus=1",
            "aimd step",
            "aimd step=x",
            "budget step=0.2 step=0.3",
            "budget target_attain=0",
            "budget target_attain=1.5",
            "aimd interval=0ms",
            "aimd interval=5",
            "gradient step=-1",
            "budget backoff=1",
            "budget min=0.5 max=0.2",
            "aimd min=0",
        ] {
            assert!(ControllerSpec::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn laws_map_to_their_parameters() {
        assert_eq!(LawKind::Aimd.param(), ControlParam::MaxUtilization);
        assert_eq!(LawKind::Budget.param(), ControlParam::Allowance);
        assert_eq!(LawKind::Gradient.param(), ControlParam::Alpha);
        for law in [LawKind::Aimd, LawKind::Budget, LawKind::Gradient] {
            assert_eq!(LawKind::parse(law.name()).unwrap(), law);
            ControllerSpec::law_default(law).validate().unwrap();
        }
    }
}
