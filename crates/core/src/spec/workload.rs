//! Declarative workload (query-mix) specifications.
//!
//! Core only carries the *description* of a workload; building the runnable
//! `QueryMix` happens in `bouncer_workload::build_mix`, which sits above
//! this crate in the dependency order.

use crate::slo_spec::SpecError;
use crate::spec::kv::{fmt_f64, parse_duration_ms, render_duration_ms};

/// One query class of a custom mix: arrival proportion plus the log-normal
/// processing-time distribution given as `(median, p90)` milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Class (query-type) name as registered in the `TypeRegistry`.
    pub name: String,
    /// Arrival proportion in `[0, 1]`; proportions must sum to ~1.
    pub proportion: f64,
    /// Median processing time, milliseconds.
    pub median_ms: f64,
    /// 90th-percentile processing time, milliseconds.
    pub p90_ms: f64,
    /// Post-shift arrival proportion (`pshift=0.55`), sampled from
    /// `sim.shift_at` onwards. `None` = class keeps `p` after the shift.
    /// When any class sets `pshift`, all must, and they must sum to ~1.
    pub pshift: Option<f64>,
}

impl ClassSpec {
    /// Parses the value side of a `class.<NAME>` line:
    /// `p=0.9 p50=4.5ms p90=12ms`.
    pub fn parse(name: &str, value: &str) -> Result<ClassSpec, SpecError> {
        let (mut p, mut p50, mut p90, mut pshift) = (None, None, None, None);
        for tok in value.split_whitespace() {
            let (k, v) = tok.split_once('=').ok_or_else(|| {
                SpecError(format!("class `{name}`: expected key=value, got `{tok}`"))
            })?;
            let slot = match k {
                "p" => &mut p,
                "p50" => &mut p50,
                "p90" => &mut p90,
                "pshift" => &mut pshift,
                other => {
                    return Err(SpecError(format!(
                        "class `{name}`: unknown key `{other}` (p, p50, p90, pshift)"
                    )))
                }
            };
            if slot.is_some() {
                return Err(SpecError(format!("class `{name}`: duplicate key `{k}`")));
            }
            *slot = Some(v);
        }
        let p = p.ok_or_else(|| SpecError(format!("class `{name}`: missing `p=`")))?;
        let p50 = p50.ok_or_else(|| SpecError(format!("class `{name}`: missing `p50=`")))?;
        let p90 = p90.ok_or_else(|| SpecError(format!("class `{name}`: missing `p90=`")))?;
        let proportion: f64 = p
            .parse()
            .map_err(|_| SpecError(format!("class `{name}`: bad proportion `{p}`")))?;
        if !(0.0..=1.0).contains(&proportion) {
            return Err(SpecError(format!(
                "class `{name}`: proportion must be in [0, 1], got `{p}`"
            )));
        }
        let pshift = match pshift {
            None => None,
            Some(v) => {
                let shifted: f64 = v.parse().map_err(|_| {
                    SpecError(format!("class `{name}`: bad shifted proportion `{v}`"))
                })?;
                if !(0.0..=1.0).contains(&shifted) {
                    return Err(SpecError(format!(
                        "class `{name}`: pshift must be in [0, 1], got `{v}`"
                    )));
                }
                Some(shifted)
            }
        };
        Ok(ClassSpec {
            name: name.to_string(),
            proportion,
            median_ms: parse_duration_ms(p50)?,
            p90_ms: parse_duration_ms(p90)?,
            pshift,
        })
    }

    /// Renders the value side of this class's `class.<NAME>` line.
    pub fn render_value(&self) -> String {
        let mut s = format!(
            "p={} p50={} p90={}",
            fmt_f64(self.proportion),
            render_duration_ms(self.median_ms),
            render_duration_ms(self.p90_ms)
        );
        if let Some(shifted) = self.pshift {
            s.push_str(&format!(" pshift={}", fmt_f64(shifted)));
        }
        s
    }
}

/// A serializable workload choice.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's Table 1 four-type mix (`workload = paper_table1`).
    PaperTable1,
    /// The §5.4 LIquid eleven-kind mix (`workload = liquid`).
    Liquid,
    /// A custom mix given class-by-class (`workload = custom` plus one
    /// `class.<NAME> = p=… p50=… p90=…` line per class, in order).
    Custom(Vec<ClassSpec>),
}

impl WorkloadSpec {
    /// The `workload =` value naming this choice.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WorkloadSpec::PaperTable1 => "paper_table1",
            WorkloadSpec::Liquid => "liquid",
            WorkloadSpec::Custom(_) => "custom",
        }
    }

    /// The custom classes, if any.
    pub fn classes(&self) -> &[ClassSpec] {
        match self {
            WorkloadSpec::Custom(classes) => classes,
            _ => &[],
        }
    }

    /// Validates cross-field invariants after assembly from pairs.
    pub fn validate(&self) -> Result<(), SpecError> {
        if let WorkloadSpec::Custom(classes) = self {
            if classes.is_empty() {
                return Err(SpecError(
                    "workload = custom needs at least one `class.<NAME>` line".into(),
                ));
            }
            let sum: f64 = classes.iter().map(|c| c.proportion).sum();
            if (sum - 1.0).abs() > 1e-3 {
                return Err(SpecError(format!(
                    "custom class proportions must sum to 1, got {sum}"
                )));
            }
            let shifted = classes.iter().filter(|c| c.pshift.is_some()).count();
            if shifted > 0 {
                if shifted != classes.len() {
                    return Err(SpecError(
                        "when any class sets `pshift`, every class must".into(),
                    ));
                }
                let sum: f64 = classes.iter().filter_map(|c| c.pshift).sum();
                if (sum - 1.0).abs() > 1e-3 {
                    return Err(SpecError(format!(
                        "custom class `pshift` proportions must sum to 1, got {sum}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_lines_round_trip() {
        let c = ClassSpec::parse("FAST", "p=0.9 p50=4.5ms p90=12ms").unwrap();
        assert_eq!(
            c,
            ClassSpec {
                name: "FAST".into(),
                proportion: 0.9,
                median_ms: 4.5,
                p90_ms: 12.0,
                pshift: None,
            }
        );
        assert_eq!(c.render_value(), "p=0.9 p50=4.5ms p90=12ms");
        assert_eq!(ClassSpec::parse("FAST", &c.render_value()).unwrap(), c);
    }

    #[test]
    fn shifted_class_lines_round_trip() {
        let c = ClassSpec::parse("SLOW", "p=0.15 p50=14ms p90=40ms pshift=0.55").unwrap();
        assert_eq!(c.pshift, Some(0.55));
        assert_eq!(c.render_value(), "p=0.15 p50=14ms p90=40ms pshift=0.55");
        assert_eq!(ClassSpec::parse("SLOW", &c.render_value()).unwrap(), c);
        for bad in [
            "p=0.15 p50=14ms p90=40ms pshift=1.5",
            "p=0.15 p50=14ms p90=40ms pshift=abc",
            "p=0.15 p50=14ms p90=40ms pshift=0.5 pshift=0.5",
        ] {
            assert!(ClassSpec::parse("X", bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn class_lines_reject_bad_input() {
        for bad in [
            "p=0.9 p50=4.5ms",
            "p=0.9 p50=4.5ms p90=12ms extra=1",
            "p=1.5 p50=4.5ms p90=12ms",
            "p=0.9 p50=4.5 p90=12ms",
            "p=0.9 p=0.1 p50=4.5ms p90=12ms",
        ] {
            assert!(ClassSpec::parse("X", bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn custom_workload_validates_proportions() {
        let ok = WorkloadSpec::Custom(vec![
            ClassSpec::parse("A", "p=0.4 p50=1ms p90=2ms").unwrap(),
            ClassSpec::parse("B", "p=0.6 p50=1ms p90=2ms").unwrap(),
        ]);
        assert!(ok.validate().is_ok());
        let bad = WorkloadSpec::Custom(vec![
            ClassSpec::parse("A", "p=0.4 p50=1ms p90=2ms").unwrap(),
        ]);
        assert!(bad.validate().is_err());
        assert!(WorkloadSpec::Custom(vec![]).validate().is_err());
        assert!(WorkloadSpec::PaperTable1.validate().is_ok());
    }

    #[test]
    fn shifted_proportions_validate_jointly() {
        let ok = WorkloadSpec::Custom(vec![
            ClassSpec::parse("A", "p=0.85 p50=1ms p90=2ms pshift=0.45").unwrap(),
            ClassSpec::parse("B", "p=0.15 p50=1ms p90=2ms pshift=0.55").unwrap(),
        ]);
        assert!(ok.validate().is_ok());
        // Some classes shifted, some not.
        let partial = WorkloadSpec::Custom(vec![
            ClassSpec::parse("A", "p=0.85 p50=1ms p90=2ms pshift=0.45").unwrap(),
            ClassSpec::parse("B", "p=0.15 p50=1ms p90=2ms").unwrap(),
        ]);
        assert!(partial.validate().is_err());
        // Shifted proportions must sum to ~1.
        let lopsided = WorkloadSpec::Custom(vec![
            ClassSpec::parse("A", "p=0.85 p50=1ms p90=2ms pshift=0.45").unwrap(),
            ClassSpec::parse("B", "p=0.15 p50=1ms p90=2ms pshift=0.95").unwrap(),
        ]);
        assert!(lopsided.validate().is_err());
    }
}
