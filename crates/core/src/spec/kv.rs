//! Shared helpers for the flat `key = value` scenario text format.
//!
//! The format is deliberately minimal and zero-dependency, in the spirit of
//! the vendored JSONL writer in [`crate::obs`]: one `key = value` pair per
//! line, `#` comments, values tokenized on whitespace. These helpers keep
//! number and duration rendering canonical so `parse(render(x)) == x` and
//! the content hash is stable.

use crate::slo_spec::SpecError;

/// Renders an `f64` in its shortest round-trip `Display` form (`0.05`,
/// `1`, `13.5`) — the canonical number format for all spec values.
pub fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Parses a duration literal (`500us`, `15ms`, `13.5ms`, `1s`) into
/// fractional milliseconds. A bare number is rejected — durations always
/// carry a unit so scenario files read unambiguously.
pub fn parse_duration_ms(v: &str) -> Result<f64, SpecError> {
    let (digits, scale) = if let Some(d) = v.strip_suffix("ms") {
        (d, 1.0)
    } else if let Some(d) = v.strip_suffix("us") {
        (d, 1.0 / 1000.0)
    } else if let Some(d) = v.strip_suffix("ns") {
        (d, 1.0 / 1_000_000.0)
    } else if let Some(d) = v.strip_suffix('s') {
        (d, 1000.0)
    } else {
        return Err(SpecError(format!(
            "duration `{v}` needs a unit (ns, us, ms, s)"
        )));
    };
    let n: f64 = digits
        .parse()
        .map_err(|_| SpecError(format!("bad duration `{v}`")))?;
    if !n.is_finite() || n < 0.0 {
        return Err(SpecError(format!("duration `{v}` must be finite and >= 0")));
    }
    Ok(n * scale)
}

/// Renders fractional milliseconds canonically: whole seconds as `1s`,
/// everything else as `{n}ms` (`15ms`, `13.5ms`, `0.5ms`).
pub fn render_duration_ms(ms: f64) -> String {
    if ms >= 1000.0 && ms % 1000.0 == 0.0 {
        format!("{}s", fmt_f64(ms / 1000.0))
    } else {
        format!("{}ms", fmt_f64(ms))
    }
}

/// FNV-1a 64-bit over `bytes` — the scenario content hash. Stable across
/// platforms and runs; collisions are irrelevant at the "name the scenario
/// that produced this table" scale.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Formats a content hash the way it appears in reports, JSONL events, and
/// bench table headers: 16 lowercase hex digits.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Splits a spec body into `(key, value)` pairs, skipping blank lines and
/// `#` comments. Keys and values are trimmed; duplicate keys are an error.
pub fn split_pairs(text: &str) -> Result<Vec<(String, String)>, SpecError> {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line.split_once('=').ok_or_else(|| {
            SpecError(format!("line {}: expected `key = value`, got `{line}`", idx + 1))
        })?;
        let (k, v) = (k.trim().to_string(), v.trim().to_string());
        if k.is_empty() {
            return Err(SpecError(format!("line {}: empty key", idx + 1)));
        }
        if pairs.iter().any(|(seen, _)| *seen == k) {
            return Err(SpecError(format!("line {}: duplicate key `{k}`", idx + 1)));
        }
        pairs.push((k, v));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_round_trip_canonically() {
        for (input, ms, canon) in [
            ("15ms", 15.0, "15ms"),
            ("13.5ms", 13.5, "13.5ms"),
            ("500us", 0.5, "0.5ms"),
            ("250ns", 0.00025, "0.00025ms"),
            ("1s", 1000.0, "1s"),
            ("2.5s", 2500.0, "2500ms"),
            ("60s", 60_000.0, "60s"),
        ] {
            assert_eq!(parse_duration_ms(input).unwrap(), ms, "{input}");
            assert_eq!(render_duration_ms(ms), canon, "{input}");
            assert_eq!(parse_duration_ms(canon).unwrap(), ms, "{canon}");
        }
        assert!(parse_duration_ms("15").is_err());
        assert!(parse_duration_ms("-1ms").is_err());
        assert!(parse_duration_ms("xms").is_err());
    }

    #[test]
    fn fnv_vector_matches_reference() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_hex(fnv1a64(b"a")), "af63dc4c8601ec8c");
    }

    #[test]
    fn pair_splitting_handles_comments_and_errors() {
        let pairs = split_pairs("# comment\nname = x\n\npolicy.A = maxql limit=400\n").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("name".to_string(), "x".to_string()),
                ("policy.A".to_string(), "maxql limit=400".to_string()),
            ]
        );
        assert!(split_pairs("no equals sign").is_err());
        assert!(split_pairs("a = 1\na = 2").is_err());
        assert!(split_pairs(" = 1").is_err());
    }
}
