//! Declarative admission-policy specifications.
//!
//! A [`PolicySpec`] names a policy and its parameters in a one-line text
//! form (`bouncer+aa A=0.05`, `maxql limit=400`, …), serializes back
//! canonically, and builds the runnable [`AdmissionPolicy`] through
//! [`PolicySpec::build`] — the single constructor every experiment in the
//! workspace goes through.

use std::sync::Arc;

use bouncer_metrics::time::millis_f64;

use crate::policy::{
    AcceptFraction, AcceptFractionConfig, AcceptanceAllowance, AdmissionPolicy, AlwaysAccept,
    Bouncer, BouncerConfig, DecisionRule, GatekeeperConfig, GatekeeperStyle,
    HelpingTheUnderserved, HistogramMode, MaxQueueLength, MaxQueueWaitTime,
};
use crate::slo::SloConfig;
use crate::slo_spec::SpecError;
use crate::spec::defaults;
use crate::spec::kv::{fmt_f64, parse_duration_ms, render_duration_ms};
use crate::types::TypeRegistry;

/// Bouncer's tunable knobs beyond the SLO table (all optional in the text
/// form; defaults match [`BouncerConfig::with_parallelism`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BouncerParams {
    /// Histogram maintenance mode (`histogram=dual` or `histogram=sliding:N`).
    pub histogram: HistogramSpec,
    /// Dual-buffer swap period, milliseconds (`interval=1s`).
    pub interval_ms: f64,
    /// Appendix A retention threshold (`retention=0`).
    pub retention: u64,
    /// Appendix A warm-up threshold (`warmup=16`).
    pub warmup: u64,
    /// Decision combination rule (`rule=any` or `rule=all`).
    pub rule: RuleSpec,
}

impl Default for BouncerParams {
    fn default() -> Self {
        Self {
            histogram: HistogramSpec::Dual,
            interval_ms: 1000.0,
            retention: 0,
            warmup: 16,
            rule: RuleSpec::Any,
        }
    }
}

/// Histogram maintenance mode in spec form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramSpec {
    /// Dual-buffer with atomic swap per interval (§3, the default).
    Dual,
    /// Sliding window over the trailing `N` intervals (§7).
    Sliding(u32),
}

/// Decision combination rule in spec form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleSpec {
    /// Reject when **any** target would be violated (Algorithm 1).
    Any,
    /// Reject only when **every** target would be violated.
    All,
}

/// A serializable admission-policy choice with its parameters resolved.
///
/// Text form: the policy name followed by `key=value` pairs, e.g.
/// `bouncer`, `bouncer histogram=sliding:4`, `bouncer+aa A=0.05`,
/// `maxql limit=400`, `maxqwt wait=15ms`, `acceptfraction util=0.95`.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Basic Bouncer (the paper's policy).
    Bouncer(BouncerParams),
    /// Bouncer + acceptance-allowance `A` (Algorithm 2).
    BouncerAllowance {
        /// Inner Bouncer knobs.
        bouncer: BouncerParams,
        /// The acceptance allowance `A`.
        allowance: f64,
    },
    /// Bouncer + helping-the-underserved `α` (Algorithm 3).
    BouncerUnderserved {
        /// Inner Bouncer knobs.
        bouncer: BouncerParams,
        /// The scaling factor `α`.
        alpha: f64,
    },
    /// MaxQL with a queue-length limit.
    MaxQl {
        /// The queue-length limit.
        limit: u64,
    },
    /// MaxQWT with a single queue-wait limit.
    MaxQwt {
        /// The wait limit, milliseconds.
        wait_ms: f64,
    },
    /// MaxQWT with per-type wait limits, indexed by `TypeId::index()`
    /// (the §5.5 tuned-per-type variant).
    MaxQwtPerType {
        /// Wait limits in milliseconds, one per registered type.
        wait_ms: Vec<f64>,
    },
    /// AcceptFraction with a utilization threshold.
    AcceptFraction {
        /// The maximum utilization threshold in `(0, 1]`.
        max_utilization: f64,
    },
    /// Gatekeeper-style capacity baseline (§6 literature comparison).
    Gatekeeper {
        /// Backlog horizon, milliseconds.
        horizon_ms: f64,
        /// Load threshold β.
        beta: f64,
    },
    /// No admission control.
    Always,
}

/// Everything [`PolicySpec::build`] needs from the surrounding experiment.
pub struct PolicyEnv<'a> {
    /// The workload's type registry (sizes the per-type policy state).
    pub registry: &'a TypeRegistry,
    /// The SLO table (only Bouncer variants consult it).
    pub slos: SloConfig,
    /// Engine parallelism `P` of the host being gated.
    pub parallelism: u32,
}

impl PolicySpec {
    /// The paper's Table 2 MaxQL baseline (`limit = 400`).
    pub fn maxql_default() -> Self {
        PolicySpec::MaxQl {
            limit: defaults::MAXQL_LIMIT,
        }
    }

    /// The paper's Table 2 MaxQWT baseline (`limit = 15 ms`).
    pub fn maxqwt_default() -> Self {
        PolicySpec::MaxQwt {
            wait_ms: defaults::MAXQWT_LIMIT_MS,
        }
    }

    /// The paper's Table 2 AcceptFraction baseline (95 %).
    pub fn accept_fraction_default() -> Self {
        PolicySpec::AcceptFraction {
            max_utilization: defaults::ACCEPT_FRACTION_UTIL,
        }
    }

    /// Bouncer + acceptance-allowance with the given `A`.
    pub fn allowance(a: f64) -> Self {
        PolicySpec::BouncerAllowance {
            bouncer: BouncerParams::default(),
            allowance: a,
        }
    }

    /// Bouncer + helping-the-underserved with the given `α`.
    pub fn underserved(alpha: f64) -> Self {
        PolicySpec::BouncerUnderserved {
            bouncer: BouncerParams::default(),
            alpha,
        }
    }

    /// Parses the one-line text form.
    pub fn parse(line: &str) -> Result<PolicySpec, SpecError> {
        let mut tokens = line.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| SpecError("empty policy spec".into()))?;
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        for tok in tokens {
            let (k, v) = tok.split_once('=').ok_or_else(|| {
                SpecError(format!("policy parameter must be key=value, got `{tok}`"))
            })?;
            if pairs.iter().any(|&(seen, _)| seen == k) {
                return Err(SpecError(format!("duplicate policy parameter `{k}`")));
            }
            pairs.push((k, v));
        }

        let take = |key: &str| pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
        let reject_unknown = |allowed: &[&str]| -> Result<(), SpecError> {
            for &(k, _) in &pairs {
                if !allowed.contains(&k) {
                    return Err(SpecError(format!(
                        "unknown parameter `{k}` for policy `{name}` (allowed: {})",
                        allowed.join(", ")
                    )));
                }
            }
            Ok(())
        };

        const BOUNCER_KEYS: &[&str] = &["histogram", "interval", "retention", "warmup", "rule"];
        let bouncer_params = || -> Result<BouncerParams, SpecError> {
            let mut p = BouncerParams::default();
            if let Some(v) = take("histogram") {
                p.histogram = if v == "dual" {
                    HistogramSpec::Dual
                } else if let Some(n) = v.strip_prefix("sliding:") {
                    HistogramSpec::Sliding(n.parse().map_err(|_| {
                        SpecError(format!("bad sliding interval count `{v}`"))
                    })?)
                } else {
                    return Err(SpecError(format!(
                        "histogram must be `dual` or `sliding:N`, got `{v}`"
                    )));
                };
            }
            if let Some(v) = take("interval") {
                p.interval_ms = parse_duration_ms(v)?;
            }
            if let Some(v) = take("retention") {
                p.retention = parse_u64("retention", v)?;
            }
            if let Some(v) = take("warmup") {
                p.warmup = parse_u64("warmup", v)?;
            }
            if let Some(v) = take("rule") {
                p.rule = match v {
                    "any" => RuleSpec::Any,
                    "all" => RuleSpec::All,
                    other => {
                        return Err(SpecError(format!(
                            "rule must be `any` or `all`, got `{other}`"
                        )))
                    }
                };
            }
            Ok(p)
        };

        Ok(match name {
            "bouncer" => {
                reject_unknown(BOUNCER_KEYS)?;
                PolicySpec::Bouncer(bouncer_params()?)
            }
            "bouncer+aa" => {
                let allowed: Vec<&str> =
                    BOUNCER_KEYS.iter().copied().chain(["A"]).collect();
                reject_unknown(&allowed)?;
                PolicySpec::BouncerAllowance {
                    bouncer: bouncer_params()?,
                    allowance: match take("A") {
                        Some(v) => parse_f64("A", v)?,
                        None => defaults::ALLOWANCE,
                    },
                }
            }
            "bouncer+htu" => {
                let allowed: Vec<&str> =
                    BOUNCER_KEYS.iter().copied().chain(["alpha"]).collect();
                reject_unknown(&allowed)?;
                PolicySpec::BouncerUnderserved {
                    bouncer: bouncer_params()?,
                    alpha: match take("alpha") {
                        Some(v) => parse_f64("alpha", v)?,
                        None => defaults::ALPHA,
                    },
                }
            }
            "maxql" => {
                reject_unknown(&["limit"])?;
                PolicySpec::MaxQl {
                    limit: match take("limit") {
                        Some(v) => parse_u64("limit", v)?,
                        None => defaults::MAXQL_LIMIT,
                    },
                }
            }
            "maxqwt" => {
                reject_unknown(&["wait", "per_type"])?;
                match (take("wait"), take("per_type")) {
                    (Some(_), Some(_)) => {
                        return Err(SpecError(
                            "maxqwt takes either `wait` or `per_type`, not both".into(),
                        ))
                    }
                    (None, Some(list)) => {
                        let wait_ms = list
                            .split(',')
                            .map(parse_duration_ms)
                            .collect::<Result<Vec<_>, _>>()?;
                        if wait_ms.is_empty() {
                            return Err(SpecError("per_type needs at least one limit".into()));
                        }
                        PolicySpec::MaxQwtPerType { wait_ms }
                    }
                    (wait, None) => PolicySpec::MaxQwt {
                        wait_ms: match wait {
                            Some(v) => parse_duration_ms(v)?,
                            None => defaults::MAXQWT_LIMIT_MS,
                        },
                    },
                }
            }
            "acceptfraction" => {
                reject_unknown(&["util"])?;
                PolicySpec::AcceptFraction {
                    max_utilization: match take("util") {
                        Some(v) => parse_f64("util", v)?,
                        None => defaults::ACCEPT_FRACTION_UTIL,
                    },
                }
            }
            "gatekeeper" => {
                reject_unknown(&["horizon", "beta"])?;
                PolicySpec::Gatekeeper {
                    horizon_ms: match take("horizon") {
                        Some(v) => parse_duration_ms(v)?,
                        None => 100.0,
                    },
                    beta: match take("beta") {
                        Some(v) => parse_f64("beta", v)?,
                        None => 1.0,
                    },
                }
            }
            "always" => {
                reject_unknown(&[])?;
                PolicySpec::Always
            }
            other => {
                return Err(SpecError(format!(
                    "unknown policy `{other}` (bouncer, bouncer+aa, bouncer+htu, maxql, \
                     maxqwt, acceptfraction, gatekeeper, always)"
                )))
            }
        })
    }

    /// Renders the canonical one-line text form (`parse(render(x)) == x`).
    pub fn render(&self) -> String {
        fn bouncer_keys(out: &mut String, p: &BouncerParams) {
            let d = BouncerParams::default();
            if p.histogram != d.histogram {
                match p.histogram {
                    HistogramSpec::Dual => out.push_str(" histogram=dual"),
                    HistogramSpec::Sliding(n) => {
                        out.push_str(&format!(" histogram=sliding:{n}"))
                    }
                }
            }
            if p.interval_ms != d.interval_ms {
                out.push_str(&format!(" interval={}", render_duration_ms(p.interval_ms)));
            }
            if p.retention != d.retention {
                out.push_str(&format!(" retention={}", p.retention));
            }
            if p.warmup != d.warmup {
                out.push_str(&format!(" warmup={}", p.warmup));
            }
            if p.rule != d.rule {
                out.push_str(match p.rule {
                    RuleSpec::Any => " rule=any",
                    RuleSpec::All => " rule=all",
                });
            }
        }

        let mut out = String::new();
        match self {
            PolicySpec::Bouncer(p) => {
                out.push_str("bouncer");
                bouncer_keys(&mut out, p);
            }
            PolicySpec::BouncerAllowance { bouncer, allowance } => {
                out.push_str("bouncer+aa");
                out.push_str(&format!(" A={}", fmt_f64(*allowance)));
                bouncer_keys(&mut out, bouncer);
            }
            PolicySpec::BouncerUnderserved { bouncer, alpha } => {
                out.push_str("bouncer+htu");
                out.push_str(&format!(" alpha={}", fmt_f64(*alpha)));
                bouncer_keys(&mut out, bouncer);
            }
            PolicySpec::MaxQl { limit } => out.push_str(&format!("maxql limit={limit}")),
            PolicySpec::MaxQwt { wait_ms } => {
                out.push_str(&format!("maxqwt wait={}", render_duration_ms(*wait_ms)))
            }
            PolicySpec::MaxQwtPerType { wait_ms } => {
                let list: Vec<String> =
                    wait_ms.iter().map(|&w| render_duration_ms(w)).collect();
                out.push_str(&format!("maxqwt per_type={}", list.join(",")));
            }
            PolicySpec::AcceptFraction { max_utilization } => {
                out.push_str(&format!("acceptfraction util={}", fmt_f64(*max_utilization)))
            }
            PolicySpec::Gatekeeper { horizon_ms, beta } => {
                out.push_str("gatekeeper");
                if *horizon_ms != 100.0 {
                    out.push_str(&format!(" horizon={}", render_duration_ms(*horizon_ms)));
                }
                if *beta != 1.0 {
                    out.push_str(&format!(" beta={}", fmt_f64(*beta)));
                }
            }
            PolicySpec::Always => out.push_str("always"),
        }
        out
    }

    /// The canonical policy-name token (the CLI's `--policy` values).
    pub fn kind_name(&self) -> &'static str {
        match self {
            PolicySpec::Bouncer(_) => "bouncer",
            PolicySpec::BouncerAllowance { .. } => "bouncer+aa",
            PolicySpec::BouncerUnderserved { .. } => "bouncer+htu",
            PolicySpec::MaxQl { .. } => "maxql",
            PolicySpec::MaxQwt { .. } | PolicySpec::MaxQwtPerType { .. } => "maxqwt",
            PolicySpec::AcceptFraction { .. } => "acceptfraction",
            PolicySpec::Gatekeeper { .. } => "gatekeeper",
            PolicySpec::Always => "always",
        }
    }

    /// Builds the runnable policy — the registry function the whole
    /// workspace constructs experiments through. `seed` feeds the
    /// probabilistic policies (allowance/underserved coin flips,
    /// AcceptFraction's admission lottery); deterministic policies ignore
    /// it, so equal specs at equal seeds build equal policies.
    pub fn build(&self, env: &PolicyEnv<'_>, seed: u64) -> Arc<dyn AdmissionPolicy> {
        match self {
            PolicySpec::Bouncer(p) => Arc::new(build_bouncer(p, env)),
            PolicySpec::BouncerAllowance { bouncer, allowance } => Arc::new(
                AcceptanceAllowance::new(
                    build_bouncer(bouncer, env),
                    env.registry.len(),
                    *allowance,
                    seed,
                ),
            ),
            PolicySpec::BouncerUnderserved { bouncer, alpha } => Arc::new(
                HelpingTheUnderserved::new(
                    build_bouncer(bouncer, env),
                    env.registry.len(),
                    *alpha,
                    seed,
                ),
            ),
            PolicySpec::MaxQl { limit } => Arc::new(MaxQueueLength::new(*limit)),
            PolicySpec::MaxQwt { wait_ms } => {
                Arc::new(MaxQueueWaitTime::new(millis_f64(*wait_ms), env.parallelism))
            }
            PolicySpec::MaxQwtPerType { wait_ms } => Arc::new(
                MaxQueueWaitTime::with_per_type_limits(
                    wait_ms.iter().map(|&w| millis_f64(w)).collect(),
                    env.parallelism,
                ),
            ),
            PolicySpec::AcceptFraction { max_utilization } => {
                let mut cfg = AcceptFractionConfig::new(*max_utilization, env.parallelism);
                cfg.seed = seed;
                Arc::new(AcceptFraction::new(cfg))
            }
            PolicySpec::Gatekeeper { horizon_ms, beta } => {
                let mut cfg = GatekeeperConfig::new(env.parallelism);
                cfg.horizon = millis_f64(*horizon_ms);
                cfg.beta = *beta;
                Arc::new(GatekeeperStyle::new(env.registry.len(), cfg))
            }
            PolicySpec::Always => Arc::new(AlwaysAccept::new()),
        }
    }

    /// Builds the concrete [`Bouncer`] behind a Bouncer-family spec
    /// (`None` for non-Bouncer policies). Experiments that need Bouncer's
    /// inherent inspection methods (e.g. `is_warming_up_at`) go through
    /// this instead of calling `Bouncer::new` themselves.
    pub fn build_bouncer(&self, env: &PolicyEnv<'_>) -> Option<Bouncer> {
        match self {
            PolicySpec::Bouncer(p)
            | PolicySpec::BouncerAllowance { bouncer: p, .. }
            | PolicySpec::BouncerUnderserved { bouncer: p, .. } => {
                Some(build_bouncer(p, env))
            }
            _ => None,
        }
    }
}

fn build_bouncer(p: &BouncerParams, env: &PolicyEnv<'_>) -> Bouncer {
    let mut cfg = BouncerConfig::with_parallelism(env.parallelism);
    cfg.histogram_interval = millis_f64(p.interval_ms);
    cfg.retention_min_samples = p.retention;
    cfg.warmup_min_samples = p.warmup;
    cfg.decision_rule = match p.rule {
        RuleSpec::Any => DecisionRule::RejectIfAnyViolated,
        RuleSpec::All => DecisionRule::RejectIfAllViolated,
    };
    cfg.histogram_mode = match p.histogram {
        HistogramSpec::Dual => HistogramMode::DualBuffer,
        HistogramSpec::Sliding(n) => HistogramMode::Sliding {
            intervals: n as usize,
        },
    };
    Bouncer::new(env.slos.clone(), cfg)
}

fn parse_u64(key: &str, v: &str) -> Result<u64, SpecError> {
    v.parse()
        .map_err(|_| SpecError(format!("`{key}` must be a non-negative integer, got `{v}`")))
}

fn parse_f64(key: &str, v: &str) -> Result<f64, SpecError> {
    let parsed: f64 = v
        .parse()
        .map_err(|_| SpecError(format!("`{key}` must be a number, got `{v}`")))?;
    if !parsed.is_finite() {
        return Err(SpecError(format!("`{key}` must be finite, got `{v}`")));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::Slo;
    use bouncer_metrics::time::millis;

    fn env_for(registry: &TypeRegistry) -> PolicyEnv<'_> {
        PolicyEnv {
            registry,
            slos: SloConfig::uniform(registry, Slo::p50_p90(millis(18), millis(50))),
            parallelism: 100,
        }
    }

    #[test]
    fn parses_and_renders_canonically() {
        for (input, canon) in [
            ("bouncer", "bouncer"),
            ("bouncer histogram=sliding:4", "bouncer histogram=sliding:4"),
            ("bouncer  warmup=8   retention=16", "bouncer retention=16 warmup=8"),
            ("bouncer+aa A=0.05", "bouncer+aa A=0.05"),
            ("bouncer+aa", "bouncer+aa A=0.05"),
            ("bouncer+htu alpha=1", "bouncer+htu alpha=1"),
            ("maxql limit=400", "maxql limit=400"),
            ("maxql", "maxql limit=400"),
            ("maxqwt wait=15ms", "maxqwt wait=15ms"),
            ("maxqwt per_type=18ms,13.5ms,1ms", "maxqwt per_type=18ms,13.5ms,1ms"),
            ("acceptfraction util=0.95", "acceptfraction util=0.95"),
            ("gatekeeper horizon=15ms", "gatekeeper horizon=15ms"),
            ("always", "always"),
        ] {
            let spec = PolicySpec::parse(input).unwrap_or_else(|e| panic!("`{input}`: {e}"));
            assert_eq!(spec.render(), canon, "input `{input}`");
            assert_eq!(PolicySpec::parse(canon).unwrap(), spec, "reparse `{canon}`");
        }
    }

    #[test]
    fn rejects_malformed_policy_lines() {
        for bad in [
            "",
            "nope",
            "bouncer bogus=1",
            "bouncer histogram=sliding",
            "maxql limit=abc",
            "maxqwt wait=15ms per_type=1ms",
            "maxqwt per_type=",
            "bouncer+aa A=x",
            "always limit=1",
            "bouncer warmup=8 warmup=9",
            "bouncer warmup",
        ] {
            assert!(PolicySpec::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn builds_every_policy_kind() {
        let mut registry = TypeRegistry::new();
        registry.register("a");
        registry.register("b");
        let env = env_for(&registry);
        for line in [
            "bouncer",
            "bouncer+aa A=0.1",
            "bouncer+htu alpha=0.5",
            "maxql limit=10",
            "maxqwt wait=15ms",
            "maxqwt per_type=18ms,10ms,5ms",
            "acceptfraction util=0.8",
            "gatekeeper horizon=15ms",
            "always",
        ] {
            let spec = PolicySpec::parse(line).unwrap();
            let policy = spec.build(&env, 7);
            assert!(!policy.name().is_empty(), "{line}");
            assert!(policy.admit(crate::types::DEFAULT_TYPE, 0).is_accept(), "{line}");
        }
    }

    #[test]
    fn build_bouncer_exposes_the_concrete_policy() {
        let mut registry = TypeRegistry::new();
        registry.register("subject");
        let env = env_for(&registry);
        let spec = PolicySpec::parse("bouncer retention=16 warmup=8").unwrap();
        let b = spec.build_bouncer(&env).expect("bouncer family");
        assert!(b.admit(crate::types::DEFAULT_TYPE, 0).is_accept());
        assert!(PolicySpec::parse("maxql").unwrap().build_bouncer(&env).is_none());
    }
}
