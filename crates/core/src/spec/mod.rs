//! The unified scenario-spec layer: one declarative description of an
//! experiment — policy, workload, runtime, SLOs, seeds, run length — that
//! every consumer in the workspace (CLI, simulator studies, the liquid
//! cluster, examples) constructs through.
//!
//! # Format
//!
//! Scenarios are flat `key = value` text (`.scn` files), zero-dependency in
//! the spirit of the vendored JSONL writer. `#` starts a comment; keys may
//! not repeat. The keys:
//!
//! ```text
//! name     = fig06_policies          # required
//! seed     = 45232                   # base RNG seed (default 42)
//! runs     = 5                       # averaging runs (optional)
//! measured = 1500000                 # measured queries (optional)
//! warmup   = 100000                  # warm-up queries (optional)
//! slo.default = p50=18ms p90=50ms    # SLO table ("default" or a type name)
//! workload = paper_table1            # paper_table1 | liquid | custom
//! class.FAST = p=0.9 p50=4.5ms p90=12ms   # custom workloads only
//! runtime  = sim                     # sim | liquid
//! sim.parallelism = 100              # runtime sub-keys (see RuntimeSpec)
//! controller = budget step=0.25      # optional adaptive controller
//! policy         = bouncer           # unlabeled policy, or…
//! policy.MaxQL   = maxql limit=400   # …labeled policies, order preserved
//! param.allowances = 0.01 0.02 0.05  # named sweep lists for study benches
//! ```
//!
//! # Canonical form and content hash
//!
//! [`ScenarioSpec::render`] emits a canonical serialization (fixed key
//! order, normalized numbers and durations, defaults omitted), and
//! [`ScenarioSpec::content_hash`] is FNV-1a 64 over those bytes — so two
//! files that *mean* the same scenario hash identically regardless of
//! comment or ordering differences. The hash is stamped into `SimResult`,
//! JSONL event streams, and bench table headers, so every number in
//! `results/` names the exact scenario that produced it.

mod controller;
pub mod defaults;
pub mod kv;
mod policy;
mod runtime;
mod workload;

pub use controller::{ControllerSpec, LawKind};
pub use policy::{BouncerParams, HistogramSpec, PolicyEnv, PolicySpec, RuleSpec};
pub use runtime::{
    DisciplineSpec, LiquidSpec, RuntimeSpec, SimSpec, StrategySpec, TransportSpec,
};
pub use workload::{ClassSpec, WorkloadSpec};

use crate::slo::{Percentile, Slo, SloConfig};
use crate::slo_spec::SpecError;
use crate::types::TypeRegistry;
use bouncer_metrics::time::millis_f64;
use kv::{fmt_f64, fnv1a64, parse_duration_ms, render_duration_ms, split_pairs};
use runtime::{parse_f64_list, render_f64_list};

/// One line of the scenario's SLO table: targets for the `default` SLO or
/// for one named query type. Percentiles are kept in their `p50` notation
/// (as values in `(0, 100)`) so rendering is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEntrySpec {
    /// `"default"` or a registered type name.
    pub name: String,
    /// `(percentile, target_ms)` pairs, e.g. `(50.0, 18.0)`.
    pub targets: Vec<(f64, f64)>,
}

impl SloEntrySpec {
    fn parse(name: &str, value: &str) -> Result<SloEntrySpec, SpecError> {
        let mut targets = Vec::new();
        for tok in value.split_whitespace() {
            let (k, v) = tok.split_once('=').ok_or_else(|| {
                SpecError(format!("slo.{name}: expected pNN=duration, got `{tok}`"))
            })?;
            let pct: f64 = k
                .strip_prefix('p')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| {
                    SpecError(format!("slo.{name}: bad percentile `{k}` (use p50, p90, …)"))
                })?;
            if !(0.0 < pct && pct < 100.0) {
                return Err(SpecError(format!(
                    "slo.{name}: percentile must be in (0, 100), got `{k}`"
                )));
            }
            if targets.iter().any(|&(seen, _)| seen == pct) {
                return Err(SpecError(format!("slo.{name}: duplicate percentile `{k}`")));
            }
            targets.push((pct, parse_duration_ms(v)?));
        }
        if targets.is_empty() {
            return Err(SpecError(format!("slo.{name}: needs at least one target")));
        }
        Ok(SloEntrySpec {
            name: name.to_string(),
            targets,
        })
    }

    fn render_value(&self) -> String {
        let parts: Vec<String> = self
            .targets
            .iter()
            .map(|&(pct, ms)| format!("p{}={}", fmt_f64(pct), render_duration_ms(ms)))
            .collect();
        parts.join(" ")
    }

    fn slo(&self) -> Slo {
        self.targets.iter().fold(Slo::unbounded(), |slo, &(pct, ms)| {
            slo.with(Percentile::new(pct / 100.0), millis_f64(ms))
        })
    }
}

/// A complete declarative experiment: the only way experiments are
/// constructed anywhere in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (required; used in reports and table headers).
    pub name: String,
    /// Base RNG seed. Multi-run studies derive per-run seeds from it.
    pub seed: u64,
    /// Averaging runs for study benches (`None` = the run-mode default).
    pub runs: Option<u32>,
    /// Measured queries per run (`None` = the runner's default).
    pub measured: Option<u64>,
    /// Warm-up queries per run (`None` = the runner's default).
    pub warmup: Option<u64>,
    /// The SLO table; empty means the paper's uniform Table 2 targets.
    pub slos: Vec<SloEntrySpec>,
    /// The workload (query mix).
    pub workload: WorkloadSpec,
    /// Where the scenario runs (simulator or liquid cluster).
    pub runtime: RuntimeSpec,
    /// The optional adaptive controller closing the loop on the first
    /// policy's tunable parameter (`None` = static parameters; runners
    /// may also evaluate static variants of a controller scenario by
    /// ignoring this).
    pub controller: Option<ControllerSpec>,
    /// Policies under evaluation, `(label, spec)` in declaration order;
    /// the unlabeled `policy =` form gets an empty label.
    pub policies: Vec<(String, PolicySpec)>,
    /// Named numeric sweep lists (`param.<name>`), e.g. Table 4's
    /// allowances.
    pub params: Vec<(String, Vec<f64>)>,
    /// Named string sweep lists: a `param.<name>` whose first token is not
    /// a number, e.g. `param.transport = channels rings tcp`.
    pub sparams: Vec<(String, Vec<String>)>,
}

impl ScenarioSpec {
    /// The scenario equivalent of the CLI's flag defaults: paper workload,
    /// P = 100 simulator at 1.2× full load, uniform Table 2 SLOs, basic
    /// Bouncer, seed 42, 300 k measured / 50 k warm-up queries.
    pub fn cli_default() -> ScenarioSpec {
        ScenarioSpec {
            name: "cli".into(),
            seed: 42,
            runs: None,
            measured: Some(300_000),
            warmup: Some(50_000),
            slos: vec![SloEntrySpec {
                name: "default".into(),
                targets: vec![
                    (50.0, defaults::SLO_P50_MS),
                    (90.0, defaults::SLO_P90_MS),
                ],
            }],
            workload: WorkloadSpec::PaperTable1,
            runtime: RuntimeSpec::Sim(SimSpec {
                rate_factors: vec![defaults::CLI_RATE_FACTOR],
                ..SimSpec::default()
            }),
            controller: None,
            policies: vec![(String::new(), PolicySpec::Bouncer(BouncerParams::default()))],
            params: Vec::new(),
            sparams: Vec::new(),
        }
    }

    /// Parses a scenario from its text form. Key order in the file is
    /// free; the canonical form is what [`ScenarioSpec::render`] emits.
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        let pairs = split_pairs(text)?;
        let mut name: Option<String> = None;
        let mut seed: Option<u64> = None;
        let (mut runs, mut measured, mut warmup) = (None, None, None);
        let mut slos = Vec::new();
        let mut workload_kind: Option<String> = None;
        let mut classes = Vec::new();
        let mut runtime_kind: Option<String> = None;
        let mut runtime_keys: Vec<(String, String)> = Vec::new();
        let mut controller: Option<ControllerSpec> = None;
        let mut policies: Vec<(String, PolicySpec)> = Vec::new();
        let mut params: Vec<(String, Vec<f64>)> = Vec::new();
        let mut sparams: Vec<(String, Vec<String>)> = Vec::new();

        for (key, value) in &pairs {
            let (key, value) = (key.as_str(), value.as_str());
            match key {
                "name" => {
                    if value.is_empty() {
                        return Err(SpecError("`name` must not be empty".into()));
                    }
                    name = Some(value.to_string());
                }
                "seed" => {
                    seed = Some(value.parse().map_err(|_| {
                        SpecError(format!("`seed` must be an integer, got `{value}`"))
                    })?)
                }
                "runs" => {
                    let r: u32 = value.parse().map_err(|_| {
                        SpecError(format!("`runs` must be a positive integer, got `{value}`"))
                    })?;
                    if r == 0 {
                        return Err(SpecError("`runs` must be >= 1".into()));
                    }
                    runs = Some(r);
                }
                "measured" => {
                    measured = Some(value.parse().map_err(|_| {
                        SpecError(format!("`measured` must be an integer, got `{value}`"))
                    })?)
                }
                "warmup" => {
                    warmup = Some(value.parse().map_err(|_| {
                        SpecError(format!("`warmup` must be an integer, got `{value}`"))
                    })?)
                }
                "workload" => workload_kind = Some(value.to_string()),
                "runtime" => match value {
                    "sim" | "liquid" => runtime_kind = Some(value.to_string()),
                    other => {
                        return Err(SpecError(format!(
                            "`runtime` must be `sim` or `liquid`, got `{other}`"
                        )))
                    }
                },
                "controller" => controller = Some(ControllerSpec::parse(value)?),
                "policy" => policies.push((String::new(), PolicySpec::parse(value)?)),
                _ => {
                    if let Some(label) = key.strip_prefix("policy.") {
                        policies.push((label.to_string(), PolicySpec::parse(value)?));
                    } else if let Some(ty) = key.strip_prefix("slo.") {
                        slos.push(SloEntrySpec::parse(ty, value)?);
                    } else if let Some(class) = key.strip_prefix("class.") {
                        classes.push(ClassSpec::parse(class, value)?);
                    } else if let Some(param) = key.strip_prefix("param.") {
                        // A leading numeric token means a numeric sweep;
                        // anything else is a string sweep (sparams).
                        let first = value.split_whitespace().next();
                        match first {
                            None => {
                                return Err(SpecError(format!("`{key}` must not be empty")))
                            }
                            Some(tok) if tok.parse::<f64>().is_ok() => {
                                params.push((param.to_string(), parse_f64_list(key, value)?));
                            }
                            Some(_) => sparams.push((
                                param.to_string(),
                                value.split_whitespace().map(str::to_string).collect(),
                            )),
                        }
                    } else if key.starts_with("sim.") || key.starts_with("liquid.") {
                        runtime_keys.push((key.to_string(), value.to_string()));
                    } else {
                        return Err(SpecError(format!("unknown key `{key}`")));
                    }
                }
            }
        }

        let workload = match workload_kind.as_deref() {
            None | Some("paper_table1") => {
                if !classes.is_empty() {
                    return Err(SpecError(
                        "`class.<NAME>` lines require `workload = custom`".into(),
                    ));
                }
                WorkloadSpec::PaperTable1
            }
            Some("liquid") => {
                if !classes.is_empty() {
                    return Err(SpecError(
                        "`class.<NAME>` lines require `workload = custom`".into(),
                    ));
                }
                WorkloadSpec::Liquid
            }
            Some("custom") => WorkloadSpec::Custom(classes),
            Some(other) => {
                return Err(SpecError(format!(
                    "`workload` must be paper_table1, liquid, or custom, got `{other}`"
                )))
            }
        };
        workload.validate()?;

        let mut runtime = match runtime_kind.as_deref() {
            Some("liquid") => RuntimeSpec::Liquid(LiquidSpec::default()),
            _ => RuntimeSpec::Sim(SimSpec::default()),
        };
        for (key, value) in &runtime_keys {
            runtime.apply_key(key, value)?;
        }

        let mut labels: Vec<&str> = policies.iter().map(|(l, _)| l.as_str()).collect();
        labels.sort_unstable();
        if labels.windows(2).any(|w| w[0] == w[1]) {
            return Err(SpecError("duplicate policy label".into()));
        }

        Ok(ScenarioSpec {
            name: name.ok_or_else(|| SpecError("missing required key `name`".into()))?,
            seed: seed.unwrap_or(42),
            runs,
            measured,
            warmup,
            slos,
            workload,
            runtime,
            controller,
            policies,
            params,
            sparams,
        })
    }

    /// Reads and parses a `.scn` file.
    pub fn load(path: &std::path::Path) -> Result<ScenarioSpec, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
        ScenarioSpec::parse(&text).map_err(|e| SpecError(format!("{}: {e}", path.display())))
    }

    /// Renders the canonical serialization: fixed key order, normalized
    /// values, defaults omitted. `parse(render(x)) == x`.
    pub fn render(&self) -> String {
        let mut lines = Vec::new();
        lines.push(format!("name = {}", self.name));
        lines.push(format!("seed = {}", self.seed));
        if let Some(runs) = self.runs {
            lines.push(format!("runs = {runs}"));
        }
        if let Some(measured) = self.measured {
            lines.push(format!("measured = {measured}"));
        }
        if let Some(warmup) = self.warmup {
            lines.push(format!("warmup = {warmup}"));
        }
        for entry in &self.slos {
            lines.push(format!("slo.{} = {}", entry.name, entry.render_value()));
        }
        lines.push(format!("workload = {}", self.workload.kind_name()));
        for class in self.workload.classes() {
            lines.push(format!("class.{} = {}", class.name, class.render_value()));
        }
        self.runtime.render_lines(&mut lines);
        if let Some(controller) = &self.controller {
            lines.push(format!("controller = {}", controller.render()));
        }
        for (label, policy) in &self.policies {
            if label.is_empty() {
                lines.push(format!("policy = {}", policy.render()));
            } else {
                lines.push(format!("policy.{label} = {}", policy.render()));
            }
        }
        for (param, values) in &self.params {
            lines.push(format!("param.{param} = {}", render_f64_list(values)));
        }
        for (param, values) in &self.sparams {
            lines.push(format!("param.{param} = {}", values.join(" ")));
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// The stable content hash: FNV-1a 64 over the canonical rendering.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.render().as_bytes())
    }

    /// The content hash as it appears in reports, events, and headers.
    pub fn hash_hex(&self) -> String {
        kv::hash_hex(self.content_hash())
    }

    /// The `name (hash)` tag stamped into report lines and table headers.
    pub fn tag(&self) -> String {
        format!("{} {}", self.name, self.hash_hex())
    }

    /// Builds the SLO table against a populated registry. Entries name
    /// either `default` or a registered type; an empty table means the
    /// paper's uniform Table 2 targets.
    pub fn slos(&self, registry: &TypeRegistry) -> Result<SloConfig, SpecError> {
        if self.slos.is_empty() {
            let slo = Slo::p50_p90(
                millis_f64(defaults::SLO_P50_MS),
                millis_f64(defaults::SLO_P90_MS),
            );
            return Ok(SloConfig::uniform(registry, slo));
        }
        if self.slos.len() == 1 && self.slos[0].name == "default" {
            return Ok(SloConfig::uniform(registry, self.slos[0].slo()));
        }
        let mut builder = SloConfig::builder(registry);
        for entry in &self.slos {
            if entry.name == "default" {
                builder = builder.default_slo(entry.slo());
            } else {
                let ty = registry.resolve(&entry.name).ok_or_else(|| {
                    SpecError(format!("slo.{}: unknown query type", entry.name))
                })?;
                builder = builder.set(ty, entry.slo());
            }
        }
        Ok(builder.build())
    }

    /// Looks up a policy by label (`""` for the unlabeled `policy =` line).
    pub fn policy(&self, label: &str) -> Result<&PolicySpec, SpecError> {
        self.policies
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, p)| p)
            .ok_or_else(|| {
                SpecError(format!("scenario `{}` has no policy `{label}`", self.name))
            })
    }

    /// The first declared policy — the scenario's main subject.
    pub fn first_policy(&self) -> Result<&PolicySpec, SpecError> {
        self.policies
            .first()
            .map(|(_, p)| p)
            .ok_or_else(|| SpecError(format!("scenario `{}` declares no policy", self.name)))
    }

    /// Looks up a named numeric sweep list (`param.<name>`).
    pub fn param(&self, name: &str) -> Result<&[f64], SpecError> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
            .ok_or_else(|| {
                SpecError(format!("scenario `{}` has no param.{name}", self.name))
            })
    }

    /// Looks up a named string sweep list (a `param.<name>` whose values
    /// are not numbers, e.g. transport names).
    pub fn sparam(&self, name: &str) -> Result<&[String], SpecError> {
        self.sparams
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
            .ok_or_else(|| {
                SpecError(format!("scenario `{}` has no param.{name}", self.name))
            })
    }

    /// The sim runtime, or an error naming the scenario.
    pub fn sim(&self) -> Result<&SimSpec, SpecError> {
        self.runtime.as_sim().ok_or_else(|| {
            SpecError(format!("scenario `{}` is not a sim scenario", self.name))
        })
    }

    /// The liquid runtime, or an error naming the scenario.
    pub fn liquid(&self) -> Result<&LiquidSpec, SpecError> {
        self.runtime.as_liquid().ok_or_else(|| {
            SpecError(format!("scenario `{}` is not a liquid scenario", self.name))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bouncer_metrics::time::millis;

    const FIG06_STYLE: &str = "\
# Figure 6-style scenario.
name = fig06_policies
seed = 45232
slo.default = p50=18ms p90=50ms
workload = paper_table1
runtime = sim
policy.Bouncer = bouncer
policy.MaxQL(400) = maxql limit=400
policy.MaxQWT(15ms) = maxqwt wait=15ms
policy.AcceptFraction(95%) = acceptfraction util=0.95
";

    #[test]
    fn parses_a_figure_scenario_and_round_trips() {
        let spec = ScenarioSpec::parse(FIG06_STYLE).unwrap();
        assert_eq!(spec.name, "fig06_policies");
        assert_eq!(spec.seed, 45232);
        assert_eq!(spec.policies.len(), 4);
        assert_eq!(
            spec.policy("MaxQL(400)").unwrap(),
            &PolicySpec::MaxQl { limit: 400 }
        );
        let rendered = spec.render();
        let reparsed = ScenarioSpec::parse(&rendered).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn hash_ignores_comments_and_ordering() {
        let a = ScenarioSpec::parse(FIG06_STYLE).unwrap();
        let shuffled = "\
policy.Bouncer = bouncer
runtime = sim
seed = 45232
policy.MaxQL(400) = maxql limit=400
policy.MaxQWT(15ms) = maxqwt wait=15ms
name = fig06_policies
policy.AcceptFraction(95%) = acceptfraction util=0.95
slo.default = p50=18ms p90=50ms
workload = paper_table1
";
        let b = ScenarioSpec::parse(shuffled).unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.hash_hex().len(), 16);
        assert_eq!(a.tag(), format!("fig06_policies {}", a.hash_hex()));
        // A material change moves the hash.
        let mut c = a.clone();
        c.seed = 1;
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn custom_workload_and_params_round_trip() {
        let text = "\
name = fig03_starvation
seed = 11
slo.default = p50=18ms p90=50ms
workload = custom
class.FAST = p=0.9 p50=4.5ms p90=12ms
class.SLOW = p=0.1 p50=12.51ms p90=44.26ms
sim.rate_factors = 1.6
policy.basic = bouncer
policy.htu = bouncer+htu alpha=1
param.alphas = 0.1 0.5 1
";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.workload.classes().len(), 2);
        assert_eq!(spec.param("alphas").unwrap(), &[0.1, 0.5, 1.0]);
        assert_eq!(spec.sim().unwrap().rate_factors, vec![1.6]);
        assert!(spec.param("betas").is_err());
        assert!(spec.liquid().is_err());
        let reparsed = ScenarioSpec::parse(&spec.render()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn string_params_classify_render_and_round_trip() {
        let text = "\
name = datapath
runtime = liquid
policy = always
param.transport = channels rings tcp
param.batch = 0 1
";
        let spec = ScenarioSpec::parse(text).unwrap();
        // Non-numeric first token => string sweep; numeric => numeric sweep.
        assert_eq!(
            spec.sparam("transport").unwrap(),
            &["channels", "rings", "tcp"]
        );
        assert_eq!(spec.param("batch").unwrap(), &[0.0, 1.0]);
        assert!(spec.sparam("batch").is_err());
        assert!(spec.param("transport").is_err());
        let rendered = spec.render();
        assert!(rendered.contains("param.transport = channels rings tcp"));
        let reparsed = ScenarioSpec::parse(&rendered).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn slo_table_builds_default_and_per_type_targets() {
        let mut registry = TypeRegistry::new();
        let fast = registry.register("fast");
        let slow = registry.register("slow");
        let spec = ScenarioSpec::parse(
            "name = t\nslo.default = p50=18ms p90=50ms\nslo.slow = p50=30ms\npolicy = bouncer\n",
        )
        .unwrap();
        let slos = spec.slos(&registry).unwrap();
        assert_eq!(
            slos.slo_for(fast).target(Percentile::new(0.5)),
            Some(millis(18))
        );
        assert_eq!(
            slos.slo_for(slow).target(Percentile::new(0.5)),
            Some(millis(30))
        );
        // Unknown type names are an error.
        let bad = ScenarioSpec::parse("name = t\nslo.nope = p50=1ms\n").unwrap();
        assert!(bad.slos(&registry).is_err());
        // An empty table falls back to the paper's uniform targets.
        let empty = ScenarioSpec::parse("name = t\n").unwrap();
        assert_eq!(
            empty.slos(&registry).unwrap().slo_for(fast).target(Percentile::new(0.9)),
            Some(millis(50))
        );
    }

    #[test]
    fn rejects_unknown_and_inconsistent_keys() {
        for bad in [
            "name = x\nbogus = 1\n",
            "seed = 1\n",                                  // missing name
            "name = x\nworkload = nope\n",
            "name = x\nclass.A = p=1 p50=1ms p90=2ms\n",   // classes without custom
            "name = x\nworkload = custom\n",               // custom without classes
            "name = x\nruntime = sim\nliquid.shards = 4\n",
            "name = x\npolicy.A = maxql\npolicy.A = always\n",
            "name = x\nruns = 0\n",
            "name = x\nslo.default = p0=1ms\n",
            "name = x\nparam.sweep = \n",
            "name = x\ncontroller = pid\n",
            "name = x\ncontroller = aimd bogus=1\n",
        ] {
            assert!(ScenarioSpec::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn controller_key_round_trips_and_moves_the_hash() {
        let text = "\
name = adaptive
controller = budget target_attain=0.95 step=0.3
policy = bouncer+aa A=0.05
";
        let spec = ScenarioSpec::parse(text).unwrap();
        let ctrl = spec.controller.as_ref().expect("controller parsed");
        assert_eq!(ctrl.law, LawKind::Budget);
        assert_eq!(ctrl.target_attain, 0.95);
        let reparsed = ScenarioSpec::parse(&spec.render()).unwrap();
        assert_eq!(reparsed, spec);
        let mut static_variant = spec.clone();
        static_variant.controller = None;
        assert_ne!(spec.content_hash(), static_variant.content_hash());
    }

    #[test]
    fn cli_default_round_trips_and_is_stable() {
        let spec = ScenarioSpec::cli_default();
        let reparsed = ScenarioSpec::parse(&spec.render()).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(spec.first_policy().unwrap().kind_name(), "bouncer");
        assert_eq!(spec.sim().unwrap().rate_factors, vec![1.2]);
    }
}
