//! Declarative runtime specifications: the discrete-event simulator or the
//! mini-LIquid cluster, with the knobs each one exposes.

use crate::slo_spec::SpecError;
use crate::spec::defaults;
use crate::spec::kv::{fmt_f64, parse_duration_ms, render_duration_ms};

/// Queue discipline in spec form (`sim.discipline = fifo | priority:0,0,1 |
/// sjf`), mirroring the simulator's `SimDiscipline`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisciplineSpec {
    /// First-come, first-served (the paper's deployment).
    Fifo,
    /// Higher-priority types first; `priorities[TypeId::index()]`.
    Priority(Vec<u8>),
    /// Shortest processing time first (oracle SJF).
    ShortestJobFirst,
}

impl DisciplineSpec {
    fn parse(v: &str) -> Result<Self, SpecError> {
        if v == "fifo" {
            Ok(DisciplineSpec::Fifo)
        } else if v == "sjf" {
            Ok(DisciplineSpec::ShortestJobFirst)
        } else if let Some(list) = v.strip_prefix("priority:") {
            let priorities = list
                .split(',')
                .map(|p| {
                    p.parse()
                        .map_err(|_| SpecError(format!("bad priority level `{p}`")))
                })
                .collect::<Result<Vec<u8>, _>>()?;
            Ok(DisciplineSpec::Priority(priorities))
        } else {
            Err(SpecError(format!(
                "discipline must be `fifo`, `sjf`, or `priority:<levels>`, got `{v}`"
            )))
        }
    }

    fn render(&self) -> String {
        match self {
            DisciplineSpec::Fifo => "fifo".into(),
            DisciplineSpec::ShortestJobFirst => "sjf".into(),
            DisciplineSpec::Priority(levels) => {
                let list: Vec<String> = levels.iter().map(|l| l.to_string()).collect();
                format!("priority:{}", list.join(","))
            }
        }
    }
}

/// The simulator runtime (`runtime = sim`) and its `sim.*` keys.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Engine parallelism `P` (`sim.parallelism`).
    pub parallelism: u32,
    /// Offered-rate sweep as multiples of `QPS_full_load`
    /// (`sim.rate_factors`, space-separated).
    pub rate_factors: Vec<f64>,
    /// Absolute offered rate override, QPS (`sim.rate_qps`). When set, the
    /// sweep factors are ignored by single-point runners (the CLI).
    pub rate_qps: Option<f64>,
    /// Bounded-queue `L_limit` (`sim.queue_limit`); `None` = unbounded.
    pub queue_limit: Option<u64>,
    /// Queue discipline (`sim.discipline`).
    pub discipline: DisciplineSpec,
    /// Piecewise rate schedule as `offset:factor` pairs
    /// (`sim.rate_steps = 10s:1.5 20s:0.8`), offsets in simulated time.
    pub rate_steps: Vec<(f64, f64)>,
    /// Mid-run traffic-mix shift offset, milliseconds of simulated time
    /// (`sim.shift_at = 15s`). From this instant arrivals sample the
    /// classes' `pshift` proportions instead of `p` (see `ClassSpec`);
    /// without `pshift` columns the mix is unchanged.
    pub shift_at: Option<f64>,
}

impl Default for SimSpec {
    fn default() -> Self {
        Self {
            parallelism: defaults::PARALLELISM,
            rate_factors: defaults::SIM_RATE_FACTORS.to_vec(),
            rate_qps: None,
            queue_limit: None,
            discipline: DisciplineSpec::Fifo,
            rate_steps: Vec::new(),
            shift_at: None,
        }
    }
}

/// Broker→shard transport in spec form (`liquid.transport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportSpec {
    /// In-process shared-queue channels (canonical spelling `channels`;
    /// `inproc` is accepted as a legacy alias).
    Channels,
    /// Thread-per-core SPSC rings, in process.
    Rings,
    /// Loopback TCP.
    Tcp,
}

/// Broker→replica routing strategy in spec form (`liquid.strategy`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StrategySpec {
    /// Every sub-query goes to the shard's primary replica.
    #[default]
    PrimaryOnly,
    /// Route to the replica with the fewest in-flight sub-queries.
    LoadBalanced,
    /// Primary first, then a duplicate to a second replica after a
    /// quantile-based delay; first reply wins, the loser is cancelled.
    Hedged,
}

impl StrategySpec {
    /// The canonical spec spelling.
    pub fn render(self) -> &'static str {
        match self {
            StrategySpec::PrimaryOnly => "primary-only",
            StrategySpec::LoadBalanced => "load-balanced",
            StrategySpec::Hedged => "hedged",
        }
    }

    fn parse(value: &str) -> Result<Self, SpecError> {
        match value {
            "primary-only" => Ok(StrategySpec::PrimaryOnly),
            "load-balanced" => Ok(StrategySpec::LoadBalanced),
            "hedged" => Ok(StrategySpec::Hedged),
            other => Err(SpecError(format!(
                "liquid.strategy must be `primary-only`, `load-balanced`, or \
                 `hedged`, got `{other}`"
            ))),
        }
    }
}

/// The mini-LIquid cluster runtime (`runtime = liquid`) and its
/// `liquid.*` keys.
#[derive(Debug, Clone, PartialEq)]
pub struct LiquidSpec {
    /// Number of shard hosts (`liquid.shards`).
    pub shards: u32,
    /// Replicas per shard group (`liquid.replicas`); 1 = unreplicated.
    pub replicas: u32,
    /// Broker→replica routing strategy (`liquid.strategy`).
    pub strategy: StrategySpec,
    /// Number of broker hosts (`liquid.brokers`).
    pub brokers: u32,
    /// Broker→shard transport (`liquid.transport = channels | rings | tcp`).
    pub transport: TransportSpec,
    /// Coalesce per-round sub-queries into per-shard batches
    /// (`liquid.batch_fanout`).
    pub batch_fanout: bool,
    /// Shard-tier AcceptFraction threshold (`liquid.shard_max_utilization`).
    pub shard_max_utilization: f64,
    /// Traffic points as `label:factor` pairs, factors relative to measured
    /// saturation capacity (`liquid.rate_factors = 36K-analog:0.42 …`).
    pub rate_points: Vec<(String, f64)>,
    /// Synthetic graph vertex count (`liquid.graph_vertices`).
    pub graph_vertices: u32,
    /// Preferential-attachment edges added per vertex
    /// (`liquid.graph_edges_per_vertex`).
    pub graph_edges_per_vertex: u32,
}

impl Default for LiquidSpec {
    fn default() -> Self {
        Self {
            shards: 2,
            replicas: 1,
            strategy: StrategySpec::PrimaryOnly,
            brokers: 1,
            transport: TransportSpec::Channels,
            batch_fanout: true,
            shard_max_utilization: defaults::LIQUID_SHARD_MAX_UTILIZATION,
            rate_points: defaults::LIQUID_RATE_LABELS
                .iter()
                .zip(defaults::LIQUID_RATE_FACTORS)
                .map(|(&label, factor)| (label.to_string(), factor))
                .collect(),
            graph_vertices: 200_000,
            graph_edges_per_vertex: 10,
        }
    }
}

/// A serializable runtime choice: where the scenario runs.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeSpec {
    /// The discrete-event simulator (§5.3 studies).
    Sim(SimSpec),
    /// The mini-LIquid cluster (§5.4 studies).
    Liquid(LiquidSpec),
}

impl RuntimeSpec {
    /// The `runtime =` value naming this choice.
    pub fn kind_name(&self) -> &'static str {
        match self {
            RuntimeSpec::Sim(_) => "sim",
            RuntimeSpec::Liquid(_) => "liquid",
        }
    }

    /// The sim runtime, if that is the selected kind.
    pub fn as_sim(&self) -> Option<&SimSpec> {
        match self {
            RuntimeSpec::Sim(s) => Some(s),
            RuntimeSpec::Liquid(_) => None,
        }
    }

    /// The liquid runtime, if that is the selected kind.
    pub fn as_liquid(&self) -> Option<&LiquidSpec> {
        match self {
            RuntimeSpec::Liquid(l) => Some(l),
            RuntimeSpec::Sim(_) => None,
        }
    }

    /// Applies one `sim.<key> = value` or `liquid.<key> = value` line.
    pub fn apply_key(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        match (self, key.split_once('.')) {
            (RuntimeSpec::Sim(sim), Some(("sim", sub))) => sim.apply_key(sub, value),
            (RuntimeSpec::Liquid(liquid), Some(("liquid", sub))) => {
                liquid.apply_key(sub, value)
            }
            (rt, _) => Err(SpecError(format!(
                "key `{key}` does not apply to runtime `{}`",
                rt.kind_name()
            ))),
        }
    }

    /// Renders the `runtime =` line plus all non-default sub-keys, one
    /// rendered line per vector entry.
    pub fn render_lines(&self, out: &mut Vec<String>) {
        out.push(format!("runtime = {}", self.kind_name()));
        match self {
            RuntimeSpec::Sim(sim) => sim.render_lines(out),
            RuntimeSpec::Liquid(liquid) => liquid.render_lines(out),
        }
    }
}

impl SimSpec {
    fn apply_key(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        match key {
            "parallelism" => {
                self.parallelism = value.parse().map_err(|_| {
                    SpecError(format!("sim.parallelism must be a positive integer, got `{value}`"))
                })?;
                if self.parallelism == 0 {
                    return Err(SpecError("sim.parallelism must be >= 1".into()));
                }
            }
            "rate_factors" => {
                self.rate_factors = parse_f64_list("sim.rate_factors", value)?;
                if self.rate_factors.is_empty() {
                    return Err(SpecError("sim.rate_factors must not be empty".into()));
                }
            }
            "rate_qps" => {
                self.rate_qps = Some(parse_pos_f64("sim.rate_qps", value)?);
            }
            "queue_limit" => {
                self.queue_limit = Some(value.parse().map_err(|_| {
                    SpecError(format!("sim.queue_limit must be an integer, got `{value}`"))
                })?);
            }
            "discipline" => self.discipline = DisciplineSpec::parse(value)?,
            "rate_steps" => {
                self.rate_steps = value
                    .split_whitespace()
                    .map(|tok| {
                        let (at, factor) = tok.split_once(':').ok_or_else(|| {
                            SpecError(format!(
                                "sim.rate_steps entries are `offset:factor`, got `{tok}`"
                            ))
                        })?;
                        Ok((parse_duration_ms(at)?, parse_pos_f64("rate step factor", factor)?))
                    })
                    .collect::<Result<Vec<_>, SpecError>>()?;
            }
            "shift_at" => {
                self.shift_at = Some(parse_duration_ms(value)?);
            }
            other => {
                return Err(SpecError(format!(
                    "unknown key `sim.{other}` (parallelism, rate_factors, rate_qps, \
                     queue_limit, discipline, rate_steps, shift_at)"
                )))
            }
        }
        Ok(())
    }

    fn render_lines(&self, out: &mut Vec<String>) {
        let d = SimSpec::default();
        if self.parallelism != d.parallelism {
            out.push(format!("sim.parallelism = {}", self.parallelism));
        }
        if self.rate_factors != d.rate_factors {
            out.push(format!(
                "sim.rate_factors = {}",
                render_f64_list(&self.rate_factors)
            ));
        }
        if let Some(qps) = self.rate_qps {
            out.push(format!("sim.rate_qps = {}", fmt_f64(qps)));
        }
        if let Some(limit) = self.queue_limit {
            out.push(format!("sim.queue_limit = {limit}"));
        }
        if self.discipline != d.discipline {
            out.push(format!("sim.discipline = {}", self.discipline.render()));
        }
        if !self.rate_steps.is_empty() {
            let steps: Vec<String> = self
                .rate_steps
                .iter()
                .map(|&(at_ms, factor)| {
                    format!("{}:{}", render_duration_ms(at_ms), fmt_f64(factor))
                })
                .collect();
            out.push(format!("sim.rate_steps = {}", steps.join(" ")));
        }
        if let Some(at_ms) = self.shift_at {
            out.push(format!("sim.shift_at = {}", render_duration_ms(at_ms)));
        }
    }
}

impl LiquidSpec {
    fn apply_key(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        match key {
            "shards" => self.shards = parse_pos_u32("liquid.shards", value)?,
            "replicas" => self.replicas = parse_pos_u32("liquid.replicas", value)?,
            "strategy" => self.strategy = StrategySpec::parse(value)?,
            "brokers" => self.brokers = parse_pos_u32("liquid.brokers", value)?,
            "transport" => {
                self.transport = match value {
                    "channels" | "inproc" => TransportSpec::Channels,
                    "rings" => TransportSpec::Rings,
                    "tcp" => TransportSpec::Tcp,
                    other => {
                        return Err(SpecError(format!(
                            "liquid.transport must be `channels`, `rings`, or `tcp` \
                             (`inproc` is a legacy alias for `channels`), got `{other}`"
                        )))
                    }
                }
            }
            "batch_fanout" => {
                self.batch_fanout = match value {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(SpecError(format!(
                            "liquid.batch_fanout must be `true` or `false`, got `{other}`"
                        )))
                    }
                }
            }
            "shard_max_utilization" => {
                self.shard_max_utilization =
                    parse_pos_f64("liquid.shard_max_utilization", value)?;
            }
            "rate_factors" => {
                self.rate_points = value
                    .split_whitespace()
                    .map(|tok| {
                        let (label, factor) = tok.split_once(':').ok_or_else(|| {
                            SpecError(format!(
                                "liquid.rate_factors entries are `label:factor`, got `{tok}`"
                            ))
                        })?;
                        Ok((
                            label.to_string(),
                            parse_pos_f64("liquid rate factor", factor)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, SpecError>>()?;
                if self.rate_points.is_empty() {
                    return Err(SpecError("liquid.rate_factors must not be empty".into()));
                }
            }
            "graph_vertices" => {
                self.graph_vertices = parse_pos_u32("liquid.graph_vertices", value)?;
            }
            "graph_edges_per_vertex" => {
                self.graph_edges_per_vertex =
                    parse_pos_u32("liquid.graph_edges_per_vertex", value)?;
            }
            other => {
                return Err(SpecError(format!(
                    "unknown key `liquid.{other}` (shards, replicas, strategy, \
                     brokers, transport, batch_fanout, shard_max_utilization, \
                     rate_factors, graph_vertices, graph_edges_per_vertex)"
                )))
            }
        }
        Ok(())
    }

    fn render_lines(&self, out: &mut Vec<String>) {
        let d = LiquidSpec::default();
        if self.shards != d.shards {
            out.push(format!("liquid.shards = {}", self.shards));
        }
        if self.replicas != d.replicas {
            out.push(format!("liquid.replicas = {}", self.replicas));
        }
        if self.strategy != d.strategy {
            out.push(format!("liquid.strategy = {}", self.strategy.render()));
        }
        if self.brokers != d.brokers {
            out.push(format!("liquid.brokers = {}", self.brokers));
        }
        if self.transport != d.transport {
            out.push(
                match self.transport {
                    TransportSpec::Channels => "liquid.transport = channels",
                    TransportSpec::Rings => "liquid.transport = rings",
                    TransportSpec::Tcp => "liquid.transport = tcp",
                }
                .to_string(),
            );
        }
        if self.batch_fanout != d.batch_fanout {
            out.push(format!("liquid.batch_fanout = {}", self.batch_fanout));
        }
        if self.shard_max_utilization != d.shard_max_utilization {
            out.push(format!(
                "liquid.shard_max_utilization = {}",
                fmt_f64(self.shard_max_utilization)
            ));
        }
        if self.rate_points != d.rate_points {
            let points: Vec<String> = self
                .rate_points
                .iter()
                .map(|(label, factor)| format!("{label}:{}", fmt_f64(*factor)))
                .collect();
            out.push(format!("liquid.rate_factors = {}", points.join(" ")));
        }
        if self.graph_vertices != d.graph_vertices {
            out.push(format!("liquid.graph_vertices = {}", self.graph_vertices));
        }
        if self.graph_edges_per_vertex != d.graph_edges_per_vertex {
            out.push(format!(
                "liquid.graph_edges_per_vertex = {}",
                self.graph_edges_per_vertex
            ));
        }
    }
}

pub(crate) fn parse_f64_list(key: &str, value: &str) -> Result<Vec<f64>, SpecError> {
    value
        .split_whitespace()
        .map(|tok| {
            let v: f64 = tok
                .parse()
                .map_err(|_| SpecError(format!("`{key}`: bad number `{tok}`")))?;
            if !v.is_finite() {
                return Err(SpecError(format!("`{key}`: number must be finite")));
            }
            Ok(v)
        })
        .collect()
}

pub(crate) fn render_f64_list(values: &[f64]) -> String {
    let rendered: Vec<String> = values.iter().map(|&v| fmt_f64(v)).collect();
    rendered.join(" ")
}

fn parse_pos_f64(key: &str, value: &str) -> Result<f64, SpecError> {
    let v: f64 = value
        .parse()
        .map_err(|_| SpecError(format!("`{key}` must be a number, got `{value}`")))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(SpecError(format!("`{key}` must be > 0, got `{value}`")));
    }
    Ok(v)
}

fn parse_pos_u32(key: &str, value: &str) -> Result<u32, SpecError> {
    let v: u32 = value
        .parse()
        .map_err(|_| SpecError(format!("`{key}` must be a positive integer, got `{value}`")))?;
    if v == 0 {
        return Err(SpecError(format!("`{key}` must be >= 1")));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_keys_round_trip() {
        let mut rt = RuntimeSpec::Sim(SimSpec::default());
        for (k, v) in [
            ("sim.parallelism", "8"),
            ("sim.rate_factors", "1.2 1.4"),
            ("sim.queue_limit", "400"),
            ("sim.discipline", "priority:0,0,0,1,2"),
            ("sim.rate_steps", "10s:1.5 20s:0.8"),
            ("sim.shift_at", "15s"),
        ] {
            rt.apply_key(k, v).unwrap_or_else(|e| panic!("{k}: {e}"));
        }
        let mut lines = Vec::new();
        rt.render_lines(&mut lines);
        assert_eq!(
            lines,
            vec![
                "runtime = sim",
                "sim.parallelism = 8",
                "sim.rate_factors = 1.2 1.4",
                "sim.queue_limit = 400",
                "sim.discipline = priority:0,0,0,1,2",
                "sim.rate_steps = 10s:1.5 20s:0.8",
                "sim.shift_at = 15s",
            ]
        );
        // Re-applying the rendered keys reproduces the same spec.
        let mut rt2 = RuntimeSpec::Sim(SimSpec::default());
        for line in &lines[1..] {
            let (k, v) = line.split_once(" = ").unwrap();
            rt2.apply_key(k, v).unwrap();
        }
        assert_eq!(rt, rt2);
    }

    #[test]
    fn liquid_keys_round_trip() {
        let mut rt = RuntimeSpec::Liquid(LiquidSpec::default());
        for (k, v) in [
            ("liquid.shards", "4"),
            ("liquid.replicas", "2"),
            ("liquid.strategy", "hedged"),
            ("liquid.transport", "tcp"),
            ("liquid.batch_fanout", "false"),
            ("liquid.rate_factors", "low:0.5 high:1.5"),
            ("liquid.graph_vertices", "1000000"),
            ("liquid.graph_edges_per_vertex", "4"),
        ] {
            rt.apply_key(k, v).unwrap_or_else(|e| panic!("{k}: {e}"));
        }
        let liquid = rt.as_liquid().unwrap();
        assert_eq!(liquid.shards, 4);
        assert_eq!(liquid.replicas, 2);
        assert_eq!(liquid.strategy, StrategySpec::Hedged);
        assert_eq!(liquid.transport, TransportSpec::Tcp);
        assert!(!liquid.batch_fanout);
        assert_eq!(
            liquid.rate_points,
            vec![("low".to_string(), 0.5), ("high".to_string(), 1.5)]
        );
        assert_eq!(liquid.graph_vertices, 1_000_000);
        assert_eq!(liquid.graph_edges_per_vertex, 4);
        // Non-default graph keys render, and the rendered keys re-apply to
        // reproduce the same spec.
        let mut lines = Vec::new();
        rt.render_lines(&mut lines);
        assert!(lines.contains(&"liquid.graph_vertices = 1000000".to_string()));
        assert!(lines.contains(&"liquid.graph_edges_per_vertex = 4".to_string()));
        let mut rt2 = RuntimeSpec::Liquid(LiquidSpec::default());
        for line in &lines[1..] {
            let (k, v) = line.split_once(" = ").unwrap();
            rt2.apply_key(k, v).unwrap();
        }
        assert_eq!(rt, rt2);
    }

    #[test]
    fn liquid_transport_spellings_and_render() {
        let mut rt = RuntimeSpec::Liquid(LiquidSpec::default());
        // Canonical spellings, plus the legacy `inproc` alias.
        for (spelling, want) in [
            ("channels", TransportSpec::Channels),
            ("inproc", TransportSpec::Channels),
            ("rings", TransportSpec::Rings),
            ("tcp", TransportSpec::Tcp),
        ] {
            rt.apply_key("liquid.transport", spelling).unwrap();
            assert_eq!(rt.as_liquid().unwrap().transport, want, "{spelling}");
        }
        // Channels is the default, so it renders no transport line; the
        // others render their canonical spelling (never `inproc`).
        let lines_of = |spec: TransportSpec| {
            let rt = RuntimeSpec::Liquid(LiquidSpec {
                transport: spec,
                ..LiquidSpec::default()
            });
            let mut lines = Vec::new();
            rt.render_lines(&mut lines);
            lines
        };
        assert!(lines_of(TransportSpec::Channels)
            .iter()
            .all(|l| !l.contains("transport")));
        assert!(lines_of(TransportSpec::Rings).contains(&"liquid.transport = rings".to_string()));
        assert!(lines_of(TransportSpec::Tcp).contains(&"liquid.transport = tcp".to_string()));
    }

    #[test]
    fn rejects_mismatched_and_unknown_keys() {
        let mut sim = RuntimeSpec::Sim(SimSpec::default());
        assert!(sim.apply_key("liquid.shards", "4").is_err());
        assert!(sim.apply_key("sim.bogus", "1").is_err());
        assert!(sim.apply_key("sim.parallelism", "0").is_err());
        assert!(sim.apply_key("sim.discipline", "lifo").is_err());
        let mut liquid = RuntimeSpec::Liquid(LiquidSpec::default());
        assert!(liquid.apply_key("sim.parallelism", "8").is_err());
        assert!(liquid.apply_key("liquid.transport", "carrier-pigeon").is_err());
        assert!(liquid.apply_key("liquid.replicas", "0").is_err());
        assert!(liquid.apply_key("liquid.strategy", "round-robin").is_err());
        // The unknown-key message advertises the replica keys.
        let err = liquid.apply_key("liquid.bogus", "1").unwrap_err();
        assert!(err.to_string().contains("replicas"), "{err}");
        assert!(err.to_string().contains("strategy"), "{err}");
    }

    #[test]
    fn liquid_strategy_spellings_and_render() {
        let mut rt = RuntimeSpec::Liquid(LiquidSpec::default());
        for (spelling, want) in [
            ("primary-only", StrategySpec::PrimaryOnly),
            ("load-balanced", StrategySpec::LoadBalanced),
            ("hedged", StrategySpec::Hedged),
        ] {
            rt.apply_key("liquid.strategy", spelling).unwrap();
            assert_eq!(rt.as_liquid().unwrap().strategy, want, "{spelling}");
            assert_eq!(want.render(), spelling);
        }
        // Defaults (replicas = 1, primary-only) render no lines; non-default
        // values render canonically.
        let mut lines = Vec::new();
        RuntimeSpec::Liquid(LiquidSpec::default()).render_lines(&mut lines);
        assert!(lines
            .iter()
            .all(|l| !l.contains("replicas") && !l.contains("strategy")));
        let mut lines = Vec::new();
        RuntimeSpec::Liquid(LiquidSpec {
            replicas: 3,
            strategy: StrategySpec::LoadBalanced,
            ..LiquidSpec::default()
        })
        .render_lines(&mut lines);
        assert!(lines.contains(&"liquid.replicas = 3".to_string()));
        assert!(lines.contains(&"liquid.strategy = load-balanced".to_string()));
    }
}
