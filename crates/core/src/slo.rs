//! Latency service level objectives on percentile response times.
//!
//! "These latency SLOs are typically defined in terms of percentiles (e.g.,
//! p50 = 10 ms and p90 = 60 ms), and having separate SLOs for different
//! classes of queries is common." (§1)
//!
//! The paper's formulation uses p50 and p90 but notes it "can be easily
//! modified to support SLOs with other percentile response times (e.g. p99)
//! in lieu of or in addition to p50 and p90" (§3); an [`Slo`] here is an
//! arbitrary small set of `(percentile, target)` pairs and Algorithm 1's
//! disjunction runs over all of them.

use bouncer_metrics::time::{as_millis_f64, Nanos};

use crate::types::{TypeId, TypeRegistry, DEFAULT_TYPE};

/// A percentile in the open interval (0, 1), e.g. `0.5` for p50.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentile(f64);

impl Percentile {
    /// The median, p50.
    pub const P50: Percentile = Percentile(0.50);
    /// p90.
    pub const P90: Percentile = Percentile(0.90);
    /// p95.
    pub const P95: Percentile = Percentile(0.95);
    /// p99.
    pub const P99: Percentile = Percentile(0.99);

    /// Creates a percentile from a quantile in (0, 1).
    ///
    /// # Panics
    /// Panics if `q` is not strictly between 0 and 1.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "percentile must be in (0,1), got {q}");
        Self(q)
    }

    /// The quantile as a fraction in (0, 1).
    #[inline]
    pub fn quantile(self) -> f64 {
        self.0
    }
}

impl std::fmt::Display for Percentile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{:.0}", self.0 * 100.0)
    }
}

/// A latency SLO: one or more percentile response-time targets, all of which
/// a query class is expected to meet.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    targets: Vec<(Percentile, Nanos)>,
}

impl Slo {
    /// An SLO with no targets (never rejects on its own). Mostly useful as a
    /// permissive default while onboarding new query types (Appendix B.2).
    pub fn unbounded() -> Self {
        Self {
            targets: Vec::new(),
        }
    }

    /// Builder-style: adds a percentile target.
    #[must_use]
    pub fn with(mut self, p: Percentile, target: Nanos) -> Self {
        self.targets.push((p, target));
        self
    }

    /// The paper's common shape: `{p50 = a, p90 = b}`.
    pub fn p50_p90(p50: Nanos, p90: Nanos) -> Self {
        Self::unbounded()
            .with(Percentile::P50, p50)
            .with(Percentile::P90, p90)
    }

    /// A single-percentile SLO.
    pub fn single(p: Percentile, target: Nanos) -> Self {
        Self::unbounded().with(p, target)
    }

    /// The `(percentile, target)` pairs of this SLO.
    #[inline]
    pub fn targets(&self) -> &[(Percentile, Nanos)] {
        &self.targets
    }

    /// The target for an exact percentile, if present.
    pub fn target(&self, p: Percentile) -> Option<Nanos> {
        self.targets
            .iter()
            .find(|(tp, _)| (tp.quantile() - p.quantile()).abs() < 1e-9)
            .map(|&(_, t)| t)
    }
}

impl std::fmt::Display for Slo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (p, t)) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}={:.1}ms", as_millis_f64(*t))?;
        }
        write!(f, "}}")
    }
}

/// Per-query-type SLO assignment, with the `default` type's SLO doubling as
/// the fallback for types without an explicit setting.
///
/// "Multiple query types often share the same SLO … operators can establish a
/// manageable sized set of SLOs and assign each SLO to multiple query types"
/// (Appendix B.2) — `SloConfig` clones are cheap relative to configuration
/// time, so sharing is just assigning the same `Slo` value.
#[derive(Debug, Clone)]
pub struct SloConfig {
    per_type: Vec<Slo>,
}

impl SloConfig {
    /// Starts building an SLO configuration for the types in `registry`.
    pub fn builder(registry: &TypeRegistry) -> SloConfigBuilder {
        SloConfigBuilder {
            n_types: registry.len(),
            default_slo: Slo::unbounded(),
            per_type: vec![None; registry.len()],
        }
    }

    /// A uniform configuration: every type (including `default`) gets `slo`.
    pub fn uniform(registry: &TypeRegistry, slo: Slo) -> Self {
        Self {
            per_type: vec![slo; registry.len()],
        }
    }

    /// The SLO that applies to `ty`.
    #[inline]
    pub fn slo_for(&self, ty: TypeId) -> &Slo {
        &self.per_type[ty.index()]
    }

    /// The SLO of the `default` catch-all type, used during warm-up
    /// (Appendix A).
    #[inline]
    pub fn default_slo(&self) -> &Slo {
        &self.per_type[DEFAULT_TYPE.index()]
    }

    /// Number of types covered.
    #[inline]
    pub fn n_types(&self) -> usize {
        self.per_type.len()
    }
}

/// Builder for [`SloConfig`].
#[derive(Debug)]
pub struct SloConfigBuilder {
    n_types: usize,
    default_slo: Slo,
    per_type: Vec<Option<Slo>>,
}

impl SloConfigBuilder {
    /// Sets the SLO of the `default` type, which is also the fallback for
    /// registered types without an explicit SLO.
    #[must_use]
    pub fn default_slo(mut self, slo: Slo) -> Self {
        self.default_slo = slo;
        self
    }

    /// Sets the SLO for a specific type.
    #[must_use]
    pub fn set(mut self, ty: TypeId, slo: Slo) -> Self {
        self.per_type[ty.index()] = Some(slo);
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SloConfig {
        let default_slo = self.default_slo;
        let mut per_type: Vec<Slo> = self
            .per_type
            .into_iter()
            .map(|s| s.unwrap_or_else(|| default_slo.clone()))
            .collect();
        per_type[DEFAULT_TYPE.index()] = default_slo;
        debug_assert_eq!(per_type.len(), self.n_types);
        SloConfig { per_type }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bouncer_metrics::time::millis;

    #[test]
    fn slo_targets_and_lookup() {
        let slo = Slo::p50_p90(millis(18), millis(50));
        assert_eq!(slo.target(Percentile::P50), Some(millis(18)));
        assert_eq!(slo.target(Percentile::P90), Some(millis(50)));
        assert_eq!(slo.target(Percentile::P99), None);
        assert_eq!(slo.targets().len(), 2);
    }

    #[test]
    fn slo_supports_arbitrary_percentiles() {
        let slo = Slo::unbounded()
            .with(Percentile::P99, millis(100))
            .with(Percentile::new(0.999), millis(500));
        assert_eq!(slo.targets().len(), 2);
        assert_eq!(slo.target(Percentile::P99), Some(millis(100)));
    }

    #[test]
    #[should_panic(expected = "percentile must be in (0,1)")]
    fn percentile_rejects_out_of_range() {
        let _ = Percentile::new(1.0);
    }

    #[test]
    fn config_falls_back_to_default() {
        let mut reg = TypeRegistry::new();
        let fast = reg.register("Fast");
        let slow = reg.register("Slow");
        let cfg = SloConfig::builder(&reg)
            .default_slo(Slo::p50_p90(millis(30), millis(400)))
            .set(fast, Slo::p50_p90(millis(10), millis(90)))
            .build();
        assert_eq!(cfg.slo_for(fast).target(Percentile::P50), Some(millis(10)));
        // Slow was never set: falls back to the default SLO.
        assert_eq!(cfg.slo_for(slow).target(Percentile::P50), Some(millis(30)));
        assert_eq!(cfg.default_slo().target(Percentile::P90), Some(millis(400)));
        assert_eq!(cfg.n_types(), 3);
    }

    #[test]
    fn uniform_config_covers_all_types() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A");
        let cfg = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
        assert_eq!(cfg.slo_for(a), cfg.default_slo());
    }

    #[test]
    fn display_formats_readably() {
        let slo = Slo::p50_p90(millis(18), millis(50));
        assert_eq!(slo.to_string(), "{p50=18.0ms, p90=50.0ms}");
        assert_eq!(Percentile::P90.to_string(), "p90");
    }
}
