//! Query types and their registry.
//!
//! "We assume that every request includes a short string indicating the type
//! of the query it carries (e.g., part of the REST URL endpoint's path or the
//! name of a datalog-like rule)." (§3) The policy configuration names the
//! recognized types; `default` is the catch-all for everything else.
//!
//! Strings are interned once, at configuration time, into dense [`TypeId`]s
//! so every hot-path structure is a flat array indexed by type — no string
//! hashing on the per-query decision path.

use std::collections::HashMap;

/// Dense identifier of a query type. `TypeId(0)` is always the `default`
/// catch-all type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub(crate) u32);

/// The catch-all `default` query type (§3): queries whose type string is not
/// recognized resolve to it, and its SLO doubles as the warm-up SLO during
/// cold starts (Appendix A).
pub const DEFAULT_TYPE: TypeId = TypeId(0);

/// Name under which the catch-all type is registered.
pub const DEFAULT_TYPE_NAME: &str = "default";

impl TypeId {
    /// The dense index of this type, suitable for indexing per-type arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TypeId` from a dense index.
    ///
    /// Prefer resolving through a [`TypeRegistry`]; this constructor exists
    /// for simulators and experiment harnesses that address types
    /// positionally (e.g. iterating a mix's classes).
    #[inline]
    pub const fn from_index(index: u32) -> Self {
        TypeId(index)
    }
}

/// Interns query-type strings into dense [`TypeId`]s.
///
/// Built once at configuration time; lookups afterwards are read-only and the
/// registry is shared freely across threads.
///
/// ```
/// use bouncer_core::types::{TypeRegistry, DEFAULT_TYPE};
///
/// let mut registry = TypeRegistry::new();
/// let friends = registry.register("GetFriends");
/// assert_eq!(registry.resolve("GetFriends"), Some(friends));
/// // Unrecognized type strings fall back to the catch-all `default` (§3).
/// assert_eq!(registry.resolve_or_default("BrandNewQuery"), DEFAULT_TYPE);
/// ```
#[derive(Debug, Clone)]
pub struct TypeRegistry {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl TypeRegistry {
    /// Creates a registry containing only the `default` type.
    pub fn new() -> Self {
        let mut r = Self {
            names: Vec::new(),
            index: HashMap::new(),
        };
        let id = r.register(DEFAULT_TYPE_NAME);
        debug_assert_eq!(id, DEFAULT_TYPE);
        r
    }

    /// Registers a query type, returning its id. Registering an existing
    /// name returns the previously assigned id.
    pub fn register(&mut self, name: &str) -> TypeId {
        if let Some(&id) = self.index.get(name) {
            return TypeId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        TypeId(id)
    }

    /// Looks up a registered type by name.
    pub fn resolve(&self, name: &str) -> Option<TypeId> {
        self.index.get(name).copied().map(TypeId)
    }

    /// Looks up a type by name, falling back to [`DEFAULT_TYPE`] — the
    /// behavior a server applies to requests with unrecognized type strings.
    #[inline]
    pub fn resolve_or_default(&self, name: &str) -> TypeId {
        self.resolve(name).unwrap_or(DEFAULT_TYPE)
    }

    /// The name of a type id.
    pub fn name(&self, id: TypeId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered types, including `default`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always `false`: the `default` type exists from construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TypeId(i as u32), n.as_str()))
    }
}

impl Default for TypeRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_type_is_id_zero() {
        let r = TypeRegistry::new();
        assert_eq!(r.resolve(DEFAULT_TYPE_NAME), Some(DEFAULT_TYPE));
        assert_eq!(r.len(), 1);
        assert_eq!(r.name(DEFAULT_TYPE), "default");
    }

    #[test]
    fn register_is_idempotent() {
        let mut r = TypeRegistry::new();
        let a = r.register("GetFriends");
        let b = r.register("GetFriends");
        assert_eq!(a, b);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut r = TypeRegistry::new();
        let a = r.register("A");
        let b = r.register("B");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        let collected: Vec<_> = r.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, ["default", "A", "B"]);
    }

    #[test]
    fn unknown_names_resolve_to_default() {
        let r = TypeRegistry::new();
        assert_eq!(r.resolve("nope"), None);
        assert_eq!(r.resolve_or_default("nope"), DEFAULT_TYPE);
    }
}
