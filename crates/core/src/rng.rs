//! A tiny lock-free random number generator for probabilistic admission
//! decisions.
//!
//! Both starvation-avoidance strategies (`rand() < A` in Algorithm 2,
//! `rand() < p` in Algorithm 3) and AcceptFraction's probabilistic rejection
//! draw a uniform number on the per-query decision path. A mutex-guarded RNG
//! would serialize admission across engine threads, so we use SplitMix64
//! driven by an atomic counter: each draw is one `fetch_add` plus a few
//! multiplications, wait-free and deterministic for a given seed and draw
//! order (which makes single-threaded simulation runs reproducible).

use std::sync::atomic::{AtomicU64, Ordering};

/// Weyl-sequence increment (the golden-ratio constant used by SplitMix64).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A wait-free, thread-safe uniform random source.
#[derive(Debug)]
pub struct AtomicRng {
    state: AtomicU64,
}

impl AtomicRng {
    /// Creates a generator from a seed. Equal seeds yield equal sequences
    /// (per draw order).
    pub fn new(seed: u64) -> Self {
        Self {
            state: AtomicU64::new(seed),
        }
    }

    /// Next pseudo-random `u64` (SplitMix64 output function).
    #[inline]
    pub fn next_u64(&self) -> u64 {
        let mut z = self
            .state
            .fetch_add(GOLDEN_GAMMA, Ordering::Relaxed)
            .wrapping_add(GOLDEN_GAMMA);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&self) -> f64 {
        // 53 top bits -> uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = AtomicRng::new(42);
        let b = AtomicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = AtomicRng::new(1);
        let b = AtomicRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let rng = AtomicRng::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let rng = AtomicRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.05)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate={rate}");
    }

    #[test]
    fn chance_extremes() {
        let rng = AtomicRng::new(3);
        assert!(!(0..1000).any(|_| rng.chance(0.0)));
        assert!((0..1000).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn concurrent_draws_do_not_repeat_wholesale() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let rng = Arc::new(AtomicRng::new(9));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rng = Arc::clone(&rng);
                std::thread::spawn(move || (0..10_000).map(|_| rng.next_u64()).collect::<Vec<_>>())
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // fetch_add hands every thread a distinct state, so values are
        // (overwhelmingly) unique.
        assert!(all.len() > 39_990);
    }
}
