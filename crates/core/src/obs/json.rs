//! A minimal JSON parser, enough to validate and query the JSONL event
//! log without external dependencies. Accepts the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null);
//! numbers are held as `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is not preserved.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(
                            char::from_u32(code).ok_or(format!("bad \\u{hex} escape"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-2.5e2").unwrap(), JsonValue::Number(-250.0));
        assert_eq!(
            parse_json("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a": [1, {"b": "x"}, null], "c": false}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| match a {
                JsonValue::Array(items) => items[1].get("b").and_then(JsonValue::as_str),
                _ => None,
            }),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn u64_conversion_is_strict() {
        assert_eq!(parse_json("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse_json("7.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"open").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn handles_unicode_text() {
        let v = parse_json("\"héllo — ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — ✓"));
    }
}
