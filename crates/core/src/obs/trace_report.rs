//! Trace reconstruction and the Fig. 13-style latency breakdown.
//!
//! Consumes the JSONL span records emitted by
//! [`trace`](super::trace), reassembles each trace's span tree, walks the
//! **critical path** (a fan-out round is as slow as its straggler shard),
//! and attributes every query's end-to-end response time to components:
//! admission, broker queue, shard queue, shard service, transport,
//! aggregation, broker compute, and a residual. Per-trace breakdowns are
//! aggregated at p50/p95/p99 into the "where the milliseconds went"
//! report the CLI's `trace-report` subcommand prints — the tool that makes
//! the paper's §5.4 diagnosis (shard-tier queueing masquerading as rising
//! processing time) a one-command observation.
//!
//! By construction, the per-trace components sum to the root span's
//! duration exactly: each structural level contributes its own residual
//! (`transport` inside a round, `broker_compute` inside the service span,
//! `other` under the root), so nothing is double-counted or lost.

use std::collections::HashMap;
use std::fmt::Write as _;

use bouncer_metrics::Nanos;

use super::json::{parse_json, JsonValue};

/// One span, as parsed back from a JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace the span belongs to.
    pub trace: u64,
    /// The span's own id.
    pub span: u64,
    /// The parent span id, absent on roots.
    pub parent: Option<u64>,
    /// The span kind label (`query`, `round`, `shard_service`, ...).
    pub kind: String,
    /// The fan-out round index, on round-scoped spans.
    pub round: Option<u16>,
    /// The shard index, on shard-scoped spans.
    pub shard: Option<u16>,
    /// Span open time.
    pub start: Nanos,
    /// Span close time.
    pub end: Nanos,
    /// Root status label (`ok`, `rejected`, `expired`, `failed`).
    pub status: String,
    /// The query type's dense index, when the emitter knew it.
    pub ty: Option<u64>,
}

impl SpanRecord {
    /// The span's duration.
    pub fn dur(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| x.as_u64())
}

/// Parses span records out of a JSONL event stream.
///
/// Non-span events (the lifecycle and policy records sharing the file) are
/// skipped; a line that is not valid JSON, or a span line missing a
/// required field, is an error.
pub fn parse_spans(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("event").and_then(|e| e.as_str()) != Some("span") {
            continue;
        }
        let req = |key: &str| {
            field_u64(&v, key).ok_or_else(|| format!("line {}: span missing `{key}`", i + 1))
        };
        out.push(SpanRecord {
            trace: req("trace")?,
            span: req("span")?,
            parent: field_u64(&v, "parent"),
            kind: v
                .get("kind")
                .and_then(|k| k.as_str())
                .ok_or_else(|| format!("line {}: span missing `kind`", i + 1))?
                .to_owned(),
            round: field_u64(&v, "round").map(|r| r as u16),
            shard: field_u64(&v, "shard").map(|s| s as u16),
            start: req("start_ns")?,
            end: req("end_ns")?,
            status: v
                .get("status")
                .and_then(|s| s.as_str())
                .unwrap_or("ok")
                .to_owned(),
            ty: field_u64(&v, "type"),
        });
    }
    Ok(out)
}

/// One reassembled trace: its spans plus tree diagnostics.
#[derive(Debug)]
pub struct TraceTree {
    /// The trace id.
    pub trace: u64,
    /// Every span observed for this trace.
    pub spans: Vec<SpanRecord>,
    /// Index of the root span (no parent; earliest start wins), when one
    /// was observed.
    pub root: Option<usize>,
    /// Spans whose recorded parent never appeared in this trace.
    pub orphans: usize,
}

impl TraceTree {
    /// `true` when the tree reconstructed completely: a root exists and no
    /// span references a missing parent.
    pub fn is_complete(&self) -> bool {
        self.root.is_some() && self.orphans == 0
    }
}

/// The result of grouping raw span records into trees.
#[derive(Debug)]
pub struct Assembly {
    /// One entry per distinct trace id, ordered by first appearance.
    pub traces: Vec<TraceTree>,
    /// Total spans consumed.
    pub total_spans: usize,
    /// Spans (across all traces) whose parent is missing.
    pub orphan_spans: usize,
    /// Traces with no root span at all.
    pub rootless_traces: usize,
}

/// Groups span records by trace and checks every parent reference.
pub fn assemble(records: Vec<SpanRecord>) -> Assembly {
    let total_spans = records.len();
    let mut order: Vec<u64> = Vec::new();
    let mut by_trace: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    for r in records {
        by_trace.entry(r.trace).or_insert_with(|| {
            order.push(r.trace);
            Vec::new()
        });
        by_trace.get_mut(&r.trace).expect("just inserted").push(r);
    }
    let mut traces = Vec::with_capacity(order.len());
    let mut orphan_spans = 0;
    let mut rootless_traces = 0;
    for trace in order {
        let spans = by_trace.remove(&trace).expect("grouped above");
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span).collect();
        let orphans = spans
            .iter()
            .filter(|s| s.parent.is_some_and(|p| !ids.contains(&p)))
            .count();
        let root = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent.is_none())
            .min_by_key(|(_, s)| s.start)
            .map(|(i, _)| i);
        orphan_spans += orphans;
        if root.is_none() {
            rootless_traces += 1;
        }
        traces.push(TraceTree {
            trace,
            spans,
            root,
            orphans,
        });
    }
    Assembly {
        traces,
        total_spans,
        orphan_spans,
        rootless_traces,
    }
}

/// Where one query's milliseconds went. All fields are nanoseconds except
/// the bookkeeping at the bottom; the duration components sum to `total`.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    /// End-to-end duration of the trace's root span.
    pub total: Nanos,
    /// Admission decision time.
    pub admission: Nanos,
    /// Broker queue wait.
    pub broker_queue: Nanos,
    /// Critical-path shard queue wait (straggler shard, summed over rounds).
    pub shard_queue: Nanos,
    /// Critical-path shard service time (straggler shard, summed over rounds).
    pub shard_service: Nanos,
    /// Round time not inside the straggler's shard spans: wire/channel
    /// transport plus sub-query send/dispatch skew.
    pub transport: Nanos,
    /// Broker compute between rounds (reply aggregation, frontier building).
    pub aggregation: Nanos,
    /// Broker service time not inside any round or aggregation span (plan
    /// logic before the first and after the last fan-out).
    pub broker_compute: Nanos,
    /// Root time outside admission + queue + service: front dispatch and
    /// client-to-broker transport on remote traces, ~0 otherwise.
    pub other: Nanos,
    /// Number of fan-out rounds observed.
    pub rounds: usize,
    /// Hedged duplicate sub-queries that lost the race and were cancelled.
    /// Losers never sit on the critical path (the winner's `subquery` span
    /// does), so they are reported, not attributed.
    pub hedge_losers: usize,
    /// Total time the cancelled losers were in flight (send to cancel).
    pub hedge_loser_time: Nanos,
    /// `(round, shard)` of the straggler in each round — the critical path.
    pub stragglers: Vec<(u16, u16)>,
    /// Root status label.
    pub status: String,
    /// The query type's dense index, when recorded.
    pub ty: Option<u64>,
}

impl Breakdown {
    /// Sum of every duration component (equals `total` by construction,
    /// modulo clamping of negative residuals to zero).
    pub fn component_sum(&self) -> Nanos {
        self.admission
            + self.broker_queue
            + self.shard_queue
            + self.shard_service
            + self.transport
            + self.aggregation
            + self.broker_compute
            + self.other
    }
}

/// Computes one trace's latency breakdown; `None` when the tree has no
/// root to measure against.
pub fn breakdown(tree: &TraceTree) -> Option<Breakdown> {
    let root = &tree.spans[tree.root?];
    let mut b = Breakdown {
        total: root.dur(),
        status: root.status.clone(),
        ty: root.ty,
        ..Breakdown::default()
    };
    // The root may be the remote client's span with the broker `query` span
    // below it; type/status ride on whichever root the trace has, but the
    // type is only stamped broker-side, so fall back to the query span.
    let mut service_total: Nanos = 0;
    let mut rounds_total: Nanos = 0;
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for s in &tree.spans {
        if let Some(p) = s.parent {
            children.entry(p).or_default().push(s);
        }
        match s.kind.as_str() {
            "admission" => b.admission += s.dur(),
            "broker_queue" => b.broker_queue += s.dur(),
            "broker_service" => service_total += s.dur(),
            "aggregation" => b.aggregation += s.dur(),
            "hedge_subquery" => {
                b.hedge_losers += 1;
                b.hedge_loser_time += s.dur();
            }
            "query" if b.ty.is_none() => b.ty = s.ty,
            _ => {}
        }
    }
    let mut round_spans: Vec<&SpanRecord> = tree
        .spans
        .iter()
        .filter(|s| s.kind == "round")
        .collect();
    round_spans.sort_by_key(|r| r.round.unwrap_or(0));
    for round in round_spans {
        b.rounds += 1;
        rounds_total += round.dur();
        let straggler = children
            .get(&round.span)
            .into_iter()
            .flatten()
            .filter(|s| s.kind == "subquery")
            .max_by_key(|s| s.end);
        let (mut sq, mut ss) = (0, 0);
        if let Some(strag) = straggler {
            for child in children.get(&strag.span).into_iter().flatten() {
                match child.kind.as_str() {
                    "shard_queue" => sq += child.dur(),
                    "shard_service" => ss += child.dur(),
                    _ => {}
                }
            }
            b.stragglers
                .push((round.round.unwrap_or(0), strag.shard.unwrap_or(0)));
        }
        b.shard_queue += sq;
        b.shard_service += ss;
        b.transport += round.dur().saturating_sub(sq + ss);
    }
    b.broker_compute = service_total.saturating_sub(rounds_total + b.aggregation);
    // The root-level residual: total minus admission, queue, and the whole
    // service span (which already contains the round / aggregation /
    // compute parts). On remote traces this is front dispatch plus
    // client-to-broker transport; with no service span (a rejection) it
    // degenerates to ~0.
    b.other = b
        .total
        .saturating_sub(b.admission + b.broker_queue + service_total);
    Some(b)
}

/// The aggregated report over every reconstructed trace.
#[derive(Debug)]
pub struct TraceReport {
    /// Distinct traces observed.
    pub traces: usize,
    /// Traces that reconstructed completely (root present, zero orphans).
    pub complete: usize,
    /// Spans referencing a parent that never appeared.
    pub orphan_spans: usize,
    /// Traces with no root span.
    pub rootless_traces: usize,
    /// Total spans consumed.
    pub total_spans: usize,
    /// Root status label → count.
    pub by_status: Vec<(String, usize)>,
    /// One breakdown per rooted trace.
    pub breakdowns: Vec<Breakdown>,
    /// Shard index → number of rounds it was the straggler of.
    pub straggler_counts: Vec<(u16, usize)>,
}

impl TraceReport {
    /// `true` when every trace reconstructed completely.
    pub fn all_complete(&self) -> bool {
        self.orphan_spans == 0 && self.rootless_traces == 0
    }
}

/// Assembles, breaks down, and aggregates a batch of span records.
pub fn analyze(records: Vec<SpanRecord>) -> TraceReport {
    let assembly = assemble(records);
    let mut by_status: HashMap<String, usize> = HashMap::new();
    let mut straggler_counts: HashMap<u16, usize> = HashMap::new();
    let mut breakdowns = Vec::new();
    let mut complete = 0;
    for tree in &assembly.traces {
        if tree.is_complete() {
            complete += 1;
        }
        if let Some(b) = breakdown(tree) {
            *by_status.entry(b.status.clone()).or_default() += 1;
            for &(_, shard) in &b.stragglers {
                *straggler_counts.entry(shard).or_default() += 1;
            }
            breakdowns.push(b);
        }
    }
    let mut by_status: Vec<(String, usize)> = by_status.into_iter().collect();
    by_status.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut straggler_counts: Vec<(u16, usize)> = straggler_counts.into_iter().collect();
    straggler_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    TraceReport {
        traces: assembly.traces.len(),
        complete,
        orphan_spans: assembly.orphan_spans,
        rootless_traces: assembly.rootless_traces,
        total_spans: assembly.total_spans,
        by_status,
        breakdowns,
        straggler_counts,
    }
}

fn percentile(sorted: &[Nanos], q: f64) -> Nanos {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(ns: Nanos) -> f64 {
    ns as f64 / 1e6
}

/// Renders the Fig. 13-style "where the milliseconds went" text report.
pub fn render_report(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace-report: where the milliseconds went");
    let _ = writeln!(
        out,
        "  traces: {} ({} complete, {} orphan spans, {} rootless), {} spans",
        report.traces,
        report.complete,
        report.orphan_spans,
        report.rootless_traces,
        report.total_spans
    );
    let statuses: Vec<String> = report
        .by_status
        .iter()
        .map(|(s, n)| format!("{s} {n}"))
        .collect();
    let _ = writeln!(out, "  status: {}", statuses.join(", "));
    // Aggregate over completed queries only: rejected/expired traces have a
    // near-zero breakdown and would drag every percentile toward 0.
    let pool: Vec<&Breakdown> = report
        .breakdowns
        .iter()
        .filter(|b| b.status == "ok")
        .collect();
    let pool: Vec<&Breakdown> = if pool.is_empty() {
        report.breakdowns.iter().collect()
    } else {
        pool
    };
    if pool.is_empty() {
        let _ = writeln!(out, "  (no rooted traces to aggregate)");
        return out;
    }
    let total_mean: f64 = pool.iter().map(|b| b.total as f64).sum::<f64>() / pool.len() as f64;
    let _ = writeln!(
        out,
        "  breakdown over {} queries (component / end-to-end share by mean):",
        pool.len()
    );
    let _ = writeln!(
        out,
        "  {:<16} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "component", "p50 ms", "p95 ms", "p99 ms", "mean ms", "share"
    );
    type Component = (&'static str, fn(&Breakdown) -> Nanos);
    let components: [Component; 8] = [
        ("admission", |b| b.admission),
        ("broker queue", |b| b.broker_queue),
        ("shard queue", |b| b.shard_queue),
        ("shard service", |b| b.shard_service),
        ("transport", |b| b.transport),
        ("aggregation", |b| b.aggregation),
        ("broker compute", |b| b.broker_compute),
        ("other", |b| b.other),
    ];
    for (name, get) in components {
        let mut vals: Vec<Nanos> = pool.iter().map(|b| get(b)).collect();
        vals.sort_unstable();
        let mean: f64 = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
        let share = if total_mean > 0.0 { 100.0 * mean / total_mean } else { 0.0 };
        let _ = writeln!(
            out,
            "  {:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7.1}%",
            name,
            ms(percentile(&vals, 0.50)),
            ms(percentile(&vals, 0.95)),
            ms(percentile(&vals, 0.99)),
            mean / 1e6,
            share
        );
    }
    let mut totals: Vec<Nanos> = pool.iter().map(|b| b.total).collect();
    totals.sort_unstable();
    let _ = writeln!(
        out,
        "  {:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7.1}%",
        "end-to-end",
        ms(percentile(&totals, 0.50)),
        ms(percentile(&totals, 0.95)),
        ms(percentile(&totals, 0.99)),
        total_mean / 1e6,
        100.0
    );
    if !report.straggler_counts.is_empty() {
        let tags: Vec<String> = report
            .straggler_counts
            .iter()
            .map(|(shard, n)| format!("shard {shard} ×{n}"))
            .collect();
        let _ = writeln!(out, "  critical-path stragglers: {}", tags.join(", "));
    }
    let losers: usize = report.breakdowns.iter().map(|b| b.hedge_losers).sum();
    if losers > 0 {
        let loser_time: Nanos = report.breakdowns.iter().map(|b| b.hedge_loser_time).sum();
        let _ = writeln!(
            out,
            "  hedged sub-queries: {} cancelled losers (winners attributed above), \
             {:.3} ms mean in flight before cancel",
            losers,
            ms(loser_time) / losers as f64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: u64,
        span: u64,
        parent: Option<u64>,
        kind: &str,
        start: Nanos,
        end: Nanos,
    ) -> SpanRecord {
        SpanRecord {
            trace,
            span,
            parent,
            kind: kind.to_owned(),
            round: None,
            shard: None,
            start,
            end,
            status: "ok".to_owned(),
            ty: None,
        }
    }

    /// One two-round query: round 0 fans out to shards 0/1 (1 straggles),
    /// round 1 hits shard 0 only, with aggregation between the rounds.
    fn sample_trace() -> Vec<SpanRecord> {
        let mut v = vec![
            span(1, 10, None, "query", 0, 1_000),
            span(1, 11, Some(10), "admission", 0, 10),
            span(1, 12, Some(10), "broker_queue", 10, 110),
            span(1, 13, Some(10), "broker_service", 110, 1_000),
        ];
        let mut round0 = span(1, 14, Some(13), "round", 120, 520);
        round0.round = Some(0);
        v.push(round0);
        let mut sub_a = span(1, 15, Some(14), "subquery", 120, 320);
        sub_a.shard = Some(0);
        v.push(sub_a);
        let mut sub_b = span(1, 16, Some(14), "subquery", 125, 520);
        sub_b.shard = Some(1);
        v.push(sub_b);
        let mut sq = span(1, 17, Some(16), "shard_queue", 150, 250);
        sq.shard = Some(1);
        v.push(sq);
        let mut ss = span(1, 18, Some(16), "shard_service", 250, 500);
        ss.shard = Some(1);
        v.push(ss);
        let mut agg = span(1, 19, Some(13), "aggregation", 520, 600);
        agg.round = Some(0);
        v.push(agg);
        let mut round1 = span(1, 20, Some(13), "round", 600, 900);
        round1.round = Some(1);
        v.push(round1);
        let mut sub_c = span(1, 21, Some(20), "subquery", 600, 900);
        sub_c.shard = Some(0);
        v.push(sub_c);
        let mut sq1 = span(1, 22, Some(21), "shard_queue", 610, 650);
        sq1.shard = Some(0);
        v.push(sq1);
        let mut ss1 = span(1, 23, Some(21), "shard_service", 650, 890);
        ss1.shard = Some(0);
        v.push(ss1);
        v
    }

    #[test]
    fn assembles_complete_trees() {
        let a = assemble(sample_trace());
        assert_eq!(a.traces.len(), 1);
        assert_eq!(a.orphan_spans, 0);
        assert_eq!(a.rootless_traces, 0);
        assert!(a.traces[0].is_complete());
    }

    #[test]
    fn detects_orphans_and_rootless_traces() {
        let mut records = sample_trace();
        records.push(span(1, 99, Some(777), "shard_queue", 0, 1));
        records.push(span(2, 100, Some(101), "subquery", 0, 1));
        let a = assemble(records);
        assert_eq!(a.orphan_spans, 2);
        assert_eq!(a.rootless_traces, 1);
        assert!(!a.traces[0].is_complete());
    }

    #[test]
    fn breakdown_attributes_critical_path_and_sums_to_total() {
        let a = assemble(sample_trace());
        let b = breakdown(&a.traces[0]).unwrap();
        assert_eq!(b.total, 1_000);
        assert_eq!(b.admission, 10);
        assert_eq!(b.broker_queue, 100);
        // Round 0 straggler is shard 1 (queue 100, service 250); round 1's
        // only sub is shard 0 (queue 40, service 240).
        assert_eq!(b.stragglers, vec![(0, 1), (1, 0)]);
        assert_eq!(b.shard_queue, 140);
        assert_eq!(b.shard_service, 490);
        // transport: round0 400 - 350 = 50; round1 300 - 280 = 20.
        assert_eq!(b.transport, 70);
        assert_eq!(b.aggregation, 80);
        // service 890 - rounds 700 - aggregation 80 = 110.
        assert_eq!(b.broker_compute, 110);
        // total 1000 - admission 10 - queue 100 - service 890 = 0.
        assert_eq!(b.other, 0);
        assert_eq!(b.component_sum(), b.total);
    }

    #[test]
    fn hedge_losers_are_reported_but_stay_off_the_critical_path() {
        let mut records = sample_trace();
        // A hedged duplicate of round 0 that lost: sent at 130, cancelled at
        // 530 — later than the straggler's reply, which must NOT make it the
        // straggler (it is not a `subquery` span).
        let mut hedge = span(1, 30, Some(14), "hedge_subquery", 130, 530);
        hedge.shard = Some(0);
        records.push(hedge);
        let a = assemble(records.clone());
        let b = breakdown(&a.traces[0]).unwrap();
        assert_eq!(b.hedge_losers, 1);
        assert_eq!(b.hedge_loser_time, 400);
        assert_eq!(b.stragglers, vec![(0, 1), (1, 0)], "loser not on critical path");
        assert_eq!(b.component_sum(), b.total, "losers are not attributed");
        let report = analyze(records);
        let text = render_report(&report);
        assert!(text.contains("hedged sub-queries: 1 cancelled losers"));
        // Without hedge spans the line is absent.
        let plain = render_report(&analyze(sample_trace()));
        assert!(!plain.contains("hedged sub-queries"));
    }

    #[test]
    fn parse_skips_non_span_lines_and_rejects_bad_json() {
        let text = r#"{"event":"admitted","at_ns":5,"type":1}
{"event":"span","at_ns":9,"trace":1,"span":2,"kind":"query","start_ns":3,"end_ns":9,"status":"ok"}
"#;
        let spans = parse_spans(text).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, "query");
        assert_eq!(spans[0].dur(), 6);
        assert!(parse_spans("not json\n").is_err());
        assert!(parse_spans(r#"{"event":"span","trace":1}"#).is_err());
    }

    #[test]
    fn report_renders_and_counts() {
        let report = analyze(sample_trace());
        assert_eq!(report.traces, 1);
        assert!(report.all_complete());
        assert_eq!(report.straggler_counts, vec![(0, 1), (1, 1)]);
        let text = render_report(&report);
        assert!(text.contains("where the milliseconds went"));
        assert!(text.contains("shard queue"));
        assert!(text.contains("end-to-end"));
    }
}
