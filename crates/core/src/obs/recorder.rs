//! Always-on flight recorder: per-thread, fixed-capacity, overwrite-oldest
//! rings of compact binary event records.
//!
//! The JSONL/tracing stack (OBSERVABILITY.md) is too heavy to leave on in
//! the rings steady state, yet overload episodes are exactly when you want
//! the trailing event history. The recorder is the black box in between:
//! every [`Event`] that reaches a [`RecorderSink`] is packed into a
//! fixed-width [`Record`] (40 bytes, no heap) and written into the calling
//! thread's private ring. When a trigger fires (see
//! [`super::health::HealthSampler`]) the rings are snapshotted into an
//! incident dump and analyzed offline by the `postmortem` CLI subcommand.
//!
//! # Concurrency design
//!
//! One ring per *recording thread*, following the single-writer discipline
//! of [`bouncer_metrics::spsc`]: the record path is one thread-local
//! lookup plus a seqlock-stamped slot write — no locks, no allocation, no
//! CAS. Rings are registered in a central list the first time a thread
//! records through a given [`Recorder`] (a cold path behind a `Mutex`),
//! then cached in a `thread_local!` so the steady state never touches the
//! registry again.
//!
//! Readers ([`Recorder::snapshot`]) run concurrently with writers. Each
//! slot carries a sequence stamp that is odd while the writer is mid-store
//! and even (encoding the record's global sequence number) once the store
//! is complete; a reader that observes a stamp change across its copy
//! discards the slot instead of surfacing a torn record. The record itself
//! is stored as four `AtomicU64` words, so the protocol is expressible in
//! safe Rust — no `UnsafeCell` reads racing with writes.
//!
//! Overwrite semantics: a ring holds the most recent `capacity` records;
//! older records are silently replaced and counted in
//! [`RingSnapshot::dropped`].

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use bouncer_metrics::Nanos;

use crate::policy::RejectReason;
use crate::types::TypeId;

use super::{Event, EventSink};

/// Default per-thread ring capacity (records). At 40 bytes per slot this
/// is ~160 KiB per recording thread — roomy enough to span several health
/// sample windows at full event rate.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Sentinel for "no query type" in [`Record::ty`].
pub const TY_NONE: u16 = u16::MAX;

/// What a [`Record`] describes — a compact mirror of [`Event`]'s variants
/// plus the recorder-only engine idle transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// Unwritten slot filler; never surfaced by a snapshot.
    Empty = 0,
    /// [`Event::Admitted`].
    Admitted = 1,
    /// [`Event::Rejected`]; `a` = [`RejectReason::index`].
    Rejected = 2,
    /// [`Event::Enqueued`]; `a` = queue length after the insert.
    Enqueued = 3,
    /// [`Event::Dequeued`]; `a` = queue wait (ns).
    Dequeued = 4,
    /// [`Event::Started`].
    Started = 5,
    /// [`Event::Completed`]; `a` = response time, `b` = processing (ns).
    Completed = 6,
    /// [`Event::Expired`]; `a` = wait by expiry (ns).
    Expired = 7,
    /// [`Event::HistogramSwap`].
    HistogramSwap = 8,
    /// [`Event::ThresholdUpdate`]; `a` = threshold (`f64::to_bits`).
    ThresholdUpdate = 9,
    /// [`Event::MovingAvgRefresh`]; `a` = mean ns (`f64::to_bits`).
    MovingAvgRefresh = 10,
    /// [`Event::EstimateRefresh`] with `warm = true`; `a` = cached mean ns
    /// (`f64::to_bits`), `b` = tail percentile estimate ns (`u64::MAX`
    /// when unresolved).
    EstimateRefresh = 11,
    /// [`Event::EstimateRefresh`] with `warm = false` (same payload).
    EstimateCold = 12,
    /// [`Event::Scenario`]; `a` = content hash.
    Scenario = 13,
    /// [`Event::ControllerDecision`]; `ty` = param code
    /// ([`param_code`]), `a` = decided value (`f64::to_bits`), `b` =
    /// attainment/rejection packed as two `f32` bit patterns
    /// (attainment high, rejection low).
    ControllerDecision = 14,
    /// [`Event::ParamUpdate`]; `ty` = param code, `a` = installed value
    /// (`f64::to_bits`).
    ParamUpdate = 15,
    /// [`Event::Span`]; `a` = start, `b` = end (ns).
    Span = 16,
    /// [`Event::PoolStats`]; `a` = hits, `b` = misses.
    PoolStats = 17,
    /// [`Event::Tick`].
    Tick = 18,
    /// [`Event::HealthSample`]; `a` = queue depth, `b` = in-flight.
    HealthSample = 19,
    /// [`Event::TypeHealth`]; `a` = received (hi 32) | rejected (lo 32),
    /// `b` = completed (hi 32) | within-SLO (lo 32).
    TypeHealth = 20,
    /// [`Event::EngineState`]; `a` = engine index, `b` = 1 parked / 0 woke.
    EngineState = 21,
    /// [`Event::Incident`]; `a` = trigger code, `b` = records dumped.
    Incident = 22,
    /// [`Event::GraphStats`]; `a` = edges, `b` = heap bytes.
    GraphStats = 23,
    /// [`Event::ReplicaRouted`]; `a` = shard, `b` = replica.
    ReplicaRouted = 24,
    /// [`Event::HedgeFired`]; `a` = shard (hi 32) | primary (lo 32),
    /// `b` = hedge replica (hi 32) | delay ns clamped to 32 bits (lo 32).
    HedgeFired = 25,
    /// [`Event::HedgeCancelled`]; `a` = shard, `b` = cancelled replica.
    HedgeCancelled = 26,
}

impl RecordKind {
    /// The snake_case name, matching the source event's JSONL name where
    /// one exists.
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Empty => "empty",
            RecordKind::Admitted => "admitted",
            RecordKind::Rejected => "rejected",
            RecordKind::Enqueued => "enqueued",
            RecordKind::Dequeued => "dequeued",
            RecordKind::Started => "started",
            RecordKind::Completed => "completed",
            RecordKind::Expired => "expired",
            RecordKind::HistogramSwap => "histogram_swap",
            RecordKind::ThresholdUpdate => "threshold_update",
            RecordKind::MovingAvgRefresh => "moving_avg_refresh",
            RecordKind::EstimateRefresh => "estimate_refresh",
            RecordKind::EstimateCold => "estimate_refresh_cold",
            RecordKind::Scenario => "scenario",
            RecordKind::ControllerDecision => "controller_decision",
            RecordKind::ParamUpdate => "param_update",
            RecordKind::Span => "span",
            RecordKind::PoolStats => "pool_stats",
            RecordKind::Tick => "tick",
            RecordKind::HealthSample => "health_sample",
            RecordKind::TypeHealth => "type_health",
            RecordKind::EngineState => "engine_state",
            RecordKind::Incident => "incident",
            RecordKind::GraphStats => "graph_stats",
            RecordKind::ReplicaRouted => "replica_routed",
            RecordKind::HedgeFired => "hedge_fired",
            RecordKind::HedgeCancelled => "hedge_cancelled",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => RecordKind::Admitted,
            2 => RecordKind::Rejected,
            3 => RecordKind::Enqueued,
            4 => RecordKind::Dequeued,
            5 => RecordKind::Started,
            6 => RecordKind::Completed,
            7 => RecordKind::Expired,
            8 => RecordKind::HistogramSwap,
            9 => RecordKind::ThresholdUpdate,
            10 => RecordKind::MovingAvgRefresh,
            11 => RecordKind::EstimateRefresh,
            12 => RecordKind::EstimateCold,
            13 => RecordKind::Scenario,
            14 => RecordKind::ControllerDecision,
            15 => RecordKind::ParamUpdate,
            16 => RecordKind::Span,
            17 => RecordKind::PoolStats,
            18 => RecordKind::Tick,
            19 => RecordKind::HealthSample,
            20 => RecordKind::TypeHealth,
            21 => RecordKind::EngineState,
            22 => RecordKind::Incident,
            23 => RecordKind::GraphStats,
            24 => RecordKind::ReplicaRouted,
            25 => RecordKind::HedgeFired,
            26 => RecordKind::HedgeCancelled,
            _ => RecordKind::Empty,
        }
    }

    /// Parses a [`RecordKind::name`] back, for dump readers.
    pub fn from_name(name: &str) -> Option<Self> {
        (1..=26u8)
            .map(RecordKind::from_u8)
            .find(|k| k.name() == name)
    }
}

/// Dense codes for controller-targeted parameter names, so records stay
/// fixed-width. [`param_name`] inverts.
pub fn param_code(param: &str) -> u16 {
    match param {
        "max_utilization" => 0,
        "allowance" => 1,
        "alpha" => 2,
        _ => TY_NONE,
    }
}

/// The parameter name for a [`param_code`], `"?"` when unknown.
pub fn param_name(code: u16) -> &'static str {
    match code {
        0 => "max_utilization",
        1 => "allowance",
        2 => "alpha",
        _ => "?",
    }
}

/// One fixed-width flight-recorder record. `a`/`b` payloads are
/// kind-specific (see [`RecordKind`]); floating-point payloads travel as
/// `f64::to_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Event timestamp (virtual or wall-clock nanoseconds).
    pub at: Nanos,
    /// What happened.
    pub kind: RecordKind,
    /// Dense query-type index, [`TY_NONE`] for untyped records; parameter
    /// code for controller records.
    pub ty: u16,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

impl Record {
    /// Packs an [`Event`] into its record form. Every event maps; payload
    /// fields that don't fit the two words (policy names, trace ids) are
    /// dropped — the recorder is a black box, not an archive.
    pub fn from_event(event: &Event) -> Self {
        let ty16 = |ty: TypeId| -> u16 { ty.index().min(usize::from(TY_NONE) - 1) as u16 };
        match *event {
            Event::Admitted { at, ty } => Record::new(at, RecordKind::Admitted, ty16(ty), 0, 0),
            Event::Rejected { at, ty, reason } => Record::new(
                at,
                RecordKind::Rejected,
                ty16(ty),
                reason.index() as u64,
                0,
            ),
            Event::Enqueued { at, ty, queue_len } => Record::new(
                at,
                RecordKind::Enqueued,
                ty16(ty),
                queue_len as u64,
                0,
            ),
            Event::Dequeued { at, ty, wait } => {
                Record::new(at, RecordKind::Dequeued, ty16(ty), wait, 0)
            }
            Event::Started { at, ty } => Record::new(at, RecordKind::Started, ty16(ty), 0, 0),
            Event::Completed {
                at,
                ty,
                rt,
                processing,
                ..
            } => Record::new(at, RecordKind::Completed, ty16(ty), rt, processing),
            Event::Expired { at, ty, wait } => {
                Record::new(at, RecordKind::Expired, ty16(ty), wait, 0)
            }
            Event::HistogramSwap { at, .. } => {
                Record::new(at, RecordKind::HistogramSwap, TY_NONE, 0, 0)
            }
            Event::ThresholdUpdate { at, threshold, .. } => Record::new(
                at,
                RecordKind::ThresholdUpdate,
                TY_NONE,
                threshold.to_bits(),
                0,
            ),
            Event::MovingAvgRefresh { at, mean_ns, .. } => Record::new(
                at,
                RecordKind::MovingAvgRefresh,
                TY_NONE,
                mean_ns.to_bits(),
                0,
            ),
            Event::EstimateRefresh {
                at,
                ty,
                warm,
                mean_ns,
                pt_tail_ns,
                ..
            } => Record::new(
                at,
                if warm {
                    RecordKind::EstimateRefresh
                } else {
                    RecordKind::EstimateCold
                },
                ty16(ty),
                mean_ns.to_bits(),
                pt_tail_ns.unwrap_or(u64::MAX),
            ),
            Event::Scenario { at, hash } => Record::new(at, RecordKind::Scenario, TY_NONE, hash, 0),
            Event::ControllerDecision {
                at,
                param,
                value,
                attainment,
                rejection,
                ..
            } => Record::new(
                at,
                RecordKind::ControllerDecision,
                param_code(param),
                value.to_bits(),
                (u64::from((attainment as f32).to_bits()) << 32)
                    | u64::from((rejection as f32).to_bits()),
            ),
            Event::ParamUpdate {
                at, param, value, ..
            } => Record::new(
                at,
                RecordKind::ParamUpdate,
                param_code(param),
                value.to_bits(),
                0,
            ),
            Event::Span { at, start, end, ty, .. } => Record::new(
                at,
                RecordKind::Span,
                ty.map_or(TY_NONE, ty16),
                start,
                end,
            ),
            Event::PoolStats {
                at, hits, misses, ..
            } => Record::new(at, RecordKind::PoolStats, TY_NONE, hits, misses),
            Event::Tick { at } => Record::new(at, RecordKind::Tick, TY_NONE, 0, 0),
            Event::HealthSample {
                at,
                queue_depth,
                in_flight,
                ..
            } => Record::new(at, RecordKind::HealthSample, TY_NONE, queue_depth, in_flight),
            Event::TypeHealth {
                at,
                ty,
                received,
                rejected,
                completed,
                within_slo,
            } => Record::new(
                at,
                RecordKind::TypeHealth,
                ty16(ty),
                (received.min(u32::MAX as u64) << 32) | rejected.min(u32::MAX as u64),
                (completed.min(u32::MAX as u64) << 32) | within_slo.min(u32::MAX as u64),
            ),
            Event::EngineState { at, engine, parked } => Record::new(
                at,
                RecordKind::EngineState,
                TY_NONE,
                u64::from(engine),
                u64::from(parked),
            ),
            Event::Incident { at, records, .. } => {
                Record::new(at, RecordKind::Incident, TY_NONE, 0, records)
            }
            Event::GraphStats {
                at,
                edges,
                heap_bytes,
                ..
            } => Record::new(at, RecordKind::GraphStats, TY_NONE, edges, heap_bytes),
            Event::ReplicaRouted { at, shard, replica } => Record::new(
                at,
                RecordKind::ReplicaRouted,
                TY_NONE,
                u64::from(shard),
                u64::from(replica),
            ),
            Event::HedgeFired {
                at,
                shard,
                primary,
                hedge,
                delay,
            } => Record::new(
                at,
                RecordKind::HedgeFired,
                TY_NONE,
                (u64::from(shard) << 32) | u64::from(primary),
                (u64::from(hedge) << 32) | delay.min(u32::MAX as u64),
            ),
            Event::HedgeCancelled { at, shard, replica } => Record::new(
                at,
                RecordKind::HedgeCancelled,
                TY_NONE,
                u64::from(shard),
                u64::from(replica),
            ),
        }
    }

    fn new(at: Nanos, kind: RecordKind, ty: u16, a: u64, b: u64) -> Self {
        Self { at, kind, ty, a, b }
    }

    /// The rejection reason, for [`RecordKind::Rejected`] records.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        if self.kind == RecordKind::Rejected {
            RejectReason::ALL.get(self.a as usize).copied()
        } else {
            None
        }
    }

    fn to_words(self) -> [u64; 4] {
        [
            self.at,
            (u64::from(self.kind as u8) << 16) | u64::from(self.ty),
            self.a,
            self.b,
        ]
    }

    fn from_words(w: [u64; 4]) -> Self {
        Self {
            at: w[0],
            kind: RecordKind::from_u8((w[1] >> 16) as u8),
            ty: (w[1] & 0xFFFF) as u16,
            a: w[2],
            b: w[3],
        }
    }
}

/// One seqlock-stamped ring slot. The stamp is `0` while unwritten,
/// `2·seq + 1` while the writer is mid-store of record number `seq`
/// (0-based), and `2·seq + 2` once that record is fully stored.
struct Slot {
    stamp: AtomicU64,
    words: [AtomicU64; 4],
}

impl Slot {
    fn empty() -> Self {
        Self {
            stamp: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// Pad each ring's hot state to its own cache line, mirroring the
/// alignment discipline of `bouncer_metrics::spsc`, so two threads'
/// recorders never false-share.
#[repr(align(64))]
struct PaddedHead(AtomicU64);

/// A single-writer ring of [`Record`]s. Writing is reserved to the owning
/// thread (enforced by the thread-local registration in
/// [`Recorder::record`]); snapshotting is safe from any thread.
pub struct ThreadRing {
    name: String,
    slots: Box<[Slot]>,
    mask: u64,
    /// Number of records ever written (monotone). Only the owner thread
    /// stores; readers use it to bound their scan window.
    head: PaddedHead,
}

impl std::fmt::Debug for ThreadRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRing")
            .field("name", &self.name)
            .field("capacity", &self.slots.len())
            .field("written", &self.head.0.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadRing {
    fn new(name: String, capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        Self {
            name,
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            mask: capacity as u64 - 1,
            head: PaddedHead(AtomicU64::new(0)),
        }
    }

    /// The ring's registered name (usually the owning thread's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records ever written (monotone; exceeds `capacity` once the ring
    /// has wrapped).
    pub fn written(&self) -> u64 {
        self.head.0.load(Ordering::Acquire)
    }

    /// Writes one record, overwriting the oldest once full. **Owner thread
    /// only** — concurrent writers would corrupt the seqlock protocol,
    /// which is why this is not `pub`.
    fn record(&self, rec: Record) {
        let seq = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        // Seqlock writer: odd stamp -> payload stores -> even stamp. The
        // Release fence keeps the odd stamp ahead of the payload in every
        // reader's view; the Release store of the even stamp publishes the
        // payload.
        slot.stamp.store(2 * seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (word, v) in slot.words.iter().zip(rec.to_words()) {
            word.store(v, Ordering::Relaxed);
        }
        slot.stamp.store(2 * seq + 2, Ordering::Release);
        self.head.0.store(seq + 1, Ordering::Release);
    }

    /// A consistent copy of the ring's current window: every record whose
    /// slot was stably readable, in sequence order, plus the count of
    /// older records already overwritten. Records the writer replaces or
    /// is mid-replacing during the scan are skipped, never torn.
    pub fn snapshot(&self) -> RingSnapshot {
        let head = self.written();
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut records = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            // A couple of retries ride out a writer caught mid-store; if
            // the slot keeps moving it has been overwritten by a newer
            // record and is simply skipped.
            for _ in 0..4 {
                let s1 = slot.stamp.load(Ordering::Acquire);
                if s1 % 2 == 1 || s1 == 0 {
                    continue;
                }
                if (s1 - 2) / 2 != seq {
                    break; // already overwritten past our window
                }
                let words = [
                    slot.words[0].load(Ordering::Relaxed),
                    slot.words[1].load(Ordering::Relaxed),
                    slot.words[2].load(Ordering::Relaxed),
                    slot.words[3].load(Ordering::Relaxed),
                ];
                fence(Ordering::Acquire);
                let s2 = slot.stamp.load(Ordering::Relaxed);
                if s1 == s2 {
                    records.push((seq, Record::from_words(words)));
                    break;
                }
            }
        }
        RingSnapshot {
            name: self.name.clone(),
            capacity: self.slots.len(),
            written: head,
            dropped: start,
            records,
        }
    }
}

/// One ring's consistent snapshot (see [`ThreadRing::snapshot`]).
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// The ring's name.
    pub name: String,
    /// Ring capacity in slots.
    pub capacity: usize,
    /// Records ever written at snapshot time.
    pub written: u64,
    /// Records overwritten before the snapshot window (oldest-dropped
    /// count).
    pub dropped: u64,
    /// `(sequence, record)` pairs in sequence order.
    pub records: Vec<(u64, Record)>,
}

/// A record paired with the ring it came from, as surfaced by
/// [`Recorder::snapshot`].
#[derive(Debug, Clone)]
pub struct RecordedEvent {
    /// Name of the ring (thread) that wrote the record.
    pub ring: Arc<str>,
    /// The record's per-ring sequence number.
    pub seq: u64,
    /// The record itself.
    pub rec: Record,
}

/// A merged snapshot of every ring, ordered by timestamp.
#[derive(Debug, Clone, Default)]
pub struct RecorderDump {
    /// All stably-read records, sorted by `(at, ring, seq)`.
    pub records: Vec<RecordedEvent>,
    /// Number of rings that have registered.
    pub rings: usize,
    /// Total records ever written across rings.
    pub written: u64,
    /// Total records already overwritten (lost to the fixed capacity).
    pub dropped: u64,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

std::thread_local! {
    /// Per-thread cache of `(recorder id, ring)` pairs so the record path
    /// never touches the registry mutex after first contact.
    static TLS_RINGS: std::cell::RefCell<Vec<(u64, Arc<ThreadRing>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The flight recorder: a registry of per-thread overwrite-oldest rings.
///
/// Cheap enough to leave always on — the record path is a thread-local
/// vector scan (almost always length 1) plus a seqlock slot store. See the
/// `gate_cycle/recorder` rows of the `overhead` bench and target T4 in
/// docs/adr/001-performance-targets.md.
#[derive(Debug)]
pub struct Recorder {
    id: u64,
    capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl Recorder {
    /// A recorder whose rings hold `capacity` records each (rounded up to
    /// a power of two).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            capacity,
            rings: Mutex::new(Vec::new()),
        })
    }

    /// A recorder with [`DEFAULT_RING_CAPACITY`] slots per ring.
    pub fn with_default_capacity() -> Arc<Self> {
        Self::new(DEFAULT_RING_CAPACITY)
    }

    /// Writes one record into the calling thread's ring, registering the
    /// ring on first contact. Lock- and allocation-free after that first
    /// call per (thread, recorder) pair.
    pub fn record(&self, rec: Record) {
        TLS_RINGS.with(|cell| {
            let mut cached = cell.borrow_mut();
            if let Some((_, ring)) = cached.iter().find(|(id, _)| *id == self.id) {
                ring.record(rec);
                return;
            }
            let ring = self.register_current_thread();
            ring.record(rec);
            cached.push((self.id, ring));
        });
    }

    /// Records an event directly (the [`RecorderSink`] path).
    pub fn record_event(&self, event: &Event) {
        self.record(Record::from_event(event));
    }

    fn register_current_thread(&self) -> Arc<ThreadRing> {
        let mut rings = self.rings.lock().unwrap_or_else(PoisonError::into_inner);
        let base = std::thread::current()
            .name()
            .unwrap_or("thread")
            .to_string();
        let name = format!("{base}#{}", rings.len());
        let ring = Arc::new(ThreadRing::new(name, self.capacity));
        rings.push(Arc::clone(&ring));
        ring
    }

    /// Number of registered rings (threads that have recorded).
    pub fn ring_count(&self) -> usize {
        self.rings
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Total records ever written across all rings.
    pub fn total_written(&self) -> u64 {
        self.rings
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|r| r.written())
            .sum()
    }

    /// Snapshots every ring and merges the windows into one
    /// timestamp-ordered dump. Runs concurrently with writers; records
    /// being overwritten mid-scan are skipped, never torn.
    pub fn snapshot(&self) -> RecorderDump {
        let rings: Vec<Arc<ThreadRing>> = self
            .rings
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut dump = RecorderDump {
            rings: rings.len(),
            ..RecorderDump::default()
        };
        for ring in &rings {
            let snap = ring.snapshot();
            dump.written += snap.written;
            dump.dropped += snap.dropped;
            let name: Arc<str> = Arc::from(snap.name.as_str());
            dump.records.extend(snap.records.into_iter().map(|(seq, rec)| RecordedEvent {
                ring: Arc::clone(&name),
                seq,
                rec,
            }));
        }
        dump.records
            .sort_by(|x, y| (x.rec.at, &x.ring, x.seq).cmp(&(y.rec.at, &y.ring, y.seq)));
        dump
    }
}

/// An [`EventSink`] adapter that records every event into a [`Recorder`]
/// and forwards to a downstream sink.
///
/// Always [`enabled`](EventSink::enabled) — that is the point: emission
/// sites construct events even when the downstream is a `NullSink`, and
/// the flight recorder captures them. The cost of that always-on capture
/// is what ADR 001's T4 target bounds.
#[derive(Debug)]
pub struct RecorderSink {
    recorder: Arc<Recorder>,
    downstream: Option<Arc<dyn EventSink>>,
}

impl RecorderSink {
    /// Records into `recorder`, forwarding to `downstream` when present
    /// and enabled.
    pub fn new(recorder: Arc<Recorder>, downstream: Option<Arc<dyn EventSink>>) -> Self {
        Self {
            recorder,
            downstream,
        }
    }

    /// The wrapped recorder.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }
}

impl EventSink for RecorderSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, event: &Event) {
        self.recorder.record_event(event);
        if let Some(down) = &self.downstream {
            if down.enabled() {
                down.emit(event);
            }
        }
    }

    fn flush(&self) {
        if let Some(down) = &self.downstream {
            down.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MemorySink;

    #[test]
    fn record_round_trips_every_event_payload() {
        let samples = [
            Event::Admitted { at: 1, ty: TypeId::from_index(3) },
            Event::Rejected {
                at: 2,
                ty: TypeId::from_index(1),
                reason: RejectReason::CapacityFraction,
            },
            Event::Completed { at: 9, ty: TypeId::from_index(0), wait: 2, processing: 3, rt: 5 },
            Event::ControllerDecision {
                at: 11,
                law: "aimd",
                param: "max_utilization",
                value: 0.75,
                attainment: 0.9,
                rejection: 0.25,
            },
            Event::EstimateRefresh {
                at: 12,
                policy: "bouncer",
                ty: TypeId::from_index(2),
                warm: true,
                mean_ns: 1234.5,
                pt_tail_ns: Some(999),
            },
        ];
        for e in &samples {
            let r = Record::from_event(e);
            let r2 = Record::from_words(r.to_words());
            assert_eq!(r, r2, "word round trip for {}", e.name());
            assert_eq!(r.at, e.at());
        }
        let decision = Record::from_event(&samples[3]);
        assert_eq!(decision.kind, RecordKind::ControllerDecision);
        assert_eq!(param_name(decision.ty), "max_utilization");
        assert_eq!(f64::from_bits(decision.a), 0.75);
        let attain = f32::from_bits((decision.b >> 32) as u32);
        let rej = f32::from_bits(decision.b as u32);
        assert!((attain - 0.9).abs() < 1e-6 && (rej - 0.25).abs() < 1e-6);
        let reject = Record::from_event(&samples[1]);
        assert_eq!(reject.reject_reason(), Some(RejectReason::CapacityFraction));
    }

    #[test]
    fn ring_keeps_most_recent_records_and_counts_dropped() {
        let ring = ThreadRing::new("t".into(), 8);
        for i in 0..20u64 {
            ring.record(Record::new(i, RecordKind::Admitted, 0, i, !i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.written, 20);
        assert_eq!(snap.dropped, 12);
        assert_eq!(snap.records.len(), 8);
        // The window is exactly the 8 newest records, in order.
        for (offset, (seq, rec)) in snap.records.iter().enumerate() {
            assert_eq!(*seq, 12 + offset as u64);
            assert_eq!(rec.at, *seq);
            assert_eq!(rec.a, *seq);
            assert_eq!(rec.b, !*seq);
        }
    }

    #[test]
    fn recorder_registers_one_ring_per_thread() {
        let recorder = Recorder::new(64);
        recorder.record(Record::new(1, RecordKind::Tick, TY_NONE, 0, 0));
        recorder.record(Record::new(2, RecordKind::Tick, TY_NONE, 0, 0));
        let rec2 = Arc::clone(&recorder);
        std::thread::spawn(move || {
            rec2.record(Record::new(3, RecordKind::Tick, TY_NONE, 0, 0));
        })
        .join()
        .unwrap();
        assert_eq!(recorder.ring_count(), 2);
        assert_eq!(recorder.total_written(), 3);
        let dump = recorder.snapshot();
        assert_eq!(dump.records.len(), 3);
        // Merged dump is timestamp-ordered across rings.
        assert!(dump.records.windows(2).all(|w| w[0].rec.at <= w[1].rec.at));
    }

    #[test]
    fn recorder_sink_is_always_enabled_and_forwards() {
        let recorder = Recorder::new(64);
        let mem = Arc::new(MemorySink::new());
        let sink = RecorderSink::new(Arc::clone(&recorder), Some(mem.clone()));
        assert!(sink.enabled());
        sink.emit(&Event::Admitted { at: 5, ty: TypeId::from_index(0) });
        assert_eq!(mem.len(), 1);
        assert_eq!(recorder.total_written(), 1);
        // And with no downstream at all, recording still happens.
        let solo = RecorderSink::new(Arc::clone(&recorder), None);
        assert!(solo.enabled());
        solo.emit(&Event::Tick { at: 6 });
        assert_eq!(recorder.total_written(), 2);
    }

    /// The satellite stress test: writers wrap their rings many times over
    /// while a reader snapshots concurrently. Every surfaced record must
    /// be internally consistent (`b == !a` — a torn read mixing two
    /// records would break the pairing) and every final window must hold
    /// exactly the newest `capacity` records.
    #[test]
    fn concurrent_overwrite_stress_never_tears() {
        let recorder = Recorder::new(64); // rounds to 64 slots
        let writers = 4;
        let per_writer = 20_000u64;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let recorder = Arc::clone(&recorder);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                loop {
                    // Snapshot-then-check, so at least one scan happens
                    // even if the writers already finished.
                    let done = stop.load(Ordering::Acquire);
                    let dump = recorder.snapshot();
                    for re in &dump.records {
                        assert_eq!(re.rec.b, !re.rec.a, "torn read: {:?}", re);
                        assert_eq!(re.rec.at, re.rec.a, "torn read: {:?}", re);
                    }
                    seen += dump.records.len() as u64;
                    if done {
                        break;
                    }
                }
                seen
            })
        };
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        let v = w * per_writer + i;
                        recorder.record(Record::new(v, RecordKind::Admitted, 0, v, !v));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let seen = reader.join().unwrap();
        assert!(seen > 0, "reader never observed a record");
        assert_eq!(recorder.ring_count(), writers as usize);
        assert_eq!(recorder.total_written(), writers * per_writer);
        // Quiescent now: every ring's final snapshot is exactly its newest
        // `capacity` records with the rest counted as dropped.
        let dump = recorder.snapshot();
        assert_eq!(dump.records.len(), writers as usize * 64);
        assert_eq!(dump.written, writers * per_writer);
        assert_eq!(dump.dropped, writers * (per_writer - 64));
    }

    #[test]
    fn hedge_records_pack_their_payloads() {
        let fired = Record::from_event(&Event::HedgeFired {
            at: 7,
            shard: 3,
            primary: 0,
            hedge: 1,
            delay: 250_000,
        });
        assert_eq!(fired.kind, RecordKind::HedgeFired);
        assert_eq!(fired.a >> 32, 3);
        assert_eq!(fired.a & 0xFFFF_FFFF, 0);
        assert_eq!(fired.b >> 32, 1);
        assert_eq!(fired.b & 0xFFFF_FFFF, 250_000);
        let routed = Record::from_event(&Event::ReplicaRouted {
            at: 8,
            shard: 2,
            replica: 1,
        });
        assert_eq!(routed.kind, RecordKind::ReplicaRouted);
        assert_eq!((routed.a, routed.b), (2, 1));
        let cancelled = Record::from_event(&Event::HedgeCancelled {
            at: 9,
            shard: 2,
            replica: 0,
        });
        assert_eq!(cancelled.kind, RecordKind::HedgeCancelled);
        assert_eq!((cancelled.a, cancelled.b), (2, 0));
    }

    #[test]
    fn kind_names_round_trip() {
        for v in 1..=26u8 {
            let k = RecordKind::from_u8(v);
            assert_ne!(k, RecordKind::Empty);
            assert_eq!(RecordKind::from_name(k.name()), Some(k));
        }
    }
}
