//! Query-lifecycle observability: structured events and metrics export.
//!
//! The framework and the policies describe what happens to every query —
//! admitted, rejected (and why), enqueued, dequeued, completed, expired —
//! plus the per-interval policy maintenance the paper's §3–§5 revolve
//! around (dual-buffer histogram swaps, acceptance-fraction threshold
//! updates, moving-average refreshes). This module gives those moments a
//! typed representation ([`Event`]) and a pluggable consumer
//! ([`EventSink`]) so the same instrumentation serves the simulator (with
//! virtual timestamps), the LIquid-like cluster (wall-clock timestamps),
//! and the CLI.
//!
//! Two shippable sinks are provided:
//!
//! * [`JsonlSink`] — one JSON object per line, for offline analysis
//!   (`--events-out` in the CLI).
//! * [`render_prometheus`] — the Prometheus text exposition format
//!   rendered from a [`StatsSnapshot`] (`--metrics-out` in the CLI).
//!
//! # Cost when disabled
//!
//! Every emission site is guarded by [`EventSink::enabled`]; the default
//! [`NullSink`] returns `false` from a non-capturing method, so a gate
//! without observability does one virtual call per batch of emissions and
//! never constructs an [`Event`]. `crates/bench/benches/overhead.rs`
//! keeps this on a leash.
//!
//! [`StatsSnapshot`]: crate::framework::StatsSnapshot

pub mod health;
mod json;
mod jsonl;
pub mod postmortem;
mod prometheus;
pub mod recorder;
mod trace;
pub mod trace_report;

pub use health::{HealthConfig, HealthSampler, TriggerConfig};
pub use json::{parse_json, JsonValue};
pub use jsonl::JsonlSink;
pub use prometheus::{
    render_prometheus, render_prometheus_full, render_prometheus_with_traces, validate_prometheus,
    HealthCounters, HedgeCounters, PoolCounters, TraceCounters, TypeRates,
};
pub use recorder::{Record, RecordKind, Recorder, RecorderDump, RecorderSink};
pub use trace::{
    new_span_id, new_trace_id, QueryTrace, SpanId, SpanKind, SpanStatus, TraceContext, TraceId,
    Tracer, TracerConfig,
};

use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

use bouncer_metrics::Nanos;

use crate::policy::RejectReason;
use crate::types::TypeId;

/// One observable moment in a query's life or a policy's maintenance.
///
/// All timestamps are whatever clock the emitting component runs on:
/// virtual nanoseconds under the simulator, monotonic wall-clock
/// nanoseconds in the threaded hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// The policy accepted the query (Point 1, before it enters the queue).
    Admitted {
        /// Decision time.
        at: Nanos,
        /// The query's type.
        ty: TypeId,
    },
    /// The policy (or the `L_limit` safeguard) turned the query away.
    Rejected {
        /// Decision time.
        at: Nanos,
        /// The query's type.
        ty: TypeId,
        /// Why it was turned away.
        reason: RejectReason,
    },
    /// The admitted query was placed in the FIFO queue.
    Enqueued {
        /// Enqueue time.
        at: Nanos,
        /// The query's type.
        ty: TypeId,
        /// Queue length right after the insert (this query included).
        queue_len: usize,
    },
    /// An engine pulled the query out of the queue (Point 2).
    Dequeued {
        /// Dequeue time.
        at: Nanos,
        /// The query's type.
        ty: TypeId,
        /// Time spent waiting in the queue.
        wait: Nanos,
    },
    /// The engine began processing the query.
    Started {
        /// Processing start time.
        at: Nanos,
        /// The query's type.
        ty: TypeId,
    },
    /// The query finished processing (Point 3).
    Completed {
        /// Completion time.
        at: Nanos,
        /// The query's type.
        ty: TypeId,
        /// Queue wait component of the response time.
        wait: Nanos,
        /// Processing component of the response time.
        processing: Nanos,
        /// Response time, `wait + processing` (Eq. 1 with ξ = 0).
        rt: Nanos,
    },
    /// An admitted query sat past its deadline and was dropped undone.
    Expired {
        /// The time the engine discovered the expiry.
        at: Nanos,
        /// The query's type.
        ty: TypeId,
        /// How long it had waited by then.
        wait: Nanos,
    },
    /// A policy swapped its dual-buffer histograms (Bouncer's per-interval
    /// refresh, §3.3).
    HistogramSwap {
        /// Swap time.
        at: Nanos,
        /// `AdmissionPolicy::name()` of the emitting policy.
        policy: &'static str,
    },
    /// A policy recomputed an admission threshold (AcceptFraction's
    /// acceptance fraction, §5.2.3).
    ThresholdUpdate {
        /// Update time.
        at: Nanos,
        /// `AdmissionPolicy::name()` of the emitting policy.
        policy: &'static str,
        /// The new threshold value (dimensionless).
        threshold: f64,
    },
    /// A policy's sliding moving average rolled forward (MaxQWT's
    /// `pt_mavg`, Eq. 5).
    MovingAvgRefresh {
        /// Refresh time.
        at: Nanos,
        /// `AdmissionPolicy::name()` of the emitting policy.
        policy: &'static str,
        /// The refreshed mean, in nanoseconds (0 when no samples).
        mean_ns: f64,
    },
    /// A policy rebuilt one query type's entry in its interval-cached
    /// estimate table (Bouncer's per-swap refresh of the cached Eq. 2–4
    /// inputs); emitted once per type at each rebuild.
    EstimateRefresh {
        /// Rebuild time.
        at: Nanos,
        /// `AdmissionPolicy::name()` of the emitting policy.
        policy: &'static str,
        /// The query type this entry prices.
        ty: TypeId,
        /// `false` while the type still decides via the general histogram
        /// and the `default` SLO (Appendix A warm-up).
        warm: bool,
        /// The cached `pt_mean`, in nanoseconds (0 when everything is cold).
        mean_ns: f64,
        /// The cached percentile estimate for the SLO's last (tail) target,
        /// when resolved — e.g. `pt_p90` under a p50/p90 SLO.
        pt_tail_ns: Option<Nanos>,
    },
    /// The scenario a run was constructed from, emitted once at stream
    /// start so every JSONL file names the exact spec that produced it.
    Scenario {
        /// Emission time (stream start).
        at: Nanos,
        /// The scenario's FNV-1a 64 content hash
        /// (`ScenarioSpec::content_hash`).
        hash: u64,
    },
    /// The control plane decided a new value for a policy parameter from
    /// an interval's telemetry (ADAPTIVE.md). Emitted by the controller
    /// the moment the law runs; the value takes effect at the *next*
    /// maintenance boundary (see [`Event::ParamUpdate`]).
    ControllerDecision {
        /// Decision time (the end of the telemetry interval).
        at: Nanos,
        /// The control law that ran (`"aimd"`, `"budget"`, `"gradient"`).
        law: &'static str,
        /// The targeted parameter (`"max_utilization"`, `"allowance"`,
        /// `"alpha"`).
        param: &'static str,
        /// The newly decided parameter value.
        value: f64,
        /// Overall SLO attainment observed over the interval, in `[0, 1]`.
        attainment: f64,
        /// Overall rejection rate observed over the interval, in `[0, 1]`.
        rejection: f64,
    },
    /// A staged parameter value was installed into the live policy at a
    /// maintenance boundary (`on_tick`) — the Act step of the control
    /// plane, deliberately decoupled from [`Event::ControllerDecision`]
    /// so retuning never lands mid-interval (DESIGN.md S35).
    ParamUpdate {
        /// Install time (the maintenance tick that applied it).
        at: Nanos,
        /// `AdmissionPolicy::name()` of the retuned policy.
        policy: &'static str,
        /// The installed parameter (`"max_utilization"`, `"allowance"`,
        /// `"alpha"`).
        param: &'static str,
        /// The now-live parameter value.
        value: f64,
    },
    /// One closed tracing span: a causally-linked segment of a query's
    /// life (see [`SpanKind`] for the taxonomy). Emitted on close, so
    /// `at == end`.
    Span {
        /// Emission time (the span's close).
        at: Nanos,
        /// The trace this span belongs to.
        trace: TraceId,
        /// The span's own id.
        span: SpanId,
        /// The parent span, `None` on trace roots.
        parent: Option<SpanId>,
        /// What the span represents.
        kind: SpanKind,
        /// Span open time.
        start: Nanos,
        /// Span close time.
        end: Nanos,
        /// The query's type, stamped on root spans where known.
        ty: Option<TypeId>,
        /// How the traced work ended (always `Ok` on non-root spans).
        status: SpanStatus,
    },
    /// A snapshot of a transport encode-buffer pool's hit/miss totals,
    /// emitted at a natural boundary (cluster shutdown, periodic flush)
    /// rather than per `get()` so the hot path stays untouched.
    PoolStats {
        /// Snapshot time.
        at: Nanos,
        /// Which pool this snapshot describes (e.g. `"shard_client"`,
        /// `"broker_client"`).
        pool: &'static str,
        /// `get()` calls served from a recycled buffer since creation.
        hits: u64,
        /// `get()` calls that had to allocate a fresh buffer.
        misses: u64,
        /// Buffers parked in the pool at snapshot time.
        pooled: u64,
    },
    /// A heartbeat with no lifecycle payload: the simulator emits one per
    /// maintenance tick (virtual time) and the cluster's health probe
    /// thread one per probe (wall clock), so time-driven consumers — the
    /// [`health::HealthSampler`] foremost — advance even when no queries
    /// flow.
    Tick {
        /// Tick time.
        at: Nanos,
    },
    /// One periodic health snapshot (see OBSERVABILITY.md): system-wide
    /// gauges folded from the event stream plus transport probes, emitted
    /// by the [`health::HealthSampler`] every sample interval. Per-type
    /// rates ride in the companion [`Event::TypeHealth`] events emitted at
    /// the same instant.
    HealthSample {
        /// Sample time (the end of the sample window).
        at: Nanos,
        /// Queries sitting in FIFO queues (and transport rings) right now,
        /// folded from enqueue/dequeue/expire events across every gate the
        /// sampled sink serves.
        queue_depth: u64,
        /// Queries dequeued but not yet completed (being processed).
        in_flight: u64,
        /// Occupancy summed over the SPSC transport rings, when probed
        /// (rings transport only; 0 otherwise).
        ring_occupancy: u64,
        /// Buffer-pool `get()` hits at sample time (TCP transport; 0
        /// otherwise).
        pool_hits: u64,
        /// Buffer-pool `get()` misses at sample time.
        pool_misses: u64,
        /// Buffers parked in pools at sample time.
        pool_pooled: u64,
        /// Fraction of completions inside their SLO tail target over the
        /// window, in `[0, 1]` (1 when nothing completed).
        attainment: f64,
        /// Rejected / received over the window, in `[0, 1]` (0 when
        /// nothing arrived).
        rejection: f64,
    },
    /// Per-type companion to [`Event::HealthSample`]: one per query type
    /// that saw traffic in the closed window.
    TypeHealth {
        /// Sample time (same instant as the owning `health_sample`).
        at: Nanos,
        /// The query type.
        ty: TypeId,
        /// Admission decisions (admitted + rejected) in the window.
        received: u64,
        /// Rejections in the window.
        rejected: u64,
        /// Completions in the window.
        completed: u64,
        /// Completions within the type's SLO tail target.
        within_slo: u64,
    },
    /// A rings engine thread crossed an idle boundary: `parked = true`
    /// when it found every ring empty and parked on its waker,
    /// `parked = false` when work woke it. Emitted only on transitions —
    /// the busy loop never emits — so the flight recorder can reconstruct
    /// engine idleness around an incident.
    EngineState {
        /// Transition time.
        at: Nanos,
        /// Engine index within its host.
        engine: u32,
        /// `true` entering park, `false` waking.
        parked: bool,
    },
    /// One-shot storage summary of a loaded graph, emitted when a liquid
    /// cluster finishes building its CSR store at spawn: sizes and the
    /// amortized per-entry heap cost the ADR-001 G1 gate watches.
    GraphStats {
        /// Emission time.
        at: Nanos,
        /// Vertex count.
        vertices: u64,
        /// Undirected edge count.
        edges: u64,
        /// Heap bytes held by the storage (allocator chunk overhead
        /// included).
        heap_bytes: u64,
        /// `heap_bytes` per stored adjacency entry (2× edges).
        bytes_per_edge: f64,
    },
    /// The health sampler's trigger engine fired and wrote an incident
    /// dump (flight-recorder rings + trailing health samples) to disk.
    Incident {
        /// Trigger time.
        at: Nanos,
        /// Which trigger fired (`"rejection_spike"`, `"slo_burst"`,
        /// `"controller_backoff"`, `"forced"`).
        reason: &'static str,
        /// Flight-recorder records written into the dump.
        records: u64,
    },
    /// A broker routed one round's per-shard sub-query batch to a replica.
    /// Emitted only on replicated clusters (R > 1), so unreplicated event
    /// streams are byte-identical to pre-replication ones.
    ReplicaRouted {
        /// Routing time (the send).
        at: Nanos,
        /// The logical shard the batch targets.
        shard: u32,
        /// The replica chosen by the routing strategy.
        replica: u32,
    },
    /// The hedged routing strategy fired a duplicate sub-query to a second
    /// replica after the primary outlived the quantile-based hedge delay.
    HedgeFired {
        /// Fire time.
        at: Nanos,
        /// The logical shard being hedged.
        shard: u32,
        /// The replica the original sub-query went to.
        primary: u32,
        /// The replica the duplicate went to.
        hedge: u32,
        /// How long the broker waited before hedging.
        delay: Nanos,
    },
    /// A hedge race resolved: the first reply won and the loser was sent a
    /// cancel (honored at dequeue, refunding its queued demand).
    HedgeCancelled {
        /// Cancel time (the winner's arrival).
        at: Nanos,
        /// The logical shard that was hedged.
        shard: u32,
        /// The replica whose in-flight duplicate was cancelled.
        replica: u32,
    },
}

impl Event {
    /// The event's snake_case name, as used in the JSONL `event` field.
    pub fn name(&self) -> &'static str {
        match self {
            Event::Admitted { .. } => "admitted",
            Event::Rejected { .. } => "rejected",
            Event::Enqueued { .. } => "enqueued",
            Event::Dequeued { .. } => "dequeued",
            Event::Started { .. } => "started",
            Event::Completed { .. } => "completed",
            Event::Expired { .. } => "expired",
            Event::HistogramSwap { .. } => "histogram_swap",
            Event::ThresholdUpdate { .. } => "threshold_update",
            Event::MovingAvgRefresh { .. } => "moving_avg_refresh",
            Event::EstimateRefresh { .. } => "estimate_refresh",
            Event::Scenario { .. } => "scenario",
            Event::ControllerDecision { .. } => "controller_decision",
            Event::ParamUpdate { .. } => "param_update",
            Event::Span { .. } => "span",
            Event::PoolStats { .. } => "pool_stats",
            Event::Tick { .. } => "tick",
            Event::HealthSample { .. } => "health_sample",
            Event::TypeHealth { .. } => "type_health",
            Event::EngineState { .. } => "engine_state",
            Event::GraphStats { .. } => "graph_stats",
            Event::Incident { .. } => "incident",
            Event::ReplicaRouted { .. } => "replica_routed",
            Event::HedgeFired { .. } => "hedge_fired",
            Event::HedgeCancelled { .. } => "hedge_cancelled",
        }
    }

    /// The event's timestamp.
    pub fn at(&self) -> Nanos {
        match *self {
            Event::Admitted { at, .. }
            | Event::Rejected { at, .. }
            | Event::Enqueued { at, .. }
            | Event::Dequeued { at, .. }
            | Event::Started { at, .. }
            | Event::Completed { at, .. }
            | Event::Expired { at, .. }
            | Event::HistogramSwap { at, .. }
            | Event::ThresholdUpdate { at, .. }
            | Event::MovingAvgRefresh { at, .. }
            | Event::EstimateRefresh { at, .. }
            | Event::Scenario { at, .. }
            | Event::ControllerDecision { at, .. }
            | Event::ParamUpdate { at, .. }
            | Event::Span { at, .. }
            | Event::PoolStats { at, .. }
            | Event::Tick { at }
            | Event::HealthSample { at, .. }
            | Event::TypeHealth { at, .. }
            | Event::EngineState { at, .. }
            | Event::GraphStats { at, .. }
            | Event::Incident { at, .. }
            | Event::ReplicaRouted { at, .. }
            | Event::HedgeFired { at, .. }
            | Event::HedgeCancelled { at, .. } => at,
        }
    }

    /// The query type, for lifecycle events; `None` for policy events.
    pub fn ty(&self) -> Option<TypeId> {
        match *self {
            Event::Admitted { ty, .. }
            | Event::Rejected { ty, .. }
            | Event::Enqueued { ty, .. }
            | Event::Dequeued { ty, .. }
            | Event::Started { ty, .. }
            | Event::Completed { ty, .. }
            | Event::Expired { ty, .. }
            | Event::EstimateRefresh { ty, .. }
            | Event::TypeHealth { ty, .. } => Some(ty),
            Event::Span { ty, .. } => ty,
            Event::HistogramSwap { .. }
            | Event::ThresholdUpdate { .. }
            | Event::MovingAvgRefresh { .. }
            | Event::Scenario { .. }
            | Event::ControllerDecision { .. }
            | Event::ParamUpdate { .. }
            | Event::PoolStats { .. }
            | Event::Tick { .. }
            | Event::HealthSample { .. }
            | Event::EngineState { .. }
            | Event::GraphStats { .. }
            | Event::Incident { .. }
            | Event::ReplicaRouted { .. }
            | Event::HedgeFired { .. }
            | Event::HedgeCancelled { .. } => None,
        }
    }
}

/// A consumer of [`Event`]s.
///
/// `Debug` is a supertrait so sinks can ride inside `#[derive(Debug)]`
/// configuration structs (`SimConfig`, `ClusterConfig`). Implementations
/// must be thread-safe: transport and engine threads emit concurrently.
pub trait EventSink: Send + Sync + fmt::Debug {
    /// Cheap pre-check emission sites call before constructing an
    /// [`Event`]. Return `false` to keep event construction entirely off
    /// the hot path.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event. Only called when [`EventSink::enabled`] is
    /// `true` at the emission site.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output. Default: nothing to flush.
    fn flush(&self) {}
}

/// The do-nothing sink: [`EventSink::enabled`] is `false`, so emission
/// sites skip event construction altogether.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn emit(&self, _event: &Event) {}
}

/// A shared handle to the disabled sink.
pub fn null_sink() -> Arc<dyn EventSink> {
    Arc::new(NullSink)
}

/// An in-memory sink that records every event, for tests and examples.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(*event);
    }
}

/// A late-bound sink holder for policies.
///
/// Policies are constructed before the gate (and therefore before the
/// sink) exists, so they hold a `SinkSlot` that the framework fills in via
/// [`AdmissionPolicy::attach_sink`]. Policies read the slot only from
/// `on_tick` — a cold path — so the interior `Mutex` never contends with
/// admission decisions.
///
/// [`AdmissionPolicy::attach_sink`]: crate::policy::AdmissionPolicy::attach_sink
#[derive(Debug, Default)]
pub struct SinkSlot {
    sink: Mutex<Option<Arc<dyn EventSink>>>,
}

impl SinkSlot {
    /// An empty slot; emissions are no-ops until a sink is attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the sink.
    pub fn attach(&self, sink: Arc<dyn EventSink>) {
        *self.sink.lock().unwrap_or_else(PoisonError::into_inner) = Some(sink);
    }

    /// Emits through the attached sink, if any and enabled. `event` is
    /// built lazily so empty/disabled slots pay nothing beyond the lock.
    pub fn emit(&self, event: impl FnOnce() -> Event) {
        let guard = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(sink) = guard.as_ref() {
            if sink.enabled() {
                sink.emit(&event());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = null_sink();
        assert!(!sink.enabled());
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        sink.emit(&Event::Admitted { at: 1, ty: TypeId(0) });
        sink.emit(&Event::Completed {
            at: 5,
            ty: TypeId(0),
            wait: 1,
            processing: 3,
            rt: 4,
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name(), "admitted");
        assert_eq!(events[1].name(), "completed");
        assert_eq!(events[1].at(), 5);
        assert_eq!(events[0].ty(), Some(TypeId(0)));
    }

    #[test]
    fn sink_slot_emits_only_once_attached() {
        let slot = SinkSlot::new();
        let counted = Arc::new(MemorySink::new());
        slot.emit(|| unreachable!("no sink attached"));
        slot.attach(counted.clone());
        slot.emit(|| Event::HistogramSwap { at: 7, policy: "bouncer" });
        assert_eq!(counted.len(), 1);
    }

    #[test]
    fn policy_events_have_no_type() {
        let e = Event::ThresholdUpdate {
            at: 1,
            policy: "acceptfraction",
            threshold: 0.8,
        };
        assert_eq!(e.ty(), None);
        assert_eq!(e.name(), "threshold_update");
    }
}
