//! Prometheus text exposition format, rendered from a [`StatsSnapshot`].
//!
//! The renderer produces the classic text format (version 0.0.4): `# HELP`
//! and `# TYPE` comments followed by samples, counters suffixed `_total`,
//! base units (seconds, ratios), and the three latency distributions as
//! summaries with `quantile` labels. [`validate_prometheus`] is a strict
//! checker for tests and for the CLI's own output.

use std::fmt::Write as _;

use bouncer_metrics::histogram::HistogramSnapshot;
use bouncer_metrics::time::as_secs_f64;

use crate::framework::StatsSnapshot;
use crate::policy::RejectReason;

/// The quantiles exported for each latency summary.
const QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Tracing-sampler totals, exported alongside the query stats so scrape
/// dashboards can see whether (and how hard) sampling is biting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Traces emitted (`Tracer::sampled_total`).
    pub sampled: u64,
    /// Traces discarded by sampling (`Tracer::dropped_total`).
    pub dropped: u64,
}

/// Encode-buffer pool totals, exported so dashboards can tell whether the
/// transport tier is recycling buffers (hits) or allocating fresh ones
/// (misses) under the current load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// `get()` calls served from a recycled buffer.
    pub hits: u64,
    /// `get()` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers currently parked in the pool.
    pub pooled: u64,
}

/// One type's health rates for the exposition (see [`HealthCounters`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeRates {
    /// Dense type index (labels through `type_names`).
    pub index: usize,
    /// Cumulative SLO attainment (completions within the tail target /
    /// completions), in `[0, 1]`.
    pub attainment: f64,
    /// Cumulative rejection rate (rejected / received), in `[0, 1]`.
    pub rejection: f64,
}

/// Replica-routing totals, exported so dashboards can see how often the
/// hedged strategy duplicated work and how much of it was clawed back by
/// cancellation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HedgeCounters {
    /// Hedge duplicates fired at a second replica.
    pub hedges: u64,
    /// Hedge losers cancelled after the race resolved.
    pub cancels: u64,
}

/// Health-sampler gauges, exported so scrapes see the episode-explaining
/// signals — queue depth, in-flight work, transport ring occupancy, and
/// per-type attainment/rejection — not just end-of-run latency summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthCounters {
    /// Queries sitting in FIFO queues / transport rings at sample time.
    pub queue_depth: u64,
    /// Queries dequeued but not yet completed.
    pub in_flight: u64,
    /// Occupancy summed over SPSC transport rings, when probed (rings
    /// transport only).
    pub ring_occupancy: Option<u64>,
    /// Events a lossy sink (e.g. [`super::JsonlSink`]) failed to write.
    pub events_dropped: u64,
    /// Incident dumps the trigger engine has written.
    pub incidents: u64,
    /// Per-type cumulative rates; only types that saw traffic.
    pub per_type: Vec<TypeRates>,
}

/// Renders `snap` in the Prometheus text format.
///
/// `type_names[i]` labels the type with dense index `i`; indexes past the
/// end of `type_names` fall back to `type_<i>`. Types that saw no traffic
/// are omitted entirely to keep scrapes small.
pub fn render_prometheus(snap: &StatsSnapshot, type_names: &[&str]) -> String {
    render_prometheus_with_traces(snap, type_names, None)
}

/// [`render_prometheus`], optionally appending the tracing-sampler counter
/// pair (`bouncer_trace_sampled_total` / `bouncer_trace_dropped_total`).
pub fn render_prometheus_with_traces(
    snap: &StatsSnapshot,
    type_names: &[&str],
    traces: Option<&TraceCounters>,
) -> String {
    render_prometheus_full(snap, type_names, traces, None, None, None)
}

/// [`render_prometheus_with_traces`], optionally also appending the
/// transport buffer-pool counters (`bouncer_buffer_pool_hits_total` /
/// `bouncer_buffer_pool_misses_total`), the `bouncer_buffer_pool_buffers`
/// gauge, and the health-sampler gauge families (`bouncer_queue_depth`,
/// `bouncer_in_flight`, `bouncer_ring_occupancy`,
/// `bouncer_events_dropped_total`, `bouncer_incidents_total`,
/// `bouncer_slo_attainment_ratio`, `bouncer_rejection_ratio`), and the
/// replica-routing counter pair (`bouncer_hedges_total` /
/// `bouncer_hedge_cancels_total`).
pub fn render_prometheus_full(
    snap: &StatsSnapshot,
    type_names: &[&str],
    traces: Option<&TraceCounters>,
    pool: Option<&PoolCounters>,
    health: Option<&HealthCounters>,
    hedges: Option<&HedgeCounters>,
) -> String {
    let name_of = |i: usize| -> String {
        type_names
            .get(i)
            .map(|n| escape_label(n))
            .unwrap_or_else(|| format!("type_{i}"))
    };
    let active: Vec<usize> = (0..snap.per_type.len())
        .filter(|&i| {
            let t = &snap.per_type[i];
            t.received > 0 || t.completed > 0
        })
        .collect();

    let mut out = String::with_capacity(4096);

    for (metric, help, field) in [
        (
            "bouncer_queries_received_total",
            "Queries received, before the admission decision.",
            0usize,
        ),
        (
            "bouncer_queries_accepted_total",
            "Queries admitted into the FIFO queue.",
            1,
        ),
        (
            "bouncer_queries_completed_total",
            "Queries fully processed.",
            2,
        ),
        (
            "bouncer_queries_expired_total",
            "Admitted queries dropped after expiring in the queue.",
            3,
        ),
    ] {
        let _ = writeln!(out, "# HELP {metric} {help}");
        let _ = writeln!(out, "# TYPE {metric} counter");
        for &i in &active {
            let t = &snap.per_type[i];
            let v = [t.received, t.accepted, t.completed, t.expired][field];
            let _ = writeln!(out, "{metric}{{type=\"{}\"}} {v}", name_of(i));
        }
    }

    let _ = writeln!(
        out,
        "# HELP bouncer_queries_rejected_total Queries rejected, by reason."
    );
    let _ = writeln!(out, "# TYPE bouncer_queries_rejected_total counter");
    for &i in &active {
        let t = &snap.per_type[i];
        for reason in RejectReason::ALL {
            let count = t.rejected_by_reason[reason.index()];
            if count > 0 {
                let _ = writeln!(
                    out,
                    "bouncer_queries_rejected_total{{type=\"{}\",reason=\"{}\"}} {count}",
                    name_of(i),
                    reason.label()
                );
            }
        }
    }

    for (metric, help, pick) in [
        (
            "bouncer_response_time_seconds",
            "Response time (queue wait + processing) of serviced queries.",
            0usize,
        ),
        (
            "bouncer_queue_wait_seconds",
            "Queue wait time of serviced queries.",
            1,
        ),
        (
            "bouncer_processing_time_seconds",
            "Processing time of serviced queries.",
            2,
        ),
    ] {
        let _ = writeln!(out, "# HELP {metric} {help}");
        let _ = writeln!(out, "# TYPE {metric} summary");
        for &i in &active {
            let t = &snap.per_type[i];
            let hist: &HistogramSnapshot = [&t.response, &t.wait, &t.processing][pick];
            let ty = name_of(i);
            for q in QUANTILES {
                if let Some(v) = hist.value_at_quantile(q) {
                    let _ = writeln!(
                        out,
                        "{metric}{{type=\"{ty}\",quantile=\"{q}\"}} {}",
                        as_secs_f64(v)
                    );
                }
            }
            let sum = hist.mean().unwrap_or(0.0) * hist.count() as f64 / 1e9;
            let _ = writeln!(out, "{metric}_sum{{type=\"{ty}\"}} {sum}");
            let _ = writeln!(out, "{metric}_count{{type=\"{ty}\"}} {}", hist.count());
        }
    }

    let _ = writeln!(
        out,
        "# HELP bouncer_engine_utilization_ratio Busy time over P x span, in [0, 1]."
    );
    let _ = writeln!(out, "# TYPE bouncer_engine_utilization_ratio gauge");
    let _ = writeln!(out, "bouncer_engine_utilization_ratio {}", snap.utilization);

    let _ = writeln!(
        out,
        "# HELP bouncer_measurement_span_seconds Length of the measurement window."
    );
    let _ = writeln!(out, "# TYPE bouncer_measurement_span_seconds gauge");
    let _ = writeln!(
        out,
        "bouncer_measurement_span_seconds {}",
        as_secs_f64(snap.span)
    );

    if let Some(tc) = traces {
        let _ = writeln!(
            out,
            "# HELP bouncer_trace_sampled_total Traces emitted by the tracing sampler."
        );
        let _ = writeln!(out, "# TYPE bouncer_trace_sampled_total counter");
        let _ = writeln!(out, "bouncer_trace_sampled_total {}", tc.sampled);
        let _ = writeln!(
            out,
            "# HELP bouncer_trace_dropped_total Traces discarded by the tracing sampler."
        );
        let _ = writeln!(out, "# TYPE bouncer_trace_dropped_total counter");
        let _ = writeln!(out, "bouncer_trace_dropped_total {}", tc.dropped);
    }

    if let Some(pc) = pool {
        let _ = writeln!(
            out,
            "# HELP bouncer_buffer_pool_hits_total Encode-buffer requests served from the pool."
        );
        let _ = writeln!(out, "# TYPE bouncer_buffer_pool_hits_total counter");
        let _ = writeln!(out, "bouncer_buffer_pool_hits_total {}", pc.hits);
        let _ = writeln!(
            out,
            "# HELP bouncer_buffer_pool_misses_total Encode-buffer requests that allocated fresh."
        );
        let _ = writeln!(out, "# TYPE bouncer_buffer_pool_misses_total counter");
        let _ = writeln!(out, "bouncer_buffer_pool_misses_total {}", pc.misses);
        let _ = writeln!(
            out,
            "# HELP bouncer_buffer_pool_buffers Buffers currently parked in the pool."
        );
        let _ = writeln!(out, "# TYPE bouncer_buffer_pool_buffers gauge");
        let _ = writeln!(out, "bouncer_buffer_pool_buffers {}", pc.pooled);
    }

    if let Some(hc) = health {
        let _ = writeln!(
            out,
            "# HELP bouncer_queue_depth Queries in FIFO queues and transport rings at sample time."
        );
        let _ = writeln!(out, "# TYPE bouncer_queue_depth gauge");
        let _ = writeln!(out, "bouncer_queue_depth {}", hc.queue_depth);
        let _ = writeln!(
            out,
            "# HELP bouncer_in_flight Queries dequeued but not yet completed."
        );
        let _ = writeln!(out, "# TYPE bouncer_in_flight gauge");
        let _ = writeln!(out, "bouncer_in_flight {}", hc.in_flight);
        if let Some(occ) = hc.ring_occupancy {
            let _ = writeln!(
                out,
                "# HELP bouncer_ring_occupancy Entries occupying SPSC transport rings."
            );
            let _ = writeln!(out, "# TYPE bouncer_ring_occupancy gauge");
            let _ = writeln!(out, "bouncer_ring_occupancy {occ}");
        }
        let _ = writeln!(
            out,
            "# HELP bouncer_events_dropped_total Events a lossy sink failed to write."
        );
        let _ = writeln!(out, "# TYPE bouncer_events_dropped_total counter");
        let _ = writeln!(out, "bouncer_events_dropped_total {}", hc.events_dropped);
        let _ = writeln!(
            out,
            "# HELP bouncer_incidents_total Incident dumps written by the trigger engine."
        );
        let _ = writeln!(out, "# TYPE bouncer_incidents_total counter");
        let _ = writeln!(out, "bouncer_incidents_total {}", hc.incidents);
        if !hc.per_type.is_empty() {
            let _ = writeln!(
                out,
                "# HELP bouncer_slo_attainment_ratio Completions within the SLO tail target over completions."
            );
            let _ = writeln!(out, "# TYPE bouncer_slo_attainment_ratio gauge");
            for tr in &hc.per_type {
                let _ = writeln!(
                    out,
                    "bouncer_slo_attainment_ratio{{type=\"{}\"}} {}",
                    name_of(tr.index),
                    tr.attainment
                );
            }
            let _ = writeln!(
                out,
                "# HELP bouncer_rejection_ratio Rejected over received, per type."
            );
            let _ = writeln!(out, "# TYPE bouncer_rejection_ratio gauge");
            for tr in &hc.per_type {
                let _ = writeln!(
                    out,
                    "bouncer_rejection_ratio{{type=\"{}\"}} {}",
                    name_of(tr.index),
                    tr.rejection
                );
            }
        }
    }

    if let Some(hg) = hedges {
        let _ = writeln!(
            out,
            "# HELP bouncer_hedges_total Hedge duplicates fired at a second replica."
        );
        let _ = writeln!(out, "# TYPE bouncer_hedges_total counter");
        let _ = writeln!(out, "bouncer_hedges_total {}", hg.hedges);
        let _ = writeln!(
            out,
            "# HELP bouncer_hedge_cancels_total Hedge losers cancelled after the race resolved."
        );
        let _ = writeln!(out, "# TYPE bouncer_hedge_cancels_total counter");
        let _ = writeln!(out, "bouncer_hedge_cancels_total {}", hg.cancels);
    }

    out
}

/// Escapes a label value (backslash, quote, newline) per the text format.
fn escape_label(raw: &str) -> String {
    raw.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Validates Prometheus text-format output; returns the number of samples.
///
/// Checks that every sample line is `name[{labels}] value` with a valid
/// metric name, well-formed quoted labels, and a parseable float value —
/// and that each sample's metric family was declared by a preceding
/// `# TYPE` line (`_sum`/`_count`/`_bucket` suffixes resolve to their base
/// family).
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {lineno}: bare # TYPE"))?;
            let kind = parts.next().ok_or(format!("line {lineno}: # TYPE missing kind"))?;
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                return Err(format!("line {lineno}: unknown metric kind `{kind}`"));
            }
            declared.push(name.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if name.is_empty() || name.chars().next().unwrap().is_ascii_digit() {
            return Err(format!("line {lineno}: invalid metric name in `{line}`"));
        }
        let mut rest = &line[name_end..];

        if let Some(after) = rest.strip_prefix('{') {
            let close = find_label_close(after)
                .ok_or(format!("line {lineno}: unterminated label set"))?;
            validate_labels(&after[..close]).map_err(|e| format!("line {lineno}: {e}"))?;
            rest = &after[close + 1..];
        }

        let value = rest.trim();
        if value.parse::<f64>().is_err()
            && !matches!(value, "+Inf" | "-Inf" | "NaN")
        {
            return Err(format!("line {lineno}: unparseable value `{value}`"));
        }

        let family = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .or_else(|| name.strip_suffix("_bucket"))
            .unwrap_or(name);
        if !declared.iter().any(|d| d == family || d == name) {
            return Err(format!("line {lineno}: sample `{name}` has no # TYPE"));
        }
        samples += 1;
    }
    Ok(samples)
}

/// Index of the unquoted `}` closing a label set (respects escapes).
fn find_label_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1, // skip the escaped byte
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Validates `key="value"` pairs separated by commas.
fn validate_labels(s: &str) -> Result<(), String> {
    if s.is_empty() {
        return Ok(());
    }
    let mut rest = s;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{rest}`"))?;
        let key = &rest[..eq];
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(format!("bad label name `{key}`"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value after `{key}`"));
        }
        // Scan the quoted value, honoring escapes.
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated value for `{key}`")),
                Some(b'\\') => i += 2,
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        rest = &rest[i + 1..];
        match rest.strip_prefix(',') {
            Some(next) => rest = next,
            None if rest.is_empty() => return Ok(()),
            None => return Err(format!("junk after label value: `{rest}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::ServerStats;
    use crate::policy::RejectReason;
    use crate::types::TypeId;
    use bouncer_metrics::time::{millis, secs};

    fn populated_snapshot() -> StatsSnapshot {
        let stats = ServerStats::new(3);
        for _ in 0..10 {
            stats.on_received(TypeId(0));
            stats.on_accepted(TypeId(0));
            stats.on_completed(TypeId(0), millis(2), millis(8));
        }
        stats.on_received(TypeId(1));
        stats.on_rejected(TypeId(1), RejectReason::PredictedSloViolation);
        stats.on_received(TypeId(1));
        stats.on_rejected(TypeId(1), RejectReason::QueueFull);
        // TypeId(2) stays silent and must not appear in the output.
        stats.snapshot(secs(2), 4)
    }

    #[test]
    fn rendered_output_validates() {
        let text = render_prometheus(&populated_snapshot(), &["fast", "medium fast"]);
        let samples = validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(samples > 10, "only {samples} samples:\n{text}");
    }

    #[test]
    fn counters_and_labels_are_present() {
        let text = render_prometheus(&populated_snapshot(), &["fast", "medium fast"]);
        assert!(text.contains("bouncer_queries_received_total{type=\"fast\"} 10"));
        assert!(text.contains(
            "bouncer_queries_rejected_total{type=\"medium fast\",reason=\"predicted-slo-violation\"} 1"
        ));
        assert!(text.contains("bouncer_queries_rejected_total{type=\"medium fast\",reason=\"queue-full\"} 1"));
        assert!(text.contains("bouncer_response_time_seconds{type=\"fast\",quantile=\"0.5\"}"));
        assert!(text.contains("bouncer_response_time_seconds_count{type=\"fast\"} 10"));
        assert!(text.contains("bouncer_engine_utilization_ratio"));
        // Silent type omitted; fallback naming unused here.
        assert!(!text.contains("type_2"));
    }

    #[test]
    fn missing_names_fall_back_to_index() {
        let text = render_prometheus(&populated_snapshot(), &["fast"]);
        assert!(text.contains("type=\"type_1\""));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn label_escaping_stays_valid() {
        let text = render_prometheus(&populated_snapshot(), &["fa\"st", "b\\ack"]);
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_prometheus("no_type_decl 1").is_err());
        assert!(validate_prometheus("# TYPE m counter\nm{unclosed 1").is_err());
        assert!(validate_prometheus("# TYPE m counter\nm{a=\"b\"} notanumber").is_err());
        assert!(validate_prometheus("# TYPE m wat\nm 1").is_err());
        assert_eq!(validate_prometheus("# TYPE m counter\nm{a=\"b\"} 1").unwrap(), 1);
    }

    #[test]
    fn summary_suffixes_resolve_to_family() {
        let text = "# TYPE s summary\ns_sum{type=\"a\"} 1.5\ns_count{type=\"a\"} 3\n";
        assert_eq!(validate_prometheus(text).unwrap(), 2);
    }

    #[test]
    fn trace_counters_render_and_validate() {
        let counters = TraceCounters {
            sampled: 12,
            dropped: 345,
        };
        let text =
            render_prometheus_with_traces(&populated_snapshot(), &["fast"], Some(&counters));
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("# TYPE bouncer_trace_sampled_total counter"));
        assert!(text.contains("bouncer_trace_sampled_total 12"));
        assert!(text.contains("# TYPE bouncer_trace_dropped_total counter"));
        assert!(text.contains("bouncer_trace_dropped_total 345"));
        // Without counters the pair is absent and output still validates.
        let text = render_prometheus(&populated_snapshot(), &["fast"]);
        validate_prometheus(&text).unwrap();
        assert!(!text.contains("bouncer_trace_sampled_total"));
    }

    #[test]
    fn pool_counters_render_and_validate() {
        let pool = PoolCounters {
            hits: 90,
            misses: 7,
            pooled: 4,
        };
        let text =
            render_prometheus_full(&populated_snapshot(), &["fast"], None, Some(&pool), None, None);
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("# TYPE bouncer_buffer_pool_hits_total counter"));
        assert!(text.contains("bouncer_buffer_pool_hits_total 90"));
        assert!(text.contains("bouncer_buffer_pool_misses_total 7"));
        assert!(text.contains("# TYPE bouncer_buffer_pool_buffers gauge"));
        assert!(text.contains("bouncer_buffer_pool_buffers 4"));
        // Without pool counters the family is absent and output validates.
        let text = render_prometheus(&populated_snapshot(), &["fast"]);
        validate_prometheus(&text).unwrap();
        assert!(!text.contains("bouncer_buffer_pool"));
    }

    #[test]
    fn health_gauges_render_and_validate() {
        let health = HealthCounters {
            queue_depth: 17,
            in_flight: 3,
            ring_occupancy: Some(5),
            events_dropped: 2,
            incidents: 1,
            per_type: vec![
                TypeRates {
                    index: 0,
                    attainment: 0.875,
                    rejection: 0.125,
                },
                TypeRates {
                    index: 1,
                    attainment: 1.0,
                    rejection: 0.0,
                },
            ],
        };
        let text = render_prometheus_full(
            &populated_snapshot(),
            &["fast", "medium"],
            None,
            None,
            Some(&health),
            None,
        );
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        // Every new family is declared and sampled.
        assert!(text.contains("# TYPE bouncer_queue_depth gauge"));
        assert!(text.contains("bouncer_queue_depth 17"));
        assert!(text.contains("# TYPE bouncer_in_flight gauge"));
        assert!(text.contains("bouncer_in_flight 3"));
        assert!(text.contains("# TYPE bouncer_ring_occupancy gauge"));
        assert!(text.contains("bouncer_ring_occupancy 5"));
        assert!(text.contains("# TYPE bouncer_events_dropped_total counter"));
        assert!(text.contains("bouncer_events_dropped_total 2"));
        assert!(text.contains("# TYPE bouncer_incidents_total counter"));
        assert!(text.contains("bouncer_incidents_total 1"));
        assert!(text.contains("# TYPE bouncer_slo_attainment_ratio gauge"));
        assert!(text.contains("bouncer_slo_attainment_ratio{type=\"fast\"} 0.875"));
        assert!(text.contains("bouncer_slo_attainment_ratio{type=\"medium\"} 1"));
        assert!(text.contains("# TYPE bouncer_rejection_ratio gauge"));
        assert!(text.contains("bouncer_rejection_ratio{type=\"fast\"} 0.125"));
    }

    #[test]
    fn health_gauges_absent_without_counters_and_optional_fields_drop_out() {
        // Without health counters none of the families render.
        let text = render_prometheus(&populated_snapshot(), &["fast"]);
        validate_prometheus(&text).unwrap();
        for family in [
            "bouncer_queue_depth",
            "bouncer_in_flight",
            "bouncer_ring_occupancy",
            "bouncer_events_dropped_total",
            "bouncer_incidents_total",
            "bouncer_slo_attainment_ratio",
            "bouncer_rejection_ratio",
        ] {
            assert!(!text.contains(family), "{family} leaked into:\n{text}");
        }
        // Off-rings runs have no occupancy probe; the gauge is omitted and
        // the rest still validates.
        let health = HealthCounters {
            queue_depth: 1,
            ..HealthCounters::default()
        };
        let text = render_prometheus_full(
            &populated_snapshot(),
            &["fast"],
            None,
            None,
            Some(&health),
            None,
        );
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(!text.contains("bouncer_ring_occupancy"));
        assert!(!text.contains("bouncer_slo_attainment_ratio"));
        assert!(text.contains("bouncer_queue_depth 1"));
    }

    #[test]
    fn hedge_counters_render_and_validate() {
        let hedges = HedgeCounters {
            hedges: 42,
            cancels: 37,
        };
        let text = render_prometheus_full(
            &populated_snapshot(),
            &["fast"],
            None,
            None,
            None,
            Some(&hedges),
        );
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("# TYPE bouncer_hedges_total counter"));
        assert!(text.contains("bouncer_hedges_total 42"));
        assert!(text.contains("# TYPE bouncer_hedge_cancels_total counter"));
        assert!(text.contains("bouncer_hedge_cancels_total 37"));
        // Without hedge counters the pair is absent and output validates.
        let text = render_prometheus(&populated_snapshot(), &["fast"]);
        validate_prometheus(&text).unwrap();
        assert!(!text.contains("bouncer_hedges_total"));
        assert!(!text.contains("bouncer_hedge_cancels_total"));
    }
}
