//! The health sampler: periodic system snapshots folded from the event
//! stream, plus the trigger engine that turns a bad interval into an
//! incident dump.
//!
//! [`HealthSampler`] is an [`EventSink`] decorator meant to sit at the
//! *outside* of a sink chain (engine → sampler → [`RecorderSink`] →
//! JSONL/null). Every event is forwarded downstream untouched, then folded
//! into running gauges — queue depth, in-flight count, per-type admission
//! and completion counters scored against SLO tail targets. Whenever the
//! event stream's own timestamps cross a sample-interval boundary the
//! window closes: an [`Event::HealthSample`] plus one
//! [`Event::TypeHealth`] per active type are emitted downstream (so they
//! land in the JSONL log *and* the flight recorder), pushed into a bounded
//! trailing history, and handed to the trigger engine.
//!
//! Because windows advance on event timestamps, the same sampler works
//! under the simulator's virtual clock (the sim emits [`Event::Tick`] each
//! maintenance tick so windows close even when traffic stalls) and under
//! wall clock in the cluster, where a background probe thread calls
//! [`HealthSampler::probe`] with transport gauges (SPSC ring occupancy,
//! buffer-pool counters) the event stream cannot see.
//!
//! # Triggers
//!
//! A closing window fires at most one trigger, checked in order:
//!
//! 1. `forced` — the window end crossed [`TriggerConfig::force_at`]
//!    (deterministic CI hooks; fires once).
//! 2. `rejection_spike` — window rejection rate ≥
//!    [`TriggerConfig::rejection_rate`] with at least `min_window`
//!    decisions.
//! 3. `slo_burst` — window attainment ≤ [`TriggerConfig::attainment`]
//!    with at least `min_window` completions.
//!
//! One trigger is edge- rather than window-driven: `controller_backoff`
//! fires the moment the control plane decides a *lower* value for any
//! parameter (an [`Event::ControllerDecision`] retreat means the
//! controller itself judged the interval bad). Firing immediately
//! matters: the decision record is still the freshest entry in the
//! rings, whereas waiting for the next window close would let the event
//! flood overwrite it before the drain.
//!
//! A fired trigger drains every flight-recorder ring plus the trailing
//! health samples into `incident-<at>ns-<reason>.jsonl` under
//! [`HealthConfig::dump_dir`], rate-limited by `cooldown`/`max_dumps`.
//! The `postmortem` CLI subcommand reconstructs the episode from that
//! file (see [`super::postmortem`] and OBSERVABILITY.md).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use bouncer_metrics::time::{millis, secs};
use bouncer_metrics::Nanos;

use crate::types::TypeId;

use super::jsonl::escape;
use super::prometheus::{HealthCounters, TypeRates};
use super::recorder::{Recorder, TY_NONE};
use super::{Event, EventSink};

/// Static configuration for a [`HealthSampler`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Sample window length, in event-stream nanoseconds (virtual or
    /// wall-clock — whatever the emitting runtime uses).
    pub interval: Nanos,
    /// Closed windows retained as trailing history for incident dumps.
    pub history: usize,
    /// Per-type SLO tail targets (dense type index order): a completion
    /// with `rt <= target` counts as within-SLO. `None` entries (and
    /// types beyond the vec) count every completion as within.
    pub slo_tails: Vec<Option<Nanos>>,
    /// Type names (dense index order) for incident-dump headers.
    pub type_names: Vec<String>,
    /// Where incident dumps go; `None` disables the trigger engine.
    pub dump_dir: Option<PathBuf>,
    /// Trigger thresholds and rate limits.
    pub trigger: TriggerConfig,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            interval: millis(250),
            history: 32,
            slo_tails: Vec::new(),
            type_names: Vec::new(),
            dump_dir: None,
            trigger: TriggerConfig::default(),
        }
    }
}

/// When the trigger engine fires (see the module docs for the check
/// order) and how often it is allowed to.
#[derive(Debug, Clone)]
pub struct TriggerConfig {
    /// Fire `rejection_spike` when a window's rejected/received ratio
    /// reaches this; `None` disables.
    pub rejection_rate: Option<f64>,
    /// Fire `slo_burst` when a window's within-SLO fraction falls to or
    /// below this; `None` disables.
    pub attainment: Option<f64>,
    /// Minimum decisions (for `rejection_spike`) or completions (for
    /// `slo_burst`) in the window before the ratio is trusted.
    pub min_window: u64,
    /// Fire `controller_backoff` when the control plane lowers a
    /// parameter value.
    pub on_controller_backoff: bool,
    /// Fire `forced` once, at the first window close at or past this
    /// timestamp — a deterministic hook for CI smoke tests.
    pub force_at: Option<Nanos>,
    /// Minimum spacing between dumps (event-stream nanoseconds).
    pub cooldown: Nanos,
    /// Hard cap on dumps per run.
    pub max_dumps: usize,
}

impl Default for TriggerConfig {
    fn default() -> Self {
        Self {
            rejection_rate: Some(0.5),
            attainment: None,
            min_window: 20,
            on_controller_backoff: true,
            force_at: None,
            cooldown: secs(2),
            max_dumps: 4,
        }
    }
}

/// One type's counters inside the open window (and cumulatively).
#[derive(Debug, Clone, Copy, Default)]
struct WindowCounts {
    received: u64,
    rejected: u64,
    completed: u64,
    within: u64,
}

#[derive(Debug, Default)]
struct State {
    /// Start of the open window; `None` until the first event.
    start: Option<Nanos>,
    /// Per-type counters for the open window (dense index order).
    window: Vec<WindowCounts>,
    /// Per-type counters since construction (for Prometheus ratios).
    cum: Vec<WindowCounts>,
    queue_depth: u64,
    peak_queue_depth: u64,
    in_flight: u64,
    /// Last probed SPSC ring occupancy; `None` until a probe reports one.
    ring_occupancy: Option<u64>,
    /// Latest per-pool `pool_stats` snapshots, keyed by pool name.
    pools: Vec<(&'static str, (u64, u64, u64))>,
    /// Closed windows (each a `HealthSample` + its `TypeHealth` events),
    /// newest last, capped at `HealthConfig::history`.
    history: VecDeque<Vec<Event>>,
    /// Last decided value per controller parameter (`param_code` keyed).
    last_param: Vec<(u16, f64)>,
    forced_done: bool,
    last_dump: Option<Nanos>,
    samples: u64,
    incidents: Vec<PathBuf>,
    scenario_hash: Option<u64>,
}

/// What a window close produced: the sample events to forward downstream
/// and, at most, one fired trigger.
struct Closed {
    events: Vec<Event>,
    trigger: Option<(Nanos, &'static str)>,
}

/// The periodic health sampler and incident trigger engine. See the
/// module docs; construct with [`HealthSampler::new`] and install as the
/// outermost [`EventSink`].
#[derive(Debug)]
pub struct HealthSampler {
    cfg: HealthConfig,
    recorder: Arc<Recorder>,
    downstream: Arc<dyn EventSink>,
    state: Mutex<State>,
}

impl HealthSampler {
    /// A sampler folding into `recorder`-backed incident dumps and
    /// forwarding every event (plus its own samples) to `downstream` —
    /// normally the [`RecorderSink`](super::RecorderSink) wrapping that
    /// same recorder, so samples are both logged and flight-recorded.
    pub fn new(
        cfg: HealthConfig,
        recorder: Arc<Recorder>,
        downstream: Arc<dyn EventSink>,
    ) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            recorder,
            downstream,
            state: Mutex::new(State::default()),
        })
    }

    /// The flight recorder incident dumps drain.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The configured sampling interval, in nanoseconds (probe threads
    /// pace themselves on this).
    pub fn interval(&self) -> Nanos {
        self.cfg.interval
    }

    /// Wall-clock entry point for transport gauges the event stream can't
    /// see: stores the probed SPSC ring occupancy (when given) and runs a
    /// [`Event::Tick`] through the sampler so windows close even when no
    /// queries flow. The cluster's probe thread calls this periodically;
    /// pool counters travel separately as [`Event::PoolStats`] emissions.
    pub fn probe(&self, now: Nanos, ring_occupancy: Option<u64>) {
        // Fold the tick first: a window closing now should report the
        // occupancy probed *during* that window, not this instant's.
        self.emit(&Event::Tick { at: now });
        if let Some(r) = ring_occupancy {
            self.lock().ring_occupancy = Some(r);
        }
    }

    /// Current gauges for the Prometheus exposition
    /// ([`render_prometheus_full`](super::render_prometheus_full)).
    /// `events_dropped` is supplied by the caller (it lives in the lossy
    /// sink, e.g. [`JsonlSink::dropped_writes`](super::JsonlSink::dropped_writes)).
    pub fn health_counters(&self, events_dropped: u64) -> HealthCounters {
        let st = self.lock();
        HealthCounters {
            queue_depth: st.queue_depth,
            in_flight: st.in_flight,
            ring_occupancy: st.ring_occupancy,
            events_dropped,
            incidents: st.incidents.len() as u64,
            per_type: st
                .cum
                .iter()
                .enumerate()
                .filter(|(_, w)| w.received > 0 || w.completed > 0)
                .map(|(index, w)| TypeRates {
                    index,
                    attainment: ratio(w.within, w.completed, 1.0),
                    rejection: ratio(w.rejected, w.received, 0.0),
                })
                .collect(),
        }
    }

    /// Closed sample windows so far.
    pub fn samples(&self) -> u64 {
        self.lock().samples
    }

    /// Incident dumps written so far.
    pub fn incidents(&self) -> u64 {
        self.lock().incidents.len() as u64
    }

    /// Paths of the incident dumps written so far, oldest first.
    pub fn incident_paths(&self) -> Vec<PathBuf> {
        self.lock().incidents.clone()
    }

    /// High-water queue depth seen since construction.
    pub fn peak_queue_depth(&self) -> u64 {
        self.lock().peak_queue_depth
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Folds one event into the open window, closing it first if `at`
    /// crossed the boundary. Returns the close's products, if any.
    fn fold(&self, event: &Event) -> Option<Closed> {
        let at = event.at();
        let mut st = self.lock();
        let start = *st.start.get_or_insert(at);
        let mut closed = None;
        if at >= start.saturating_add(self.cfg.interval) {
            closed = Some(self.close_window(&mut st, start, at));
            // Skip idle gaps whole windows long, so a stall doesn't emit
            // a burst of empty samples when traffic resumes.
            let gaps = (at - start) / self.cfg.interval;
            st.start = Some(start + gaps * self.cfg.interval);
        }
        match *event {
            Event::Admitted { ty, .. } => {
                bump(&mut st, ty, |w| w.received += 1);
            }
            Event::Rejected { ty, .. } => {
                bump(&mut st, ty, |w| {
                    w.received += 1;
                    w.rejected += 1;
                });
            }
            Event::Enqueued { .. } => {
                st.queue_depth += 1;
                st.peak_queue_depth = st.peak_queue_depth.max(st.queue_depth);
            }
            Event::Dequeued { .. } => {
                st.queue_depth = st.queue_depth.saturating_sub(1);
                st.in_flight += 1;
            }
            Event::Expired { .. } => {
                st.queue_depth = st.queue_depth.saturating_sub(1);
            }
            Event::Completed { ty, rt, .. } => {
                st.in_flight = st.in_flight.saturating_sub(1);
                // MSRV 1.75: `match`, not `Option::is_none_or` (1.82+).
                let within = match self.cfg.slo_tails.get(ty.index()).copied().flatten() {
                    Some(target) => rt <= target,
                    None => true,
                };
                bump(&mut st, ty, |w| {
                    w.completed += 1;
                    if within {
                        w.within += 1;
                    }
                });
            }
            Event::ControllerDecision { param, value, .. } => {
                let code = super::recorder::param_code(param);
                let st = &mut *st;
                let mut retreat = false;
                match st.last_param.iter_mut().find(|(c, _)| *c == code) {
                    Some((_, prev)) => {
                        retreat = value < *prev;
                        *prev = value;
                    }
                    None => st.last_param.push((code, value)),
                }
                // Edge-triggered: dump *now*, while the decision record
                // is still the freshest entry in the rings (a window
                // close later would let the event flood overwrite it).
                if retreat && self.cfg.trigger.on_controller_backoff {
                    let trigger = self.arm_trigger(st, at, "controller_backoff");
                    if trigger.is_some() {
                        match &mut closed {
                            Some(c) if c.trigger.is_none() => c.trigger = trigger,
                            Some(_) => {}
                            None => {
                                closed = Some(Closed {
                                    events: Vec::new(),
                                    trigger,
                                })
                            }
                        }
                    }
                }
            }
            Event::Scenario { hash, .. } => st.scenario_hash = Some(hash),
            Event::PoolStats {
                pool,
                hits,
                misses,
                pooled,
                ..
            } => {
                match st.pools.iter_mut().find(|(name, _)| *name == pool) {
                    Some((_, snap)) => *snap = (hits, misses, pooled),
                    None => st.pools.push((pool, (hits, misses, pooled))),
                }
            }
            _ => {}
        }
        closed
    }

    /// Closes the window that started at `start`: builds the sample
    /// events, archives them in the trailing history, resets the window
    /// counters, and consults the trigger engine. `now` is the timestamp
    /// of the event that forced the close — past an idle gap it can sit
    /// well beyond the nominal window end.
    fn close_window(&self, st: &mut State, start: Nanos, now: Nanos) -> Closed {
        let end = start + self.cfg.interval;
        let totals = st.window.iter().fold(WindowCounts::default(), |acc, w| {
            WindowCounts {
                received: acc.received + w.received,
                rejected: acc.rejected + w.rejected,
                completed: acc.completed + w.completed,
                within: acc.within + w.within,
            }
        });
        let attainment = ratio(totals.within, totals.completed, 1.0);
        let rejection = ratio(totals.rejected, totals.received, 0.0);
        let (pool_hits, pool_misses, pool_pooled) = st.pools.iter().fold(
            (0, 0, 0),
            |(h, m, p), (_, (hits, misses, pooled))| (h + hits, m + misses, p + pooled),
        );
        let mut events = vec![Event::HealthSample {
            at: end,
            queue_depth: st.queue_depth,
            in_flight: st.in_flight,
            ring_occupancy: st.ring_occupancy.unwrap_or(0),
            pool_hits,
            pool_misses,
            pool_pooled,
            attainment,
            rejection,
        }];
        for (i, w) in st.window.iter().enumerate() {
            if w.received > 0 || w.completed > 0 {
                events.push(Event::TypeHealth {
                    at: end,
                    ty: TypeId::from_index(i as u32),
                    received: w.received,
                    rejected: w.rejected,
                    completed: w.completed,
                    within_slo: w.within,
                });
            }
        }
        st.history.push_back(events.clone());
        while st.history.len() > self.cfg.history.max(1) {
            st.history.pop_front();
        }
        st.window.iter_mut().for_each(|w| *w = WindowCounts::default());
        st.samples += 1;

        let t = &self.cfg.trigger;
        let mut reason = None;
        if let Some(f) = t.force_at {
            // `now` covers idle gaps: the stream crossed `force_at` even
            // if the nominal window end still trails it.
            if !st.forced_done && end.max(now) >= f {
                st.forced_done = true;
                reason = Some("forced");
            }
        }
        if reason.is_none() {
            if let Some(thr) = t.rejection_rate {
                if totals.received >= t.min_window && rejection >= thr {
                    reason = Some("rejection_spike");
                }
            }
        }
        if reason.is_none() {
            if let Some(thr) = t.attainment {
                if totals.completed >= t.min_window && attainment <= thr {
                    reason = Some("slo_burst");
                }
            }
        }
        let trigger = reason.and_then(|r| self.arm_trigger(st, end, r));
        Closed { events, trigger }
    }

    /// Gates a would-be trigger through the dump rate limits: a dump
    /// directory must be configured, the `max_dumps` budget unspent, and
    /// the `cooldown` since the last dump elapsed. Arms the trigger
    /// (advancing `last_dump`) when allowed.
    fn arm_trigger(
        &self,
        st: &mut State,
        at: Nanos,
        reason: &'static str,
    ) -> Option<(Nanos, &'static str)> {
        let t = &self.cfg.trigger;
        // MSRV 1.75: `match`, not `Option::is_none_or` (1.82+).
        let cooled = match st.last_dump {
            Some(last) => at.saturating_sub(last) >= t.cooldown,
            None => true,
        };
        let allowed =
            self.cfg.dump_dir.is_some() && st.incidents.len() < t.max_dumps && cooled;
        if allowed {
            st.last_dump = Some(at);
            Some((at, reason))
        } else {
            None
        }
    }

    /// Drains the recorder rings and the trailing history into
    /// `incident-<at>ns-<reason>.jsonl`. Write failures are reported on
    /// stderr and otherwise swallowed — an incident dump must never take
    /// the serving path down with it.
    fn dump_incident(&self, at: Nanos, reason: &'static str) {
        let Some(dir) = &self.cfg.dump_dir else { return };
        let (history, scenario_hash) = {
            let st = self.lock();
            (
                st.history.iter().flatten().copied().collect::<Vec<Event>>(),
                st.scenario_hash,
            )
        };
        let dump = self.recorder.snapshot();
        let path = dir.join(format!("incident-{at}ns-{reason}.jsonl"));
        let written = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
            let mut header = String::with_capacity(256);
            let _ = write!(
                header,
                "{{\"incident\":{{\"at_ns\":{at},\"reason\":\"{reason}\",\"scenario_hash\":"
            );
            match scenario_hash {
                Some(h) => {
                    let _ = write!(header, "\"{h:016x}\"");
                }
                None => header.push_str("null"),
            }
            let _ = write!(
                header,
                ",\"rings\":{},\"written\":{},\"dropped\":{},\"records\":{},\"types\":[",
                dump.rings,
                dump.written,
                dump.dropped,
                dump.records.len(),
            );
            for (i, name) in self.cfg.type_names.iter().enumerate() {
                if i > 0 {
                    header.push(',');
                }
                let _ = write!(header, "\"{}\"", escape(name));
            }
            header.push_str("]}}");
            writeln!(out, "{header}")?;
            for ev in &history {
                writeln!(out, "{}", ev.to_json())?;
            }
            // `a`/`b` ride as decimal strings: JSON numbers are f64 in
            // this workspace's parser, which would corrupt bit-pattern
            // payloads past 2^53.
            for re in &dump.records {
                let mut line = String::with_capacity(128);
                let _ = write!(
                    line,
                    "{{\"event\":\"record\",\"ring\":\"{}\",\"seq\":{},\"at_ns\":{},\"kind\":\"{}\",\"type\":",
                    escape(&re.ring),
                    re.seq,
                    re.rec.at,
                    re.rec.kind.name(),
                );
                if re.rec.ty == TY_NONE {
                    line.push_str("null");
                } else {
                    let _ = write!(line, "{}", re.rec.ty);
                }
                let _ = write!(line, ",\"a\":\"{}\",\"b\":\"{}\"}}", re.rec.a, re.rec.b);
                writeln!(out, "{line}")?;
            }
            out.flush()
        })();
        match written {
            Ok(()) => {
                self.lock().incidents.push(path);
                let incident = Event::Incident {
                    at,
                    reason,
                    records: dump.records.len() as u64,
                };
                if self.downstream.enabled() {
                    self.downstream.emit(&incident);
                }
            }
            Err(e) => eprintln!("health sampler: incident dump {} failed: {e}", path.display()),
        }
    }
}

/// Applies one counter bump to `ty`'s slot in both the open window and
/// the cumulative totals, growing the (index-aligned) vectors as needed.
fn bump(st: &mut State, ty: TypeId, apply: impl Fn(&mut WindowCounts)) {
    let idx = ty.index();
    if st.window.len() <= idx {
        st.window.resize_with(idx + 1, WindowCounts::default);
        st.cum.resize_with(idx + 1, WindowCounts::default);
    }
    apply(&mut st.window[idx]);
    apply(&mut st.cum[idx]);
}

fn ratio(num: u64, den: u64, empty: f64) -> f64 {
    if den > 0 {
        num as f64 / den as f64
    } else {
        empty
    }
}

impl EventSink for HealthSampler {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, event: &Event) {
        if self.downstream.enabled() {
            self.downstream.emit(event);
        }
        if let Some(closed) = self.fold(event) {
            if self.downstream.enabled() {
                for e in &closed.events {
                    self.downstream.emit(e);
                }
            }
            if let Some((at, reason)) = closed.trigger {
                self.dump_incident(at, reason);
            }
        }
    }

    fn flush(&self) {
        self.downstream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{parse_json, MemorySink};
    use crate::policy::RejectReason;

    fn sampler_with(
        cfg: HealthConfig,
    ) -> (Arc<HealthSampler>, Arc<MemorySink>, Arc<Recorder>) {
        let mem = Arc::new(MemorySink::new());
        let recorder = Recorder::new(64);
        // The production chain: sampler → recorder sink → final sink.
        let rec_sink = Arc::new(super::super::RecorderSink::new(
            Arc::clone(&recorder),
            Some(mem.clone() as Arc<dyn EventSink>),
        ));
        let sampler = HealthSampler::new(cfg, Arc::clone(&recorder), rec_sink);
        (sampler, mem, recorder)
    }

    fn temp_dump_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bouncer-health-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn window_close_emits_sample_and_type_health() {
        let cfg = HealthConfig {
            interval: 100,
            slo_tails: vec![Some(50)],
            ..HealthConfig::default()
        };
        let (sampler, mem, _) = sampler_with(cfg);
        let ty = TypeId::from_index(0);
        sampler.emit(&Event::Admitted { at: 10, ty });
        sampler.emit(&Event::Enqueued { at: 11, ty, queue_len: 1 });
        sampler.emit(&Event::Dequeued { at: 20, ty, wait: 9 });
        sampler.emit(&Event::Completed { at: 60, ty, wait: 9, processing: 40, rt: 49 });
        sampler.emit(&Event::Rejected { at: 70, ty, reason: RejectReason::CapacityFraction });
        // Crossing the boundary closes the first window.
        sampler.emit(&Event::Tick { at: 120 });
        let events = mem.events();
        let sample = events
            .iter()
            .find_map(|e| match *e {
                Event::HealthSample { at, queue_depth, in_flight, attainment, rejection, .. } => {
                    Some((at, queue_depth, in_flight, attainment, rejection))
                }
                _ => None,
            })
            .expect("health_sample emitted");
        // Window [10, 110): 2 received, 1 rejected, 1 completed within SLO.
        assert_eq!(sample.0, 110);
        assert_eq!(sample.1, 0, "enqueued then dequeued");
        assert_eq!(sample.2, 0, "dequeued then completed");
        assert!((sample.3 - 1.0).abs() < 1e-9);
        assert!((sample.4 - 0.5).abs() < 1e-9);
        let th = events
            .iter()
            .find_map(|e| match *e {
                Event::TypeHealth { received, rejected, completed, within_slo, .. } => {
                    Some((received, rejected, completed, within_slo))
                }
                _ => None,
            })
            .expect("type_health emitted");
        assert_eq!(th, (2, 1, 1, 1));
        assert_eq!(sampler.samples(), 1);
        assert_eq!(sampler.peak_queue_depth(), 1);
        // Forwarded events precede the samples they close the window for.
        assert_eq!(events[0].name(), "admitted");
    }

    #[test]
    fn completion_past_tail_target_counts_outside_slo() {
        let cfg = HealthConfig {
            interval: 100,
            slo_tails: vec![Some(50)],
            ..HealthConfig::default()
        };
        let (sampler, _, _) = sampler_with(cfg);
        let ty = TypeId::from_index(0);
        sampler.emit(&Event::Completed { at: 10, ty, wait: 0, processing: 99, rt: 99 });
        sampler.emit(&Event::Tick { at: 200 });
        let counters = sampler.health_counters(0);
        assert_eq!(counters.per_type.len(), 1);
        assert!((counters.per_type[0].attainment - 0.0).abs() < 1e-9);
    }

    #[test]
    fn rejection_spike_writes_dump_once_within_cooldown() {
        let dir = temp_dump_dir("spike");
        let cfg = HealthConfig {
            interval: 100,
            dump_dir: Some(dir.clone()),
            trigger: TriggerConfig {
                rejection_rate: Some(0.5),
                min_window: 10,
                cooldown: 1_000_000,
                ..TriggerConfig::default()
            },
            ..HealthConfig::default()
        };
        let (sampler, mem, recorder) = sampler_with(cfg);
        let ty = TypeId::from_index(0);
        for i in 0..20u64 {
            sampler.emit(&Event::Rejected { at: i, ty, reason: RejectReason::QueueFull });
        }
        sampler.emit(&Event::Tick { at: 150 });
        assert_eq!(sampler.incidents(), 1);
        let paths = sampler.incident_paths();
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        let mut lines = text.lines();
        let header = parse_json(lines.next().unwrap()).unwrap();
        let incident = header.get("incident").expect("header object");
        assert_eq!(
            incident.get("reason").and_then(|v| v.as_str()),
            Some("rejection_spike")
        );
        assert!(incident.get("records").and_then(|v| v.as_u64()).unwrap() > 0);
        // Every remaining line parses; record lines carry string payloads.
        let mut saw_record = false;
        for line in lines {
            let v = parse_json(line).unwrap();
            if v.get("event").and_then(|e| e.as_str()) == Some("record") {
                saw_record = true;
                assert!(v.get("a").and_then(|a| a.as_str()).is_some());
            }
        }
        assert!(saw_record);
        // The incident event reached the downstream sink and the recorder.
        assert!(mem.events().iter().any(|e| e.name() == "incident"));
        assert!(recorder.total_written() > 0);
        // A second spike inside the cooldown is suppressed.
        for i in 0..20u64 {
            sampler.emit(&Event::Rejected { at: 200 + i, ty, reason: RejectReason::QueueFull });
        }
        sampler.emit(&Event::Tick { at: 400 });
        assert_eq!(sampler.incidents(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn controller_backoff_and_forced_triggers_fire() {
        let dir = temp_dump_dir("backoff");
        let cfg = HealthConfig {
            interval: 100,
            dump_dir: Some(dir.clone()),
            trigger: TriggerConfig {
                rejection_rate: None,
                cooldown: 0,
                force_at: Some(1_000),
                ..TriggerConfig::default()
            },
            ..HealthConfig::default()
        };
        let (sampler, _, _) = sampler_with(cfg);
        sampler.emit(&Event::ControllerDecision {
            at: 10,
            law: "aimd",
            param: "max_utilization",
            value: 0.9,
            attainment: 0.99,
            rejection: 0.0,
        });
        // Higher value: no backoff.
        sampler.emit(&Event::ControllerDecision {
            at: 20,
            law: "aimd",
            param: "max_utilization",
            value: 0.95,
            attainment: 0.99,
            rejection: 0.0,
        });
        sampler.emit(&Event::Tick { at: 150 });
        assert_eq!(sampler.incidents(), 0);
        // Retreat: the backoff trigger is edge-driven and dumps at once,
        // while the decision record is still the freshest in the rings.
        sampler.emit(&Event::ControllerDecision {
            at: 160,
            law: "aimd",
            param: "max_utilization",
            value: 0.5,
            attainment: 0.8,
            rejection: 0.3,
        });
        assert_eq!(sampler.incidents(), 1);
        sampler.emit(&Event::Tick { at: 300 });
        assert!(sampler.incident_paths()[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("controller_backoff"));
        // The forced trigger fires once the stream crosses force_at.
        sampler.emit(&Event::Tick { at: 1_200 });
        assert_eq!(sampler.incidents(), 2);
        assert!(sampler.incident_paths()[1]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("forced"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_advances_wall_clock_windows_and_stores_occupancy() {
        let cfg = HealthConfig { interval: 100, ..HealthConfig::default() };
        let (sampler, mem, _) = sampler_with(cfg);
        sampler.probe(10, Some(7));
        sampler.probe(250, Some(3));
        let events = mem.events();
        let occ = events
            .iter()
            .find_map(|e| match *e {
                Event::HealthSample { ring_occupancy, .. } => Some(ring_occupancy),
                _ => None,
            })
            .expect("probe closed a window");
        assert_eq!(occ, 7, "sample reports the occupancy at close time");
        assert_eq!(sampler.health_counters(0).ring_occupancy, Some(3));
        // Ticks also land in the flight recorder via the downstream chain
        // when it is a RecorderSink; here the MemorySink just logs them.
        assert!(events.iter().any(|e| e.name() == "tick"));
    }

    #[test]
    fn pool_stats_fold_into_samples() {
        let cfg = HealthConfig { interval: 100, ..HealthConfig::default() };
        let (sampler, mem, _) = sampler_with(cfg);
        sampler.emit(&Event::PoolStats {
            at: 10,
            pool: "shard_client",
            hits: 5,
            misses: 2,
            pooled: 3,
        });
        sampler.emit(&Event::PoolStats {
            at: 20,
            pool: "broker_client",
            hits: 1,
            misses: 1,
            pooled: 1,
        });
        sampler.emit(&Event::Tick { at: 150 });
        let (h, m, p) = mem
            .events()
            .iter()
            .find_map(|e| match *e {
                Event::HealthSample { pool_hits, pool_misses, pool_pooled, .. } => {
                    Some((pool_hits, pool_misses, pool_pooled))
                }
                _ => None,
            })
            .expect("sample emitted");
        assert_eq!((h, m, p), (6, 3, 4), "pools sum across names");
    }
}
