//! The JSONL event-log sink: one JSON object per line, hand-rolled so the
//! workspace stays dependency-free.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use super::{Event, EventSink};

impl Event {
    /// Renders the event as a single-line JSON object.
    ///
    /// Common fields: `event` (the [`Event::name`]) and `at_ns`. Lifecycle
    /// events add `type` (the dense type index); policy events add
    /// `policy`. Variant payloads keep their field names with `_ns`
    /// suffixes on durations. See `OBSERVABILITY.md` for the full field
    /// reference.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"event\":\"{}\",\"at_ns\":{}", self.name(), self.at());
        if let Some(ty) = self.ty() {
            let _ = write!(s, ",\"type\":{}", ty.index());
        }
        match *self {
            Event::Admitted { .. } | Event::Started { .. } => {}
            Event::Rejected { reason, .. } => {
                let _ = write!(s, ",\"reason\":\"{}\"", reason.label());
            }
            Event::Enqueued { queue_len, .. } => {
                let _ = write!(s, ",\"queue_len\":{queue_len}");
            }
            Event::Dequeued { wait, .. } | Event::Expired { wait, .. } => {
                let _ = write!(s, ",\"wait_ns\":{wait}");
            }
            Event::Completed {
                wait, processing, rt, ..
            } => {
                let _ = write!(
                    s,
                    ",\"wait_ns\":{wait},\"processing_ns\":{processing},\"rt_ns\":{rt}"
                );
            }
            Event::HistogramSwap { policy, .. } => {
                let _ = write!(s, ",\"policy\":\"{}\"", escape(policy));
            }
            Event::ThresholdUpdate {
                policy, threshold, ..
            } => {
                let _ = write!(
                    s,
                    ",\"policy\":\"{}\",\"threshold\":{}",
                    escape(policy),
                    fmt_f64(threshold)
                );
            }
            Event::MovingAvgRefresh {
                policy, mean_ns, ..
            } => {
                let _ = write!(
                    s,
                    ",\"policy\":\"{}\",\"mean_ns\":{}",
                    escape(policy),
                    fmt_f64(mean_ns)
                );
            }
            Event::EstimateRefresh {
                policy,
                warm,
                mean_ns,
                pt_tail_ns,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"policy\":\"{}\",\"warm\":{warm},\"mean_ns\":{}",
                    escape(policy),
                    fmt_f64(mean_ns)
                );
                if let Some(pt) = pt_tail_ns {
                    let _ = write!(s, ",\"pt_tail_ns\":{pt}");
                }
            }
            Event::Scenario { hash, .. } => {
                let _ = write!(s, ",\"scenario_hash\":\"{hash:016x}\"");
            }
            Event::ControllerDecision {
                law,
                param,
                value,
                attainment,
                rejection,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"law\":\"{}\",\"param\":\"{}\",\"value\":{},\
                     \"attainment\":{},\"rejection\":{}",
                    escape(law),
                    escape(param),
                    fmt_f64(value),
                    fmt_f64(attainment),
                    fmt_f64(rejection)
                );
            }
            Event::ParamUpdate {
                policy, param, value, ..
            } => {
                let _ = write!(
                    s,
                    ",\"policy\":\"{}\",\"param\":\"{}\",\"value\":{}",
                    escape(policy),
                    escape(param),
                    fmt_f64(value)
                );
            }
            Event::Span {
                trace,
                span,
                parent,
                kind,
                start,
                end,
                status,
                ..
            } => {
                let _ = write!(s, ",\"trace\":{},\"span\":{}", trace.0, span.0);
                if let Some(p) = parent {
                    let _ = write!(s, ",\"parent\":{}", p.0);
                }
                let _ = write!(s, ",\"kind\":\"{}\"", kind.label());
                if let Some(r) = kind.round() {
                    let _ = write!(s, ",\"round\":{r}");
                }
                if let Some(sh) = kind.shard() {
                    let _ = write!(s, ",\"shard\":{sh}");
                }
                let _ = write!(
                    s,
                    ",\"start_ns\":{start},\"end_ns\":{end},\"status\":\"{}\"",
                    status.label()
                );
            }
            Event::PoolStats {
                pool,
                hits,
                misses,
                pooled,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"pool\":\"{}\",\"hits\":{hits},\"misses\":{misses},\"pooled\":{pooled}",
                    escape(pool)
                );
            }
            Event::Tick { .. } => {}
            Event::HealthSample {
                queue_depth,
                in_flight,
                ring_occupancy,
                pool_hits,
                pool_misses,
                pool_pooled,
                attainment,
                rejection,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"queue_depth\":{queue_depth},\"in_flight\":{in_flight},\
                     \"ring_occupancy\":{ring_occupancy},\"pool_hits\":{pool_hits},\
                     \"pool_misses\":{pool_misses},\"pool_pooled\":{pool_pooled},\
                     \"attainment\":{},\"rejection\":{}",
                    fmt_f64(attainment),
                    fmt_f64(rejection)
                );
            }
            Event::TypeHealth {
                received,
                rejected,
                completed,
                within_slo,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"received\":{received},\"rejected\":{rejected},\
                     \"completed\":{completed},\"within_slo\":{within_slo}"
                );
            }
            Event::EngineState { engine, parked, .. } => {
                let _ = write!(s, ",\"engine\":{engine},\"parked\":{parked}");
            }
            Event::GraphStats {
                vertices,
                edges,
                heap_bytes,
                bytes_per_edge,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"vertices\":{vertices},\"edges\":{edges},\
                     \"heap_bytes\":{heap_bytes},\"bytes_per_edge\":{}",
                    fmt_f64(bytes_per_edge)
                );
            }
            Event::Incident {
                reason, records, ..
            } => {
                let _ = write!(
                    s,
                    ",\"reason\":\"{}\",\"records\":{records}",
                    escape(reason)
                );
            }
            Event::ReplicaRouted { shard, replica, .. } => {
                let _ = write!(s, ",\"shard\":{shard},\"replica\":{replica}");
            }
            Event::HedgeFired {
                shard,
                primary,
                hedge,
                delay,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"shard\":{shard},\"primary\":{primary},\"hedge\":{hedge},\
                     \"delay_ns\":{delay}"
                );
            }
            Event::HedgeCancelled { shard, replica, .. } => {
                let _ = write!(s, ",\"shard\":{shard},\"replica\":{replica}");
            }
        }
        s.push('}');
        s
    }
}

/// JSON-escapes a string (quotes, backslashes, control characters).
pub(super) fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it parses back as a JSON number (never NaN/inf —
/// those become 0, JSON has no representation for them).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// An [`EventSink`] appending one JSON object per line to a writer.
///
/// Writes are buffered and serialized behind a mutex; the buffer is
/// flushed on [`EventSink::flush`] and on drop. I/O errors after
/// construction never take the serving path down — the event is dropped
/// instead — but they are no longer silent: each failed write bumps
/// [`JsonlSink::dropped_writes`], which the CLI surfaces at shutdown and
/// exports as `bouncer_events_dropped_total`.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    dropped: AtomicU64,
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(BufWriter::new(writer)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) `path` and logs events to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }

    /// Events whose line could not be (fully) written because of a
    /// post-creation I/O error.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink { .. }")
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json();
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self
            .out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
        let dropped = self.dropped_writes();
        if dropped > 0 {
            eprintln!("jsonl sink: {dropped} event write(s) dropped (I/O errors)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{parse_json, SpanId, SpanKind, SpanStatus, TraceId};
    use super::*;
    use crate::policy::RejectReason;
    use crate::types::TypeId;
    use std::sync::Arc;

    /// Every variant, for exhaustive encode/parse coverage.
    fn samples() -> Vec<Event> {
        vec![
            Event::Admitted { at: 10, ty: TypeId(1) },
            Event::Rejected {
                at: 11,
                ty: TypeId(2),
                reason: RejectReason::PredictedSloViolation,
            },
            Event::Enqueued {
                at: 12,
                ty: TypeId(1),
                queue_len: 3,
            },
            Event::Dequeued {
                at: 15,
                ty: TypeId(1),
                wait: 3,
            },
            Event::Started { at: 15, ty: TypeId(1) },
            Event::Completed {
                at: 20,
                ty: TypeId(1),
                wait: 3,
                processing: 5,
                rt: 8,
            },
            Event::Expired {
                at: 30,
                ty: TypeId(0),
                wait: 25,
            },
            Event::HistogramSwap { at: 40, policy: "bouncer" },
            Event::ThresholdUpdate {
                at: 41,
                policy: "acceptfraction",
                threshold: 0.875,
            },
            Event::MovingAvgRefresh {
                at: 42,
                policy: "maxqwt",
                mean_ns: 1_500_000.5,
            },
            Event::EstimateRefresh {
                at: 43,
                policy: "bouncer",
                ty: TypeId(1),
                warm: true,
                mean_ns: 2_000_000.25,
                pt_tail_ns: Some(5_000_000),
            },
            Event::EstimateRefresh {
                at: 44,
                policy: "bouncer",
                ty: TypeId(0),
                warm: false,
                mean_ns: 0.0,
                pt_tail_ns: None,
            },
            Event::Scenario {
                at: 0,
                hash: 0x00ab_cdef_0123_4567,
            },
            Event::ControllerDecision {
                at: 50,
                law: "budget",
                param: "allowance",
                value: 0.125,
                attainment: 0.9375,
                rejection: 0.25,
            },
            Event::ParamUpdate {
                at: 51,
                policy: "allowance",
                param: "allowance",
                value: 0.125,
            },
            Event::Span {
                at: 60,
                trace: TraceId(9001),
                span: SpanId(9002),
                parent: None,
                kind: SpanKind::Query,
                start: 45,
                end: 60,
                ty: Some(TypeId(4)),
                status: SpanStatus::Ok,
            },
            Event::Span {
                at: 58,
                trace: TraceId(9001),
                span: SpanId(9003),
                parent: Some(SpanId(9002)),
                kind: SpanKind::ShardService { shard: 3 },
                start: 50,
                end: 58,
                ty: None,
                status: SpanStatus::Ok,
            },
            Event::PoolStats {
                at: 70,
                pool: "shard_client",
                hits: 96,
                misses: 4,
                pooled: 3,
            },
            Event::Tick { at: 75 },
            Event::HealthSample {
                at: 80,
                queue_depth: 12,
                in_flight: 4,
                ring_occupancy: 2,
                pool_hits: 90,
                pool_misses: 10,
                pool_pooled: 5,
                attainment: 0.75,
                rejection: 0.0625,
            },
            Event::TypeHealth {
                at: 80,
                ty: TypeId(1),
                received: 100,
                rejected: 6,
                completed: 88,
                within_slo: 66,
            },
            Event::EngineState {
                at: 81,
                engine: 3,
                parked: true,
            },
            Event::Incident {
                at: 82,
                reason: "rejection_spike",
                records: 4096,
            },
            Event::ReplicaRouted {
                at: 90,
                shard: 2,
                replica: 1,
            },
            Event::HedgeFired {
                at: 91,
                shard: 2,
                primary: 0,
                hedge: 1,
                delay: 350_000,
            },
            Event::HedgeCancelled {
                at: 92,
                shard: 2,
                replica: 0,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in samples() {
            let line = event.to_json();
            let v = parse_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.get("event").and_then(|e| e.as_str()), Some(event.name()));
            assert_eq!(
                v.get("at_ns").and_then(|a| a.as_u64()),
                Some(event.at()),
                "{line}"
            );
            match event.ty() {
                Some(ty) => assert_eq!(
                    v.get("type").and_then(|t| t.as_u64()),
                    Some(ty.index() as u64)
                ),
                None => assert!(v.get("type").is_none()),
            }
        }
    }

    #[test]
    fn payload_fields_survive() {
        let line = Event::Completed {
            at: 99,
            ty: TypeId(3),
            wait: 7,
            processing: 11,
            rt: 18,
        }
        .to_json();
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("wait_ns").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("processing_ns").and_then(|x| x.as_u64()), Some(11));
        assert_eq!(v.get("rt_ns").and_then(|x| x.as_u64()), Some(18));

        let line = Event::Rejected {
            at: 1,
            ty: TypeId(0),
            reason: RejectReason::QueueFull,
        }
        .to_json();
        let v = parse_json(&line).unwrap();
        assert_eq!(
            v.get("reason").and_then(|r| r.as_str()),
            Some("queue-full")
        );

        let line = Event::Scenario {
            at: 0,
            hash: 0x00ab_cdef_0123_4567,
        }
        .to_json();
        let v = parse_json(&line).unwrap();
        assert_eq!(
            v.get("scenario_hash").and_then(|h| h.as_str()),
            Some("00abcdef01234567")
        );
    }

    #[test]
    fn escaping_is_parseable() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(0.25), "0.25");
    }

    #[test]
    fn sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join(format!(
            "bouncer-jsonl-test-{}.jsonl",
            std::process::id()
        ));
        {
            let sink = JsonlSink::create(&path).unwrap();
            for event in samples() {
                sink.emit(&event);
            }
            let sink: Arc<dyn EventSink> = Arc::new(sink);
            assert!(sink.enabled());
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), samples().len());
        for line in lines {
            parse_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn health_payload_fields_survive() {
        let line = Event::HealthSample {
            at: 80,
            queue_depth: 12,
            in_flight: 4,
            ring_occupancy: 2,
            pool_hits: 90,
            pool_misses: 10,
            pool_pooled: 5,
            attainment: 0.75,
            rejection: 0.0625,
        }
        .to_json();
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("queue_depth").and_then(|x| x.as_u64()), Some(12));
        assert_eq!(v.get("in_flight").and_then(|x| x.as_u64()), Some(4));
        assert_eq!(v.get("ring_occupancy").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("attainment").and_then(|x| x.as_f64()), Some(0.75));
        assert_eq!(v.get("rejection").and_then(|x| x.as_f64()), Some(0.0625));

        let line = Event::Incident {
            at: 82,
            reason: "controller_backoff",
            records: 7,
        }
        .to_json();
        let v = parse_json(&line).unwrap();
        assert_eq!(
            v.get("reason").and_then(|r| r.as_str()),
            Some("controller_backoff")
        );
        assert_eq!(v.get("records").and_then(|x| x.as_u64()), Some(7));
    }

    #[test]
    fn hedge_payload_fields_survive() {
        let line = Event::HedgeFired {
            at: 91,
            shard: 2,
            primary: 0,
            hedge: 1,
            delay: 350_000,
        }
        .to_json();
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("shard").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("primary").and_then(|x| x.as_u64()), Some(0));
        assert_eq!(v.get("hedge").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("delay_ns").and_then(|x| x.as_u64()), Some(350_000));

        let v = parse_json(
            &Event::HedgeCancelled {
                at: 92,
                shard: 2,
                replica: 0,
            }
            .to_json(),
        )
        .unwrap();
        assert_eq!(v.get("replica").and_then(|x| x.as_u64()), Some(0));

        let v = parse_json(
            &Event::ReplicaRouted {
                at: 90,
                shard: 1,
                replica: 1,
            }
            .to_json(),
        )
        .unwrap();
        assert_eq!(v.get("shard").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("replica").and_then(|x| x.as_u64()), Some(1));
    }

    /// A writer that fails every write, to exercise the dropped-write
    /// accounting (satellite: post-creation I/O errors must be counted,
    /// not swallowed).
    struct BrokenWriter;

    impl Write for BrokenWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk on fire"))
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn io_errors_are_counted_not_silent() {
        let sink = JsonlSink::new(Box::new(BrokenWriter));
        assert_eq!(sink.dropped_writes(), 0);
        // The BufWriter absorbs lines until its internal buffer fills;
        // from then on every emit must surface the error and be counted.
        for i in 0..2_000u64 {
            sink.emit(&Event::Admitted { at: i, ty: TypeId(0) });
        }
        let dropped = sink.dropped_writes();
        assert!(dropped > 0, "no dropped writes counted");
        // And a healthy sink counts nothing.
        let ok = JsonlSink::new(Box::new(Vec::new()));
        ok.emit(&Event::Tick { at: 1 });
        ok.flush();
        assert_eq!(ok.dropped_writes(), 0);
    }
}
