//! End-to-end distributed tracing: causal spans across front, broker
//! fan-out rounds, and shards.
//!
//! The paper's §5.4 diagnosis (Fig. 13) is that *processing time itself
//! rises with load because the shard tier queues internally* — a fact the
//! flat per-host lifecycle events cannot attribute. This module adds the
//! causal layer: a [`TraceId`]/[`SpanId`] context is minted where a query
//! enters the system (generator, TCP front client, or broker), propagated
//! through every sub-query (by value in process, as a versioned trailing
//! field on the wire), and every hop opens a span — front dispatch, broker
//! admission + queue, each fan-out round, per-shard sub-query queue and
//! service, and the aggregation gaps between rounds.
//!
//! Spans are emitted on close as [`Event::Span`] records through the same
//! [`EventSink`] the lifecycle events use, so the simulator stamps them
//! with virtual time and the threaded hosts with wall-clock time, and one
//! JSONL file carries both. Reconstruction and the Fig. 13-style
//! "where the milliseconds went" report live in
//! [`trace_report`](super::trace_report).
//!
//! # Sampling
//!
//! Tracing must stay safe at the overload rates the benches drive, so the
//! [`Tracer`] applies head-based 1-in-N sampling ([`TracerConfig::sample_every`])
//! when a trace is rooted locally, and *always* emits traces that end
//! rejected, expired, or failed — plus, optionally, traces whose
//! end-to-end time breaches [`TracerConfig::slo_violation_ns`]. To make
//! the retroactive cases possible, the broker buffers its spans in a
//! per-query [`QueryTrace`] and decides at finalization; only the shard
//! tier emits eagerly, and only when the context's `sampled` bit says the
//! trace is definitely being collected (so retroactively-emitted traces
//! are broker-complete and never contain orphan references).
//!
//! When no tracer is configured the hosts never construct a
//! [`QueryTrace`]; the disabled path is one `Option` test, kept off the
//! admission hot path by `crates/bench/benches/overhead.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bouncer_metrics::Nanos;

use super::{Event, EventSink};
use crate::types::TypeId;

/// Globally unique identifier of one end-to-end trace (one client query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Globally unique identifier of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// Process-local id sequence; the process id is mixed into the top bits so
/// ids minted on both sides of a TCP deployment never collide, while the
/// result stays below 2^53 and survives a JSON `f64` round trip exactly.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn mint() -> u64 {
    let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed) & ((1 << 42) - 1);
    (((std::process::id() as u64) & 0x7ff) << 42) | seq
}

/// Mints a fresh trace id.
pub fn new_trace_id() -> TraceId {
    TraceId(mint())
}

/// Mints a fresh span id.
pub fn new_span_id() -> SpanId {
    SpanId(mint())
}

/// The causal context a query or sub-query carries between components.
///
/// `parent` is the span the receiving component should attach its own
/// spans under. `sampled` means "this trace is definitely being collected"
/// — downstream components may emit eagerly; when it is `false` the trace
/// may still surface retroactively (rejection/SLO violation) from the
/// buffering side alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this work belongs to.
    pub trace: TraceId,
    /// The span to parent new spans under.
    pub parent: SpanId,
    /// Whether the trace is definitely being collected.
    pub sampled: bool,
}

/// What a span represents — one hop or phase of a query's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Root minted by a remote client (generator / TCP front client):
    /// submission to outcome, as the caller saw it.
    Client,
    /// Front server work between decoding a query off the wire and handing
    /// it to the broker.
    FrontDispatch,
    /// The broker-side root: offered to the gate through final outcome.
    Query,
    /// The admission decision itself (gate offer).
    Admission,
    /// Waiting in the broker's queue between admission and engine pickup.
    BrokerQueue,
    /// Engine execution of the query plan, fan-out rounds included.
    BrokerService,
    /// One fan-out round: first sub-query sent to last reply received. A
    /// round is as slow as its straggler shard.
    Round(u16),
    /// One sub-query as the broker sees it: send to reply (includes
    /// transport and the shard's queue + service).
    SubQuery {
        /// The shard the sub-query was routed to.
        shard: u16,
    },
    /// A hedged duplicate sub-query that *lost* the race: send to the
    /// moment the broker cancelled it. The winning copy is recorded as a
    /// plain [`SpanKind::SubQuery`], so a round with hedging shows the
    /// winner and the cancelled loser side by side.
    HedgeSubQuery {
        /// The shard the hedged duplicate was routed to.
        shard: u16,
    },
    /// Waiting in the shard host's queue.
    ShardQueue {
        /// The shard that queued the sub-query.
        shard: u16,
    },
    /// Shard engine execution of the sub-query.
    ShardService {
        /// The shard that served the sub-query.
        shard: u16,
    },
    /// Broker compute between a closed round and the next send (reply
    /// aggregation / frontier construction).
    Aggregation(u16),
}

impl SpanKind {
    /// The kind's snake_case name, as used in the JSONL `kind` field.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Client => "client",
            SpanKind::FrontDispatch => "front_dispatch",
            SpanKind::Query => "query",
            SpanKind::Admission => "admission",
            SpanKind::BrokerQueue => "broker_queue",
            SpanKind::BrokerService => "broker_service",
            SpanKind::Round(_) => "round",
            SpanKind::SubQuery { .. } => "subquery",
            SpanKind::HedgeSubQuery { .. } => "hedge_subquery",
            SpanKind::ShardQueue { .. } => "shard_queue",
            SpanKind::ShardService { .. } => "shard_service",
            SpanKind::Aggregation(_) => "aggregation",
        }
    }

    /// The fan-out round index, for round-scoped kinds.
    pub fn round(&self) -> Option<u16> {
        match *self {
            SpanKind::Round(r) | SpanKind::Aggregation(r) => Some(r),
            _ => None,
        }
    }

    /// The shard index, for shard-scoped kinds.
    pub fn shard(&self) -> Option<u16> {
        match *self {
            SpanKind::SubQuery { shard }
            | SpanKind::HedgeSubQuery { shard }
            | SpanKind::ShardQueue { shard }
            | SpanKind::ShardService { shard } => Some(shard),
            _ => None,
        }
    }
}

/// How the traced work ended. Carried on root spans; non-root spans are
/// always `Ok` (a failed sub-query surfaces as the root's status).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// Completed normally.
    Ok,
    /// Turned away at admission (broker or shard).
    Rejected,
    /// Admitted but dropped past its deadline.
    Expired,
    /// Failed mid-execution (shard error, transport loss).
    Failed,
}

impl SpanStatus {
    /// The status's lowercase name, as used in the JSONL `status` field.
    pub fn label(&self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Rejected => "rejected",
            SpanStatus::Expired => "expired",
            SpanStatus::Failed => "failed",
        }
    }
}

/// Sampling policy for a [`Tracer`].
#[derive(Debug, Clone, Copy)]
pub struct TracerConfig {
    /// Head-based sampling: collect 1 in `sample_every` locally-rooted
    /// traces. `0` disables head sampling entirely (only the always-sample
    /// cases below are emitted). Default: 1 (collect everything).
    pub sample_every: u64,
    /// Retroactively emit any trace whose end-to-end time reaches this
    /// bound, even when head sampling skipped it. Such traces contain the
    /// broker-buffered spans only (no eager shard spans), which is still a
    /// complete tree. Default: `None`.
    pub slo_violation_ns: Option<Nanos>,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self {
            sample_every: 1,
            slo_violation_ns: None,
        }
    }
}

/// One query's buffered trace: the root plus every span recorded while the
/// query moved through the broker (or simulator).
///
/// Buffering instead of emitting lets the [`Tracer`] decide at
/// finalization whether the trace is kept — which is what makes
/// "always sample rejected / expired / SLO-violating" possible without
/// sampling everything.
#[derive(Debug)]
pub struct QueryTrace {
    trace: TraceId,
    root: SpanId,
    parent: Option<SpanId>,
    ty: Option<TypeId>,
    start: Nanos,
    head_sampled: bool,
    spans: Vec<(SpanKind, SpanId, SpanId, Nanos, Nanos)>,
}

impl QueryTrace {
    /// The trace this query belongs to.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// The root span id (what child spans parent under).
    pub fn root_span(&self) -> SpanId {
        self.root
    }

    /// When the root opened.
    pub fn start(&self) -> Nanos {
        self.start
    }

    /// Whether head sampling selected this trace (downstream components may
    /// emit eagerly).
    pub fn head_sampled(&self) -> bool {
        self.head_sampled
    }

    /// A context for downstream work parented under `parent`.
    pub fn ctx_for(&self, parent: SpanId) -> TraceContext {
        TraceContext {
            trace: self.trace,
            parent,
            sampled: self.head_sampled,
        }
    }

    /// Buffers one closed span.
    pub fn record(&mut self, kind: SpanKind, span: SpanId, parent: SpanId, start: Nanos, end: Nanos) {
        self.spans.push((kind, span, parent, start, end));
    }

    /// Buffers one closed span parented directly under the root; returns
    /// its freshly minted id.
    pub fn record_child(&mut self, kind: SpanKind, start: Nanos, end: Nanos) -> SpanId {
        let span = new_span_id();
        self.record(kind, span, self.root, start, end);
        span
    }
}

/// The sampling gatekeeper and span emitter.
///
/// One `Tracer` is shared by every component of a deployment (broker,
/// shards, front, generator) so all spans land in one sink and the
/// sampled/dropped counters describe the whole system. The counters are
/// bumped once per *root* finalization ([`Tracer::finish`]), i.e. at
/// broker-query granularity.
#[derive(Debug)]
pub struct Tracer {
    sink: Arc<dyn EventSink>,
    cfg: TracerConfig,
    head: AtomicU64,
    sampled: AtomicU64,
    dropped: AtomicU64,
}

impl Tracer {
    /// A tracer emitting through `sink` under the given sampling policy.
    pub fn new(sink: Arc<dyn EventSink>, cfg: TracerConfig) -> Self {
        Self {
            sink,
            cfg,
            head: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether the underlying sink collects anything. Hosts check this once
    /// per query; `false` means no [`QueryTrace`] is ever constructed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// The sampling policy in force.
    pub fn config(&self) -> TracerConfig {
        self.cfg
    }

    /// Draws one head-sampling decision (1 in
    /// [`TracerConfig::sample_every`]).
    pub fn head_decision(&self) -> bool {
        let n = self.cfg.sample_every;
        n != 0 && self.head.fetch_add(1, Ordering::Relaxed).is_multiple_of(n)
    }

    /// Opens a query root. With an incoming sampled context the root joins
    /// that trace under `ctx.parent`; otherwise a fresh trace is minted and
    /// head sampling decides eager collection. An incoming *unsampled*
    /// context is ignored (a retroactively-emitted root must not reference
    /// a parent that was never emitted).
    pub fn begin(&self, ty: Option<TypeId>, start: Nanos, ctx: Option<TraceContext>) -> QueryTrace {
        match ctx.filter(|c| c.sampled) {
            Some(c) => QueryTrace {
                trace: c.trace,
                root: new_span_id(),
                parent: Some(c.parent),
                ty,
                start,
                head_sampled: true,
                spans: Vec::new(),
            },
            None => QueryTrace {
                trace: new_trace_id(),
                root: new_span_id(),
                parent: None,
                ty,
                start,
                head_sampled: self.head_decision(),
                spans: Vec::new(),
            },
        }
    }

    /// Eagerly emits one closed span (the shard tier's path; only valid
    /// when the context's `sampled` bit is set). Returns the minted id.
    pub fn emit_span(
        &self,
        trace: TraceId,
        kind: SpanKind,
        parent: SpanId,
        start: Nanos,
        end: Nanos,
    ) -> SpanId {
        let span = new_span_id();
        self.sink.emit(&Event::Span {
            at: end,
            trace,
            span,
            parent: Some(parent),
            kind,
            start,
            end,
            ty: None,
            status: SpanStatus::Ok,
        });
        span
    }

    /// Eagerly emits a root span that was never buffered (the remote
    /// client's [`SpanKind::Client`] root). Does not touch the
    /// sampled/dropped counters — those count broker-root finalizations.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_root(
        &self,
        trace: TraceId,
        span: SpanId,
        kind: SpanKind,
        ty: Option<TypeId>,
        start: Nanos,
        end: Nanos,
        status: SpanStatus,
    ) {
        self.sink.emit(&Event::Span {
            at: end,
            trace,
            span,
            parent: None,
            kind,
            start,
            end,
            ty,
            status,
        });
    }

    /// Finalizes a query trace: applies the sampling policy (head decision,
    /// always-sample non-`Ok` outcomes, optional SLO-violation bound) and
    /// either emits the root plus every buffered span or drops the lot.
    pub fn finish(&self, qt: QueryTrace, status: SpanStatus, end: Nanos) {
        let slo_violated = self
            .cfg
            .slo_violation_ns
            .is_some_and(|thr| end.saturating_sub(qt.start) >= thr);
        if !(qt.head_sampled || status != SpanStatus::Ok || slo_violated) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.sampled.fetch_add(1, Ordering::Relaxed);
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(&Event::Span {
            at: end,
            trace: qt.trace,
            span: qt.root,
            parent: qt.parent,
            kind: SpanKind::Query,
            start: qt.start,
            end,
            ty: qt.ty,
            status,
        });
        for (kind, span, parent, start, span_end) in qt.spans {
            self.sink.emit(&Event::Span {
                at: span_end,
                trace: qt.trace,
                span,
                parent: Some(parent),
                kind,
                start,
                end: span_end,
                ty: None,
                status: SpanStatus::Ok,
            });
        }
    }

    /// Traces emitted so far (`bouncer_trace_sampled_total`).
    pub fn sampled_total(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Traces discarded by sampling so far (`bouncer_trace_dropped_total`).
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemorySink;
    use super::*;

    fn mem_tracer(cfg: TracerConfig) -> (Arc<MemorySink>, Tracer) {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone(), cfg);
        (sink, tracer)
    }

    fn span_kinds(sink: &MemorySink) -> Vec<&'static str> {
        sink.events()
            .iter()
            .map(|e| match e {
                Event::Span { kind, .. } => kind.label(),
                other => other.name(),
            })
            .collect()
    }

    #[test]
    fn ids_are_unique_and_json_safe() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, b);
        assert!(a.0 < (1 << 53) && b.0 < (1 << 53));
        let s = new_span_id();
        assert!(s.0 < (1 << 53));
    }

    #[test]
    fn head_sampling_keeps_one_in_n() {
        let (_, tracer) = mem_tracer(TracerConfig {
            sample_every: 4,
            slo_violation_ns: None,
        });
        let kept: usize = (0..16).filter(|_| tracer.head_decision()).count();
        assert_eq!(kept, 4);
        let (_, never) = mem_tracer(TracerConfig {
            sample_every: 0,
            slo_violation_ns: None,
        });
        assert!(!(0..16).any(|_| never.head_decision()));
    }

    #[test]
    fn sampled_trace_emits_root_and_buffered_spans() {
        let (sink, tracer) = mem_tracer(TracerConfig::default());
        let mut qt = tracer.begin(Some(TypeId(2)), 100, None);
        assert!(qt.head_sampled());
        qt.record_child(SpanKind::Admission, 100, 110);
        qt.record_child(SpanKind::BrokerQueue, 110, 150);
        tracer.finish(qt, SpanStatus::Ok, 300);
        assert_eq!(span_kinds(&sink), vec!["query", "admission", "broker_queue"]);
        assert_eq!(tracer.sampled_total(), 1);
        assert_eq!(tracer.dropped_total(), 0);
    }

    #[test]
    fn unsampled_ok_trace_is_dropped_but_rejected_is_kept() {
        let (sink, tracer) = mem_tracer(TracerConfig {
            sample_every: 0,
            slo_violation_ns: None,
        });
        let qt = tracer.begin(None, 0, None);
        assert!(!qt.head_sampled());
        tracer.finish(qt, SpanStatus::Ok, 50);
        assert!(sink.is_empty());
        assert_eq!(tracer.dropped_total(), 1);

        let mut qt = tracer.begin(None, 0, None);
        qt.record_child(SpanKind::Admission, 0, 5);
        tracer.finish(qt, SpanStatus::Rejected, 5);
        assert_eq!(span_kinds(&sink), vec!["query", "admission"]);
        assert_eq!(tracer.sampled_total(), 1);
    }

    #[test]
    fn slo_violation_is_retroactively_sampled() {
        let (sink, tracer) = mem_tracer(TracerConfig {
            sample_every: 0,
            slo_violation_ns: Some(1_000),
        });
        let fast = tracer.begin(None, 0, None);
        tracer.finish(fast, SpanStatus::Ok, 999);
        assert!(sink.is_empty());
        let slow = tracer.begin(None, 0, None);
        tracer.finish(slow, SpanStatus::Ok, 1_000);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn sampled_context_is_adopted_and_unsampled_context_is_ignored() {
        let (_, tracer) = mem_tracer(TracerConfig {
            sample_every: 0,
            slo_violation_ns: None,
        });
        let parent = new_span_id();
        let upstream = TraceContext {
            trace: TraceId(7),
            parent,
            sampled: true,
        };
        let qt = tracer.begin(None, 0, Some(upstream));
        assert_eq!(qt.trace_id(), TraceId(7));
        assert!(qt.head_sampled(), "joining a sampled trace forces emission");

        let unsampled = TraceContext {
            trace: TraceId(7),
            parent,
            sampled: false,
        };
        let qt = tracer.begin(None, 0, Some(unsampled));
        assert_ne!(qt.trace_id(), TraceId(7), "unsampled upstream is not joined");
        assert!(!qt.head_sampled());
    }

    #[test]
    fn ctx_for_carries_trace_and_sampling() {
        let (_, tracer) = mem_tracer(TracerConfig::default());
        let qt = tracer.begin(None, 0, None);
        let parent = new_span_id();
        let ctx = qt.ctx_for(parent);
        assert_eq!(ctx.trace, qt.trace_id());
        assert_eq!(ctx.parent, parent);
        assert!(ctx.sampled);
    }
}
