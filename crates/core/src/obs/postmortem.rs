//! Offline incident-dump analysis: parse an `incident-*.jsonl` file (see
//! [`super::health::HealthSampler`]) and reconstruct the episode timeline
//! the way the paper diagnoses overload (Fig. 13): queue-depth curve,
//! per-type attainment, estimate drift, and controller actions on one
//! time axis.
//!
//! The dump has three line shapes, all JSON objects:
//!
//! 1. A header: `{"incident":{"at_ns":..,"reason":..,..}}`.
//! 2. Trailing health history: ordinary JSONL events (`health_sample`,
//!    `type_health`).
//! 3. Flight-recorder records: `{"event":"record","ring":..,"seq":..,
//!    "at_ns":..,"kind":..,"type":..,"a":"..","b":".."}` — `a`/`b` are
//!    decimal *strings* because they carry full-width `u64` payloads
//!    (often `f64::to_bits`) that a float-backed JSON number would
//!    corrupt.
//!
//! The CLI front end is `bouncer-cli postmortem <dump.jsonl>`, a sibling
//! of `trace-report` (see OBSERVABILITY.md for a worked walkthrough).

use std::fmt::Write as _;

use bouncer_metrics::time::as_millis_f64;
use bouncer_metrics::Nanos;

use super::recorder::{param_name, RecordKind, TY_NONE};
use super::{parse_json, JsonValue};

/// The dump's first line, identifying the incident.
#[derive(Debug, Clone)]
pub struct DumpHeader {
    /// Trigger time (window end), in stream nanoseconds.
    pub at_ns: Nanos,
    /// Which trigger fired.
    pub reason: String,
    /// The run's scenario content hash, when the stream carried one.
    pub scenario_hash: Option<String>,
    /// Flight-recorder rings drained.
    pub rings: u64,
    /// Records ever written across rings at dump time.
    pub written: u64,
    /// Records already overwritten (lost to ring capacity).
    pub dropped: u64,
    /// Records actually captured in this dump.
    pub records: u64,
    /// Query type names, dense index order.
    pub types: Vec<String>,
}

/// One `health_sample` line from the trailing history.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Sample time (window end).
    pub at: Nanos,
    /// Queued queries at close.
    pub queue_depth: u64,
    /// In-process queries at close.
    pub in_flight: u64,
    /// Probed SPSC ring occupancy (0 when unprobed).
    pub ring_occupancy: u64,
    /// Window within-SLO completion fraction.
    pub attainment: f64,
    /// Window rejection fraction.
    pub rejection: f64,
}

/// One `type_health` line from the trailing history.
#[derive(Debug, Clone, Copy)]
pub struct TypeSample {
    /// Sample time (window end).
    pub at: Nanos,
    /// Dense type index.
    pub ty: usize,
    /// Admission decisions in the window.
    pub received: u64,
    /// Rejections in the window.
    pub rejected: u64,
    /// Completions in the window.
    pub completed: u64,
    /// Completions within the SLO tail target.
    pub within_slo: u64,
}

/// One flight-recorder record line.
#[derive(Debug, Clone)]
pub struct DumpRecord {
    /// Ring (thread) that wrote the record.
    pub ring: String,
    /// Per-ring sequence number.
    pub seq: u64,
    /// Record timestamp.
    pub at: Nanos,
    /// What happened.
    pub kind: RecordKind,
    /// Dense type index / parameter code, when typed.
    pub ty: Option<u16>,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// A fully parsed incident dump.
#[derive(Debug, Clone)]
pub struct Dump {
    /// The identifying header.
    pub header: DumpHeader,
    /// Trailing health samples, stream order.
    pub samples: Vec<Sample>,
    /// Trailing per-type samples, stream order.
    pub type_samples: Vec<TypeSample>,
    /// Flight-recorder records, as dumped (timestamp-ordered).
    pub records: Vec<DumpRecord>,
}

fn need_u64(v: &JsonValue, key: &str, what: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("{what}: missing or non-integer `{key}`"))
}

fn need_f64(v: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| format!("{what}: missing or non-number `{key}`"))
}

fn payload_word(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("record line: `{key}` must be a decimal string"))
}

/// Parses a whole incident dump. Unknown event lines are skipped (the
/// trailing history may grow new event kinds); a malformed header or
/// record line is an error.
pub fn parse_dump(text: &str) -> Result<Dump, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty dump file")?;
    let head_val = parse_json(first).map_err(|e| format!("header: {e}"))?;
    let inc = head_val
        .get("incident")
        .ok_or("first line is not an incident header")?;
    let header = DumpHeader {
        at_ns: need_u64(inc, "at_ns", "header")?,
        reason: inc
            .get("reason")
            .and_then(|v| v.as_str())
            .ok_or("header: missing `reason`")?
            .to_string(),
        scenario_hash: inc
            .get("scenario_hash")
            .and_then(|v| v.as_str())
            .map(str::to_string),
        rings: need_u64(inc, "rings", "header")?,
        written: need_u64(inc, "written", "header")?,
        dropped: need_u64(inc, "dropped", "header")?,
        records: need_u64(inc, "records", "header")?,
        types: inc
            .get("types")
            .and_then(|v| match v {
                JsonValue::Array(items) => Some(
                    items
                        .iter()
                        .filter_map(|i| i.as_str().map(str::to_string))
                        .collect(),
                ),
                _ => None,
            })
            .unwrap_or_default(),
    };
    let mut dump = Dump {
        header,
        samples: Vec::new(),
        type_samples: Vec::new(),
        records: Vec::new(),
    };
    for (idx, line) in lines {
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        match v.get("event").and_then(|e| e.as_str()) {
            Some("health_sample") => dump.samples.push(Sample {
                at: need_u64(&v, "at_ns", "health_sample")?,
                queue_depth: need_u64(&v, "queue_depth", "health_sample")?,
                in_flight: need_u64(&v, "in_flight", "health_sample")?,
                ring_occupancy: need_u64(&v, "ring_occupancy", "health_sample")?,
                attainment: need_f64(&v, "attainment", "health_sample")?,
                rejection: need_f64(&v, "rejection", "health_sample")?,
            }),
            Some("type_health") => dump.type_samples.push(TypeSample {
                at: need_u64(&v, "at_ns", "type_health")?,
                ty: need_u64(&v, "type", "type_health")? as usize,
                received: need_u64(&v, "received", "type_health")?,
                rejected: need_u64(&v, "rejected", "type_health")?,
                completed: need_u64(&v, "completed", "type_health")?,
                within_slo: need_u64(&v, "within_slo", "type_health")?,
            }),
            Some("record") => {
                let kind_name = v
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .ok_or("record line: missing `kind`")?;
                dump.records.push(DumpRecord {
                    ring: v
                        .get("ring")
                        .and_then(|r| r.as_str())
                        .unwrap_or("?")
                        .to_string(),
                    seq: need_u64(&v, "seq", "record")?,
                    at: need_u64(&v, "at_ns", "record")?,
                    kind: RecordKind::from_name(kind_name)
                        .ok_or_else(|| format!("record line: unknown kind `{kind_name}`"))?,
                    ty: v.get("type").and_then(|t| t.as_u64()).map(|t| t as u16),
                    a: payload_word(&v, "a")?,
                    b: payload_word(&v, "b")?,
                });
            }
            _ => {} // other trailing events: not needed for the report
        }
    }
    Ok(dump)
}

/// One timeline bucket of the reconstructed episode.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bucket {
    /// Bucket start, stream nanoseconds.
    pub start: Nanos,
    /// Admissions recorded in the bucket.
    pub admitted: u64,
    /// Rejections recorded in the bucket.
    pub rejected: u64,
    /// Completions recorded in the bucket.
    pub completed: u64,
    /// Expiries recorded in the bucket.
    pub expired: u64,
    /// Last-known queue depth by bucket end (carried forward from
    /// `enqueued` queue-length payloads and health samples).
    pub depth: u64,
}

/// Per-type totals reconstructed from the dump window.
#[derive(Debug, Clone, Default)]
pub struct TypeReport {
    /// Dense type index.
    pub index: usize,
    /// Admissions + rejections across the captured records.
    pub received: u64,
    /// Rejections across the captured records.
    pub rejected: u64,
    /// Completions across the captured records.
    pub completed: u64,
    /// Within-SLO completions summed from `type_health` history.
    pub within_slo: u64,
    /// Completions summed from `type_health` history (the attainment
    /// denominator — record payloads don't carry SLO verdicts).
    pub sampled_completed: u64,
    /// First and last cached mean estimate seen (`estimate_refresh`), ns.
    pub mean_drift: Option<(f64, f64)>,
    /// First and last cached tail percentile estimate seen, ns.
    pub tail_drift: Option<(u64, u64)>,
}

/// One control-plane action on the timeline.
#[derive(Debug, Clone)]
pub struct ControllerAction {
    /// Action time.
    pub at: Nanos,
    /// Targeted parameter name.
    pub param: &'static str,
    /// Decided / installed value.
    pub value: f64,
    /// `true` for a `controller_decision`, `false` for the
    /// `param_update` that later installed it.
    pub decision: bool,
    /// Interval attainment the decision saw (decisions only).
    pub attainment: Option<f64>,
    /// Interval rejection rate the decision saw (decisions only).
    pub rejection: Option<f64>,
}

/// The reconstructed episode.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Timeline start (earliest record/sample timestamp).
    pub t0: Nanos,
    /// Bucket width, nanoseconds.
    pub bucket_ns: Nanos,
    /// The bucketed timeline, oldest first.
    pub buckets: Vec<Bucket>,
    /// Peak queue depth observed anywhere in the dump.
    pub peak_depth: u64,
    /// Minimum window attainment seen in the health history.
    pub min_attainment: Option<f64>,
    /// Maximum window rejection rate seen in the health history.
    pub max_rejection: Option<f64>,
    /// Per-type reconstruction, dense index order.
    pub types: Vec<TypeReport>,
    /// Controller decisions and installs, time order.
    pub actions: Vec<ControllerAction>,
    /// `(parks, wakes)` engine idle transitions (rings runtime only).
    pub engine_transitions: (u64, u64),
    /// Rejection counts by reason label.
    pub reject_reasons: Vec<(&'static str, u64)>,
}

/// Number of timeline buckets a report renders.
pub const TIMELINE_BUCKETS: usize = 24;

/// Reconstructs the episode from a parsed dump.
pub fn analyze(dump: &Dump) -> Analysis {
    let times = dump
        .records
        .iter()
        .map(|r| r.at)
        .chain(dump.samples.iter().map(|s| s.at));
    let t0 = times.clone().min().unwrap_or(dump.header.at_ns);
    let t1 = times.max().unwrap_or(dump.header.at_ns).max(t0 + 1);
    let bucket_ns = ((t1 - t0) / TIMELINE_BUCKETS as u64).max(1);
    let n_buckets = ((t1 - t0) / bucket_ns + 1).min(TIMELINE_BUCKETS as u64 + 1) as usize;
    let mut buckets = vec![Bucket::default(); n_buckets];
    for (i, b) in buckets.iter_mut().enumerate() {
        b.start = t0 + i as u64 * bucket_ns;
    }
    let slot = |at: Nanos| (((at.saturating_sub(t0)) / bucket_ns) as usize).min(n_buckets - 1);

    let mut types: Vec<TypeReport> = Vec::new();
    let grow = |idx: usize, types: &mut Vec<TypeReport>| {
        if types.len() <= idx {
            for i in types.len()..=idx {
                types.push(TypeReport { index: i, ..TypeReport::default() });
            }
        }
    };
    let mut actions = Vec::new();
    let mut parks = 0u64;
    let mut wakes = 0u64;
    let mut reject_reasons: Vec<(&'static str, u64)> = Vec::new();
    // Depth gauge points from whichever source saw the truth last.
    let mut depth_points: Vec<(Nanos, u64)> = Vec::new();

    for r in &dump.records {
        let b = &mut buckets[slot(r.at)];
        match r.kind {
            RecordKind::Admitted => {
                b.admitted += 1;
                if let Some(ty) = r.ty.filter(|t| *t != TY_NONE) {
                    grow(ty as usize, &mut types);
                    types[ty as usize].received += 1;
                }
            }
            RecordKind::Rejected => {
                b.rejected += 1;
                if let Some(ty) = r.ty.filter(|t| *t != TY_NONE) {
                    grow(ty as usize, &mut types);
                    types[ty as usize].received += 1;
                    types[ty as usize].rejected += 1;
                }
                let label = crate::policy::RejectReason::ALL
                    .get(r.a as usize)
                    .map_or("?", |reason| reason.label());
                match reject_reasons.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, n)) => *n += 1,
                    None => reject_reasons.push((label, 1)),
                }
            }
            RecordKind::Completed => {
                b.completed += 1;
                if let Some(ty) = r.ty.filter(|t| *t != TY_NONE) {
                    grow(ty as usize, &mut types);
                    types[ty as usize].completed += 1;
                }
            }
            RecordKind::Expired => b.expired += 1,
            RecordKind::Enqueued => depth_points.push((r.at, r.a)),
            RecordKind::HealthSample => depth_points.push((r.at, r.a)),
            RecordKind::EstimateRefresh | RecordKind::EstimateCold => {
                if let Some(ty) = r.ty.filter(|t| *t != TY_NONE) {
                    grow(ty as usize, &mut types);
                    let mean = f64::from_bits(r.a);
                    let t = &mut types[ty as usize];
                    t.mean_drift = Some(match t.mean_drift {
                        Some((first, _)) => (first, mean),
                        None => (mean, mean),
                    });
                    if r.b != u64::MAX {
                        t.tail_drift = Some(match t.tail_drift {
                            Some((first, _)) => (first, r.b),
                            None => (r.b, r.b),
                        });
                    }
                }
            }
            RecordKind::ControllerDecision => actions.push(ControllerAction {
                at: r.at,
                param: param_name(r.ty.unwrap_or(TY_NONE)),
                value: f64::from_bits(r.a),
                decision: true,
                attainment: Some(f64::from(f32::from_bits((r.b >> 32) as u32))),
                rejection: Some(f64::from(f32::from_bits(r.b as u32))),
            }),
            RecordKind::ParamUpdate => actions.push(ControllerAction {
                at: r.at,
                param: param_name(r.ty.unwrap_or(TY_NONE)),
                value: f64::from_bits(r.a),
                decision: false,
                attainment: None,
                rejection: None,
            }),
            RecordKind::EngineState => {
                if r.b == 1 {
                    parks += 1;
                } else {
                    wakes += 1;
                }
            }
            _ => {}
        }
    }
    for s in &dump.samples {
        depth_points.push((s.at, s.queue_depth));
    }
    for ts in &dump.type_samples {
        grow(ts.ty, &mut types);
        types[ts.ty].within_slo += ts.within_slo;
        types[ts.ty].sampled_completed += ts.completed;
    }
    depth_points.sort_by_key(|(at, _)| *at);
    let peak_depth = depth_points.iter().map(|(_, d)| *d).max().unwrap_or(0);
    // Carry the last-known depth forward through the buckets.
    let mut depth = 0u64;
    let mut pi = 0usize;
    for (i, b) in buckets.iter_mut().enumerate() {
        let end = t0 + (i as u64 + 1) * bucket_ns;
        while pi < depth_points.len() && depth_points[pi].0 < end {
            depth = depth_points[pi].1;
            pi += 1;
        }
        b.depth = depth;
    }
    actions.sort_by_key(|a| a.at);
    Analysis {
        t0,
        bucket_ns,
        buckets,
        peak_depth,
        min_attainment: dump
            .samples
            .iter()
            .map(|s| s.attainment)
            .fold(None, |acc: Option<f64>, a| {
                Some(acc.map_or(a, |m| m.min(a)))
            }),
        max_rejection: dump
            .samples
            .iter()
            .map(|s| s.rejection)
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |m| m.max(r)))
            }),
        types,
        actions,
        engine_transitions: (parks, wakes),
        reject_reasons,
    }
}

fn bar(value: u64, peak: u64, width: usize) -> String {
    if peak == 0 {
        return String::new();
    }
    let filled = ((value as f64 / peak as f64) * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

/// Renders the full postmortem report for a parsed dump.
pub fn render_report(dump: &Dump) -> String {
    let a = analyze(dump);
    let h = &dump.header;
    let mut out = String::with_capacity(4096);
    let _ = writeln!(
        out,
        "incident: {} at t={:.3} ms",
        h.reason,
        as_millis_f64(h.at_ns)
    );
    if let Some(hash) = &h.scenario_hash {
        let _ = writeln!(out, "scenario: {hash}");
    }
    let _ = writeln!(
        out,
        "flight recorder: {} rings, {} captured of {} written ({} overwritten)",
        h.rings, h.records, h.written, h.dropped
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "timeline ({} buckets x {:.3} ms, t relative to {:.3} ms):",
        a.buckets.len(),
        as_millis_f64(a.bucket_ns),
        as_millis_f64(a.t0)
    );
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>7} {:>7} {:>9} {:>7}  queue",
        "t(ms)", "depth", "admit", "reject", "complete", "expire"
    );
    for b in &a.buckets {
        let _ = writeln!(
            out,
            "{:>10.3} {:>7} {:>7} {:>7} {:>9} {:>7}  {}",
            as_millis_f64(b.start - a.t0),
            b.depth,
            b.admitted,
            b.rejected,
            b.completed,
            b.expired,
            bar(b.depth, a.peak_depth, 24)
        );
    }
    let _ = writeln!(out, "peak queue depth: {}", a.peak_depth);
    if let (Some(min_att), Some(max_rej)) = (a.min_attainment, a.max_rejection) {
        let _ = writeln!(
            out,
            "health trail: attainment dipped to {:.3}, rejection peaked at {:.3}",
            min_att, max_rej
        );
    }
    if !a.types.iter().any(|t| t.received + t.completed + t.sampled_completed > 0) {
        let _ = writeln!(out, "\nper type: no typed traffic captured");
    } else {
        let _ = writeln!(out, "\nper type:");
        for t in &a.types {
            if t.received + t.completed + t.sampled_completed == 0 {
                continue;
            }
            let name = h
                .types
                .get(t.index)
                .map_or("?", String::as_str);
            let rej_pct = if t.received > 0 {
                100.0 * t.rejected as f64 / t.received as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "  [{}] {}: received {}, rejected {} ({:.1}%), completed {}",
                t.index, name, t.received, t.rejected, rej_pct, t.completed
            );
            if t.sampled_completed > 0 {
                let _ = write!(
                    out,
                    ", attainment {:.3}",
                    t.within_slo as f64 / t.sampled_completed as f64
                );
            }
            let _ = writeln!(out);
            if let Some((first, last)) = t.mean_drift {
                let _ = write!(
                    out,
                    "       estimate drift: mean {:.3} ms -> {:.3} ms",
                    first / 1e6,
                    last / 1e6
                );
                if let Some((tf, tl)) = t.tail_drift {
                    let _ = write!(
                        out,
                        ", tail {:.3} ms -> {:.3} ms",
                        as_millis_f64(tf),
                        as_millis_f64(tl)
                    );
                }
                let _ = writeln!(out);
            }
        }
    }
    if a.actions.is_empty() {
        let _ = writeln!(out, "\ncontroller: no actions captured");
    } else {
        let _ = writeln!(out, "\ncontroller actions:");
        for act in &a.actions {
            if act.decision {
                let _ = writeln!(
                    out,
                    "  t={:>10.3} ms  decision  {} -> {:.4}  (attainment {:.3}, rejection {:.3})",
                    as_millis_f64(act.at.saturating_sub(a.t0)),
                    act.param,
                    act.value,
                    act.attainment.unwrap_or(f64::NAN),
                    act.rejection.unwrap_or(f64::NAN)
                );
            } else {
                let _ = writeln!(
                    out,
                    "  t={:>10.3} ms  installed {} -> {:.4}",
                    as_millis_f64(act.at.saturating_sub(a.t0)),
                    act.param,
                    act.value
                );
            }
        }
    }
    let (parks, wakes) = a.engine_transitions;
    if parks + wakes > 0 {
        let _ = writeln!(out, "\nengine idleness: {parks} parks, {wakes} wakes");
    }
    if !a.reject_reasons.is_empty() {
        let _ = write!(out, "\nrejections by reason:");
        for (label, n) in &a.reject_reasons {
            let _ = write!(out, " {label}={n}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::health::{HealthConfig, HealthSampler, TriggerConfig};
    use super::super::recorder::Recorder;
    use super::super::{null_sink, Event, EventSink};
    use super::*;
    use crate::types::TypeId;
    use std::sync::Arc;

    fn synthetic_dump() -> String {
        let mut s = String::new();
        s.push_str("{\"incident\":{\"at_ns\":3200000000,\"reason\":\"rejection_spike\",\"scenario_hash\":\"00000000deadbeef\",\"rings\":2,\"written\":100,\"dropped\":20,\"records\":4,\"types\":[\"lookup\",\"scan\"]}}\n");
        s.push_str("{\"event\":\"health_sample\",\"at_ns\":3000000000,\"queue_depth\":40,\"in_flight\":3,\"ring_occupancy\":5,\"pool_hits\":0,\"pool_misses\":0,\"pool_pooled\":0,\"attainment\":0.62,\"rejection\":0.55}\n");
        s.push_str("{\"event\":\"type_health\",\"at_ns\":3000000000,\"type\":0,\"received\":100,\"rejected\":55,\"completed\":20,\"within_slo\":12}\n");
        s.push_str("{\"event\":\"record\",\"ring\":\"main#0\",\"seq\":1,\"at_ns\":2900000000,\"kind\":\"enqueued\",\"type\":0,\"a\":\"37\",\"b\":\"0\"}\n");
        s.push_str("{\"event\":\"record\",\"ring\":\"main#0\",\"seq\":2,\"at_ns\":2950000000,\"kind\":\"rejected\",\"type\":0,\"a\":\"0\",\"b\":\"0\"}\n");
        let decided = 0.55f64.to_bits();
        let packed =
            (u64::from(0.62f32.to_bits()) << 32) | u64::from(0.55f32.to_bits());
        s.push_str(&format!(
            "{{\"event\":\"record\",\"ring\":\"main#0\",\"seq\":3,\"at_ns\":3100000000,\"kind\":\"controller_decision\",\"type\":0,\"a\":\"{decided}\",\"b\":\"{packed}\"}}\n"
        ));
        s.push_str("{\"event\":\"record\",\"ring\":\"shard0-ring0#1\",\"seq\":1,\"at_ns\":3150000000,\"kind\":\"engine_state\",\"type\":null,\"a\":\"0\",\"b\":\"1\"}\n");
        s
    }

    #[test]
    fn parse_reconstructs_every_line_shape() {
        let dump = parse_dump(&synthetic_dump()).unwrap();
        assert_eq!(dump.header.reason, "rejection_spike");
        assert_eq!(dump.header.types, vec!["lookup", "scan"]);
        assert_eq!(dump.samples.len(), 1);
        assert_eq!(dump.type_samples.len(), 1);
        assert_eq!(dump.records.len(), 4);
        let decision = &dump.records[2];
        assert_eq!(decision.kind, RecordKind::ControllerDecision);
        assert!((f64::from_bits(decision.a) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn analysis_surfaces_depth_attainment_and_controller() {
        let dump = parse_dump(&synthetic_dump()).unwrap();
        let a = analyze(&dump);
        assert_eq!(a.peak_depth, 40, "max of enqueued payloads and samples");
        assert_eq!(a.min_attainment, Some(0.62));
        assert_eq!(a.max_rejection, Some(0.55));
        assert_eq!(a.actions.len(), 1);
        assert_eq!(a.actions[0].param, "max_utilization");
        assert!(a.actions[0].decision);
        assert_eq!(a.engine_transitions, (1, 0));
        assert_eq!(a.types[0].rejected, 1, "from the captured record");
        assert_eq!(a.types[0].within_slo, 12, "from the type_health history");
        // Depth carries forward to trailing buckets.
        assert_eq!(a.buckets.last().unwrap().depth, 40);
    }

    #[test]
    fn report_renders_the_episode_on_one_timeline() {
        let dump = parse_dump(&synthetic_dump()).unwrap();
        let report = render_report(&dump);
        assert!(report.contains("incident: rejection_spike"));
        assert!(report.contains("peak queue depth: 40"));
        assert!(report.contains("attainment dipped to 0.620"));
        assert!(report.contains("max_utilization -> 0.5500"));
        assert!(report.contains("[0] lookup"));
        assert!(report.contains("engine idleness: 1 parks, 0 wakes"));
    }

    #[test]
    fn malformed_dumps_error_cleanly() {
        assert!(parse_dump("").is_err());
        assert!(parse_dump("{\"event\":\"tick\",\"at_ns\":1}\n").is_err());
        let mut bad = synthetic_dump();
        bad.push_str("{\"event\":\"record\",\"ring\":\"x\",\"seq\":9,\"at_ns\":1,\"kind\":\"enqueued\",\"type\":0,\"a\":12,\"b\":\"0\"}\n");
        let err = parse_dump(&bad).unwrap_err();
        assert!(err.contains("decimal string"), "{err}");
    }

    /// End-to-end within the obs layer: a sampler with a forced trigger
    /// writes a real dump, and the postmortem pipeline reads it back.
    #[test]
    fn real_dump_round_trips_through_postmortem() {
        let dir = std::env::temp_dir().join(format!(
            "bouncer-postmortem-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Recorder::new(256);
        let cfg = HealthConfig {
            interval: 1_000_000,
            slo_tails: vec![Some(500_000)],
            type_names: vec!["lookup".into()],
            dump_dir: Some(dir.clone()),
            trigger: TriggerConfig {
                rejection_rate: None,
                force_at: Some(7_000_000),
                ..TriggerConfig::default()
            },
            ..HealthConfig::default()
        };
        let sink = Arc::new(super::super::RecorderSink::new(
            Arc::clone(&recorder),
            Some(null_sink()),
        ));
        let sampler = HealthSampler::new(cfg, recorder, sink);
        let ty = TypeId::from_index(0);
        for i in 0..10u64 {
            let at = i * 600_000;
            sampler.emit(&Event::Admitted { at, ty });
            sampler.emit(&Event::Enqueued { at, ty, queue_len: (i + 1) as usize });
        }
        sampler.emit(&Event::ControllerDecision {
            at: 6_000_000,
            law: "aimd",
            param: "max_utilization",
            value: 0.6,
            attainment: 0.7,
            rejection: 0.4,
        });
        sampler.emit(&Event::Tick { at: 7_100_000 });
        assert_eq!(sampler.incidents(), 1);
        let text = std::fs::read_to_string(&sampler.incident_paths()[0]).unwrap();
        let dump = parse_dump(&text).unwrap();
        assert_eq!(dump.header.reason, "forced");
        assert_eq!(dump.header.types, vec!["lookup"]);
        let report = render_report(&dump);
        assert!(report.contains("incident: forced"));
        assert!(report.contains("peak queue depth: 10"), "{report}");
        assert!(report.contains("decision  max_utilization -> 0.6000"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
