//! The Maximum Queue Wait Time (MaxQWT) policy (§5.2.2).
//!
//! "It admits an incoming query Q only if the estimate for Q's mean queue
//! wait time is less than or equal to a configurable time limit
//! (ewt_mean ≤ T_limit)", with Eq. 5:
//!
//! ```text
//! ewt_mean = l · pt_mavg / P
//! ```
//!
//! where `l` is the FIFO queue's current length, `pt_mavg` the moving
//! average of processing times over a sliding window (default D = 60 s,
//! Δ = 1 s), and `P` the number of engine processes.
//!
//! The paper's §5.5 asks how MaxQWT fares when wait-time limits are set *per
//! query type*; [`MaxQueueWaitTime::with_per_type_limits`] implements that
//! variant (Figure 14).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use bouncer_metrics::time::{secs, Nanos};
use bouncer_metrics::MovingStats;

use crate::obs::{Event, SinkSlot};
use crate::policy::{AdmissionPolicy, Decision, RejectReason};
use crate::types::TypeId;

/// Admits while the estimated mean queue wait time is within a limit.
///
/// The decision path caches `pt_mavg` per window step: within one step the
/// moving average is read once and reused (new completions land in the
/// average but are only re-priced at the next step boundary or tick — a
/// staleness of at most Δ, the same granularity the window itself rolls
/// at), so `admit` is three relaxed loads in the steady state. The queue
/// length `l` stays live. [`MaxQueueWaitTime::estimated_wait_mean`] remains
/// the uncached reference read.
pub struct MaxQueueWaitTime {
    /// Wait-time limit per type; a single-element vector means one global
    /// limit (the paper's default implementation, type-oblivious).
    limits: Vec<Nanos>,
    parallelism: u32,
    pt_mavg: MovingStats,
    len: AtomicI64,
    /// Window step Δ, the granularity of the cached-mean refresh.
    window_step: Nanos,
    /// `f64::to_bits` of the cached `pt_mavg` mean.
    cached_mean_bits: AtomicU64,
    /// The window-step number (`now / Δ`) the cache was refreshed in;
    /// `u64::MAX` until the first read.
    cached_step: AtomicU64,
    sink: SinkSlot,
}

impl MaxQueueWaitTime {
    /// One global wait-time limit, the paper's configuration, with the
    /// default sliding window (D = 60 s, Δ = 1 s).
    pub fn new(limit: Nanos, parallelism: u32) -> Self {
        Self::with_window(vec![limit], parallelism, secs(60), secs(1))
    }

    /// Per-type wait-time limits (§5.5 / Figure 14). `limits[i]` applies to
    /// the type with index `i`.
    pub fn with_per_type_limits(limits: Vec<Nanos>, parallelism: u32) -> Self {
        Self::with_window(limits, parallelism, secs(60), secs(1))
    }

    /// Full control over limits and the moving-average window.
    pub fn with_window(
        limits: Vec<Nanos>,
        parallelism: u32,
        window_duration: Nanos,
        window_step: Nanos,
    ) -> Self {
        assert!(!limits.is_empty(), "need at least one wait-time limit");
        assert!(parallelism > 0, "parallelism must be positive");
        assert!(window_step > 0, "window step must be positive");
        Self {
            limits,
            parallelism,
            pt_mavg: MovingStats::new(window_duration, window_step),
            len: AtomicI64::new(0),
            window_step,
            cached_mean_bits: AtomicU64::new(0),
            cached_step: AtomicU64::new(u64::MAX),
            sink: SinkSlot::new(),
        }
    }

    fn limit_for(&self, ty: TypeId) -> Nanos {
        if self.limits.len() == 1 {
            self.limits[0]
        } else {
            self.limits[ty.index()]
        }
    }

    /// Eq. 5: the current mean queue wait estimate, `l · pt_mavg / P` —
    /// the uncached reference read (`admit` uses the step-cached mean).
    pub fn estimated_wait_mean(&self, now: Nanos) -> f64 {
        let l = self.len.load(Ordering::Relaxed).max(0) as f64;
        let pt = self.pt_mavg.mean(now).unwrap_or(0.0);
        l * pt / self.parallelism as f64
    }

    /// The `pt_mavg` read behind `admit`: refreshed once per window step
    /// (and on every tick), reused for every decision within the step.
    #[inline]
    fn cached_mean(&self, now: Nanos) -> f64 {
        let step = now / self.window_step;
        if self.cached_step.load(Ordering::Relaxed) == step {
            f64::from_bits(self.cached_mean_bits.load(Ordering::Relaxed))
        } else {
            self.refresh_cached_mean(now, step)
        }
    }

    #[cold]
    fn refresh_cached_mean(&self, now: Nanos, step: u64) -> f64 {
        let mean = self.pt_mavg.mean(now).unwrap_or(0.0);
        // Mean before step: a racing reader in the same step may pair the
        // new step with the old mean for one decision — a transient one
        // window-step of staleness, which this cache trades away anyway.
        self.cached_mean_bits.store(mean.to_bits(), Ordering::Relaxed);
        self.cached_step.store(step, Ordering::Relaxed);
        mean
    }
}

impl AdmissionPolicy for MaxQueueWaitTime {
    fn name(&self) -> &str {
        "maxqwt"
    }

    #[inline]
    fn admit(&self, ty: TypeId, now: Nanos) -> Decision {
        let l = self.len.load(Ordering::Relaxed).max(0) as f64;
        let est = l * self.cached_mean(now) / self.parallelism as f64;
        if est <= self.limit_for(ty) as f64 {
            Decision::Accept
        } else {
            Decision::Reject(RejectReason::WaitTimeLimit)
        }
    }

    #[inline]
    fn on_enqueued(&self, _ty: TypeId, _now: Nanos) {
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn on_dequeued(&self, _ty: TypeId, _wait: Nanos, _now: Nanos) {
        self.len.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    fn on_completed(&self, _ty: TypeId, processing: Nanos, now: Nanos) {
        self.pt_mavg.record(processing, now);
    }

    fn on_tick(&self, now: Nanos) {
        // The sliding window advances lazily on reads; the tick re-prices
        // the decision cache and reports the refreshed `pt_mavg` so
        // operators can watch Eq. 5's moving input.
        let mean = self.refresh_cached_mean(now, now / self.window_step);
        self.sink.emit(|| Event::MovingAvgRefresh {
            at: now,
            policy: "maxqwt",
            mean_ns: mean,
        });
    }

    fn attach_sink(&self, sink: std::sync::Arc<dyn crate::obs::EventSink>) {
        self.sink.attach(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bouncer_metrics::time::millis;

    fn warmed(limit: Nanos, parallelism: u32, pt: Nanos) -> MaxQueueWaitTime {
        let p = MaxQueueWaitTime::new(limit, parallelism);
        for i in 0..100 {
            p.on_completed(TypeId(0), pt, i * millis(10));
        }
        p
    }

    #[test]
    fn accepts_with_empty_queue() {
        let p = warmed(millis(15), 4, millis(10));
        assert!(p.admit(TypeId(0), secs(1)).is_accept());
    }

    #[test]
    fn rejects_when_wait_estimate_exceeds_limit() {
        // 8 queued x 10ms / 4 = 20ms > 15ms.
        let p = warmed(millis(15), 4, millis(10));
        for _ in 0..8 {
            p.on_enqueued(TypeId(0), secs(1));
        }
        assert_eq!(
            p.admit(TypeId(0), secs(1)),
            Decision::Reject(RejectReason::WaitTimeLimit)
        );
        // 6 x 10 / 4 = 15ms == limit -> accepted (<= comparison).
        p.on_dequeued(TypeId(0), 0, secs(1));
        p.on_dequeued(TypeId(0), 0, secs(1));
        assert!(p.admit(TypeId(0), secs(1)).is_accept());
    }

    #[test]
    fn cold_policy_accepts() {
        let p = MaxQueueWaitTime::new(millis(1), 1);
        for _ in 0..100 {
            p.on_enqueued(TypeId(0), 0);
        }
        // No processing-time samples yet: pt_mavg = 0 -> estimate 0.
        assert!(p.admit(TypeId(0), 0).is_accept());
    }

    #[test]
    fn global_limit_is_type_oblivious() {
        let p = warmed(millis(15), 1, millis(10));
        for _ in 0..2 {
            p.on_enqueued(TypeId(0), secs(1));
        }
        // 2 x 10ms / 1 = 20ms > 15ms for *any* type.
        assert!(!p.admit(TypeId(0), secs(1)).is_accept());
        assert!(!p.admit(TypeId(5), secs(1)).is_accept());
    }

    #[test]
    fn per_type_limits_differentiate() {
        let p = MaxQueueWaitTime::with_per_type_limits(vec![millis(5), millis(50)], 1);
        for i in 0..100 {
            p.on_completed(TypeId(0), millis(10), i * millis(10));
        }
        p.on_enqueued(TypeId(0), secs(1)); // estimate = 10ms
        assert!(!p.admit(TypeId(0), secs(1)).is_accept());
        assert!(p.admit(TypeId(1), secs(1)).is_accept());
    }

    #[test]
    fn cached_mean_refreshes_at_step_boundaries_and_on_tick() {
        let p = MaxQueueWaitTime::with_window(vec![millis(15)], 1, secs(10), secs(1));
        for i in 0..50 {
            p.on_completed(TypeId(0), millis(5), i * millis(10));
        }
        p.on_enqueued(TypeId(0), secs(1));
        // First decision of step 1 prices pt_mavg = 5ms: 1 x 5 / 1 <= 15ms.
        assert!(p.admit(TypeId(0), secs(1)).is_accept());
        // New completions within the same step are not re-priced yet...
        for _ in 0..500 {
            p.on_completed(TypeId(0), millis(100), secs(1) + millis(1));
        }
        assert!(p.admit(TypeId(0), secs(1) + millis(2)).is_accept());
        // ...but the uncached reference already sees them...
        assert!(p.estimated_wait_mean(secs(1) + millis(2)) > millis(15) as f64);
        // ...and a tick re-prices the cache without a step change.
        p.on_tick(secs(1) + millis(3));
        assert!(!p.admit(TypeId(0), secs(1) + millis(4)).is_accept());
        // A step boundary alone also refreshes.
        let p2 = MaxQueueWaitTime::with_window(vec![millis(15)], 1, secs(10), secs(1));
        for i in 0..50 {
            p2.on_completed(TypeId(0), millis(5), i * millis(10));
        }
        p2.on_enqueued(TypeId(0), secs(1));
        assert!(p2.admit(TypeId(0), secs(1)).is_accept());
        for _ in 0..500 {
            p2.on_completed(TypeId(0), millis(100), secs(1) + millis(1));
        }
        assert!(!p2.admit(TypeId(0), secs(2)).is_accept());
    }

    #[test]
    fn moving_average_follows_load() {
        let p = MaxQueueWaitTime::with_window(vec![millis(15)], 1, secs(10), secs(1));
        for i in 0..50 {
            p.on_completed(TypeId(0), millis(5), i * millis(100));
        }
        p.on_enqueued(TypeId(0), secs(5));
        assert!(p.admit(TypeId(0), secs(5)).is_accept()); // 5ms <= 15ms
        // Processing times deteriorate to 30ms; old samples expire.
        for i in 0..200 {
            p.on_completed(TypeId(0), millis(30), secs(6) + i * millis(100));
        }
        assert!(!p.admit(TypeId(0), secs(26)).is_accept()); // 30ms > 15ms
    }
}
