//! The Bouncer admission-control policy (§3).
//!
//! For every incoming query `Q`, Bouncer estimates the percentile response
//! times `Q` would experience and compares them against the target values in
//! `Q`'s latency SLO:
//!
//! * Eq. 2 — mean queue wait estimate:
//!   `ewt_mean = Σ_type count(type) · pt_mean(type) / P`
//! * Eq. 3/4 — percentile response-time estimates:
//!   `ert_pX(Q) = ewt_mean + pt_pX(Type(Q))`
//! * Algorithm 1 — reject iff any `ert_pX(Q) > SLO_pX(Q)`.
//!
//! Processing-time distributions are kept per query type in dual-buffer
//! histograms updated every `histogram_interval`; per-type queue occupancy is
//! tracked with atomic counters updated as queries are enqueued and dequeued.
//! These are deliberately *inexpensive estimations* — the paper trades
//! accuracy for speed because the computation is on the critical path of
//! every query.
//!
//! Cold starts and traffic lulls are handled per Appendix A: Bouncer also
//! maintains a *general* histogram across all types; while a type's own
//! histogram is insufficiently populated, decisions for it use the general
//! histogram together with the `default` type's SLO, and at swap time a
//! buffer with too few samples is retained rather than replaced by an empty
//! one ("we prefer stale data to no data").

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use bouncer_metrics::estimate::{fp_to_ns, mean_to_fp};
use bouncer_metrics::time::{secs, Nanos};
use bouncer_metrics::{DualHistogram, EstimateTable, SlidingHistogram};

use crate::obs::{Event, SinkSlot};
use crate::policy::{AdmissionPolicy, Decision, RejectReason};
use crate::slo::{Percentile, Slo, SloConfig};
use crate::types::TypeId;

/// How Algorithm 1 combines the per-percentile comparisons. The paper
/// evaluates the strict disjunction and notes the expression is a knob
/// ("adopt different logical expressions for acceptance decision making",
/// §3/§7); the lenient conjunction is provided for that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionRule {
    /// Reject when **any** `ert_pX > SLO_pX` (Algorithm 1, the default).
    #[default]
    RejectIfAnyViolated,
    /// Reject only when **every** target would be violated.
    RejectIfAllViolated,
}

/// How processing-time distributions are maintained (§3 vs the §7 proposal
/// to "update processing time histograms in a sliding window, instead of
/// non-overlapping windows").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistogramMode {
    /// Dual-buffer with atomic swap per interval (§3, the default): reads
    /// see exactly the previous interval; O(1)-ish reads.
    #[default]
    DualBuffer,
    /// Sliding window over the trailing `intervals` intervals: smoother,
    /// immediately-fresh estimates at `intervals`× read cost.
    Sliding {
        /// Number of trailing intervals merged on each read.
        intervals: usize,
    },
}

/// Configuration of the [`Bouncer`] policy.
#[derive(Debug, Clone)]
pub struct BouncerConfig {
    /// `P`: the number of query-engine processes on the host (the level of
    /// task parallelism for query processing).
    pub parallelism: u32,
    /// Dual-buffer histogram swap period (the paper's "time interval").
    pub histogram_interval: Nanos,
    /// At swap time, a populated buffer with fewer samples than this is
    /// retained instead of swapped in, so intermittent types keep serving
    /// estimates from stale-but-real data (Appendix A).
    pub retention_min_samples: u64,
    /// A type whose readable histogram holds fewer samples than this is
    /// considered cold and falls back to the general histogram and the
    /// `default` SLO (Appendix A warm-up phase).
    pub warmup_min_samples: u64,
    /// How the per-type percentile comparisons combine into a decision.
    pub decision_rule: DecisionRule,
    /// Dual-buffer (§3) or sliding-window (§7) histograms.
    pub histogram_mode: HistogramMode,
}

impl BouncerConfig {
    /// A reasonable configuration given only the engine parallelism `P`:
    /// 1 s histogram interval, unconditional swaps (the paper's §3
    /// behavior), warm-up threshold of 16 samples.
    ///
    /// `retention_min_samples` defaults to 0 deliberately. Retention (keep
    /// the old histogram when too few fresh samples arrived, Appendix A) is
    /// safe for *traffic lulls*, but under *rejection-driven* starvation it
    /// can deadlock: an interval in which a type is mostly rejected leaves
    /// only late-completing stragglers in the buffer, whose processing
    /// times are biased high; a retained poisoned histogram then rejects
    /// the type forever, and with no new completions it is never replaced.
    /// Unconditional swapping self-heals — an empty interval makes the type
    /// cold, re-enabling the general-histogram warm-up fallback. Enable
    /// retention only for workloads with genuinely intermittent types.
    pub fn with_parallelism(parallelism: u32) -> Self {
        Self {
            parallelism,
            histogram_interval: secs(1),
            retention_min_samples: 0,
            warmup_min_samples: 16,
            decision_rule: DecisionRule::default(),
            histogram_mode: HistogramMode::default(),
        }
    }
}

/// A processing-time estimator in either histogram mode, presenting the
/// uniform read interface Bouncer's equations need.
enum Estimator {
    Dual(DualHistogram),
    Sliding(SlidingHistogram),
}

impl Estimator {
    fn new(cfg: &BouncerConfig) -> Self {
        match cfg.histogram_mode {
            HistogramMode::DualBuffer => {
                Estimator::Dual(DualHistogram::with_min_samples(cfg.retention_min_samples))
            }
            HistogramMode::Sliding { intervals } => {
                Estimator::Sliding(SlidingHistogram::new(intervals, cfg.histogram_interval))
            }
        }
    }

    #[inline]
    fn record(&self, value: Nanos, now: Nanos) {
        match self {
            Estimator::Dual(h) => h.record(value),
            Estimator::Sliding(h) => h.record(value, now),
        }
    }

    /// Interval boundary: dual buffers swap; sliding windows rotate lazily
    /// on access and need no action here.
    fn on_interval(&self) {
        if let Estimator::Dual(h) = self {
            h.swap();
        }
    }

    /// Usable samples behind reads at `now` — frozen-or-populating for the
    /// dual buffer (see the bridge rationale on [`Bouncer`]), the live
    /// window for sliding mode.
    fn usable_count(&self, now: Nanos, min: u64) -> u64 {
        match self {
            Estimator::Dual(h) => {
                let frozen = h.read_count();
                if frozen >= min {
                    frozen
                } else {
                    h.populating_count()
                }
            }
            Estimator::Sliding(h) => h.count(now),
        }
    }

    fn quantile(&self, q: f64, now: Nanos, min: u64) -> Option<Nanos> {
        match self {
            Estimator::Dual(h) => {
                if h.read_count() >= min {
                    h.value_at_quantile(q)
                } else if h.populating_count() >= min {
                    h.populating_quantile(q)
                } else {
                    None
                }
            }
            Estimator::Sliding(h) => {
                (h.count(now) >= min).then(|| h.value_at_quantile(q, now)).flatten()
            }
        }
    }

    fn mean(&self, now: Nanos, min: u64) -> Option<f64> {
        match self {
            Estimator::Dual(h) => {
                if h.read_count() >= min {
                    h.mean()
                } else if h.populating_count() >= min {
                    h.populating_mean()
                } else {
                    None
                }
            }
            Estimator::Sliding(h) => (h.count(now) >= min).then(|| h.mean(now)).flatten(),
        }
    }

    /// Batch form of [`Estimator::quantile`]: one cumulative scan for all
    /// `qs`, used by the estimate-table rebuild. Semantics match per-`q`
    /// calls exactly (the Some/None outcome depends only on the counts, not
    /// on `q`).
    fn quantiles(&self, qs: &[f64], now: Nanos, min: u64, out: &mut [Option<Nanos>]) {
        match self {
            Estimator::Dual(h) => {
                if h.read_count() >= min {
                    h.values_at_quantiles(qs, out);
                } else if h.populating_count() >= min {
                    h.populating_quantiles(qs, out);
                } else {
                    out.fill(None);
                }
            }
            Estimator::Sliding(h) => {
                if h.count(now) >= min {
                    h.values_at_quantiles(qs, now, out);
                } else {
                    out.fill(None);
                }
            }
        }
    }

    /// `true` while reads at a fixed `now` may still change *without* an
    /// interval boundary: a dual buffer serves the populating buffer until
    /// the frozen one is sufficiently populated (the warm-up bridge), and a
    /// sliding window sees every fresh sample immediately. Non-volatile
    /// estimators change their reads only at swap points — the invariant
    /// the estimate table's caching rests on.
    fn is_volatile(&self, min: u64) -> bool {
        match self {
            Estimator::Dual(h) => h.read_count() < min,
            Estimator::Sliding(_) => true,
        }
    }
}

struct TypeState {
    /// Processing-time distribution for this type (§3 fn. 4 / §7 modes).
    hist: Estimator,
    /// Number of queries of this type currently in the FIFO queue.
    queued: AtomicU64,
}

/// The Bouncer admission-control policy.
///
/// # The interval-cached hot path
///
/// The decision path (`admit`/`can_admit`) does **not** recompute Eq. 2–4:
/// it reads an [`EstimateTable`] — per-type cached means and resolved
/// `(pt_pX, SLO_pX)` pairs — plus a running demand counter maintained by
/// `on_enqueued`/`on_dequeued`, making the decision O(SLO targets) in a
/// handful of relaxed loads, independent of type count and histogram size.
/// The cache is exact, not approximate (modulo the fixed-point mean
/// representation, < 4 ps per queued query): non-volatile estimators change
/// their reads only at swap points, where `on_tick` rebuilds the whole
/// table, and volatile ones (warm-up bridge, sliding windows) are refreshed
/// on the completions and interval boundaries that move them. The
/// recompute-from-scratch path is retained as
/// [`Bouncer::can_admit_reference`] for equivalence testing and before/after
/// benchmarking.
pub struct Bouncer {
    slos: SloConfig,
    cfg: BouncerConfig,
    per_type: Vec<TypeState>,
    /// Processing times across all types, used while a type is cold.
    general: Estimator,
    /// The interval-cached estimates + demand counter behind `can_admit`.
    table: EstimateTable,
    /// Number of types currently cold (reading the general fallback); lets
    /// `on_completed` skip the refresh-all-cold sweep in the steady state.
    cold_types: AtomicUsize,
    /// Sliding mode only: the interval number (`now / histogram_interval`)
    /// the table was last rebuilt for; crossing a boundary triggers a lazy
    /// rebuild because slot expiry changes sliding reads with time alone.
    last_refresh_slot: AtomicU64,
    last_swap: AtomicU64,
    sink: SinkSlot,
}

impl Bouncer {
    /// Creates a Bouncer enforcing `slos`, one SLO slot per registered type.
    pub fn new(slos: SloConfig, cfg: BouncerConfig) -> Self {
        assert!(cfg.parallelism > 0, "parallelism must be positive");
        assert!(cfg.histogram_interval > 0, "interval must be positive");
        if let HistogramMode::Sliding { intervals } = cfg.histogram_mode {
            assert!(intervals >= 2, "sliding mode needs >= 2 intervals");
        }
        let per_type: Vec<TypeState> = (0..slos.n_types())
            .map(|_| TypeState {
                hist: Estimator::new(&cfg),
                queued: AtomicU64::new(0),
            })
            .collect();
        let max_targets = (0..slos.n_types())
            .map(|i| slos.slo_for(TypeId::from_index(i as u32)).targets().len())
            .chain(std::iter::once(slos.default_slo().targets().len()))
            .max()
            .unwrap_or(0);
        Self {
            general: Estimator::new(&cfg),
            table: EstimateTable::new(per_type.len(), max_targets),
            cold_types: AtomicUsize::new(per_type.len()),
            last_refresh_slot: AtomicU64::new(0),
            per_type,
            slos,
            cfg,
            last_swap: AtomicU64::new(0),
            sink: SinkSlot::new(),
        }
    }

    /// The SLO configuration this policy enforces.
    pub fn slos(&self) -> &SloConfig {
        &self.slos
    }

    /// Minimum samples a buffer needs before its statistics are trusted.
    #[inline]
    fn min_samples(&self) -> u64 {
        self.cfg.warmup_min_samples.max(1)
    }

    /// `true` while `ty`'s own estimator holds too few samples and
    /// decisions fall back to the general histogram plus the `default` SLO
    /// (Appendix A warm-up phase).
    ///
    /// In dual-buffer mode, "usable" means the frozen buffer when it is
    /// sufficiently populated (the paper's §3 read path), else the
    /// still-populating buffer. That bridge matters under heavy per-type
    /// rejection: one interval with (nearly) no completions of a type would
    /// otherwise blind the policy for the whole next interval and let a
    /// flood of that type through; with the bridge, the first
    /// `warmup_min_samples` completions of the new interval put estimates
    /// back in force immediately.
    pub fn is_warming_up(&self, ty: TypeId) -> bool {
        self.is_warming_up_at(ty, 0)
    }

    /// Like [`Self::is_warming_up`], at an explicit time (sliding-window
    /// estimators expire samples by time).
    pub fn is_warming_up_at(&self, ty: TypeId, now: Nanos) -> bool {
        self.per_type[ty.index()]
            .hist
            .usable_count(now, self.min_samples())
            < self.min_samples()
    }

    /// Number of queries of `ty` currently in the FIFO queue.
    pub fn queued_count(&self, ty: TypeId) -> u64 {
        self.per_type[ty.index()].queued.load(Ordering::Relaxed)
    }

    /// Eq. 2: the estimated mean queue wait time for a newly admitted query,
    /// `Σ_type count(type) · pt_mean(type) / P`, in nanoseconds.
    pub fn estimated_wait_mean(&self) -> f64 {
        self.estimated_wait_mean_at(0)
    }

    /// Like [`Self::estimated_wait_mean`], at an explicit time.
    pub fn estimated_wait_mean_at(&self, now: Nanos) -> f64 {
        let min = self.min_samples();
        let mut demand = 0.0f64;
        for state in &self.per_type {
            let count = state.queued.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let mean = state
                .hist
                .mean(now, min)
                .or_else(|| self.general.mean(now, min))
                .unwrap_or(0.0);
            demand += count as f64 * mean;
        }
        demand / self.cfg.parallelism as f64
    }

    /// The percentile processing time Bouncer would use for `ty` — from the
    /// type's estimator, or the general one during warm-up. `None` when
    /// everything is cold.
    pub fn processing_quantile(&self, ty: TypeId, p: Percentile) -> Option<Nanos> {
        self.processing_quantile_at(ty, p, 0)
    }

    /// Like [`Self::processing_quantile`], at an explicit time.
    pub fn processing_quantile_at(&self, ty: TypeId, p: Percentile, now: Nanos) -> Option<Nanos> {
        let min = self.min_samples();
        let state = &self.per_type[ty.index()];
        state
            .hist
            .quantile(p.quantile(), now, min)
            .or_else(|| self.general.quantile(p.quantile(), now, min))
    }

    /// Eq. 3/4 generalized: the estimated percentile response time
    /// `ert_p(Q) = ewt_mean + pt_p(Type(Q))`. `None` during a full cold
    /// start (no measurements anywhere).
    pub fn estimated_response(&self, ty: TypeId, p: Percentile) -> Option<Nanos> {
        let pt = self.processing_quantile(ty, p)?;
        Some((self.estimated_wait_mean() as Nanos).saturating_add(pt))
    }

    /// The SLO that currently applies to `ty`: its own once warm, the
    /// `default` type's while warming up (Appendix A).
    fn effective_slo(&self, ty: TypeId, now: Nanos) -> &Slo {
        if self.is_warming_up_at(ty, now) {
            self.slos.default_slo()
        } else {
            self.slos.slo_for(ty)
        }
    }

    /// Algorithm 1, exposed under the paper's name for the starvation
    /// avoidance strategies (`Bouncer.CanAdmit(Q)`).
    ///
    /// This is the O(1) fast path: a lookup in the interval-cached
    /// [`EstimateTable`] plus one comparison per SLO target, never touching
    /// a histogram. [`Bouncer::can_admit_reference`] recomputes the same
    /// decision from scratch.
    pub fn can_admit(&self, ty: TypeId, now: Nanos) -> Decision {
        if matches!(self.cfg.histogram_mode, HistogramMode::Sliding { .. }) {
            self.maybe_rebuild_for_slot(now);
        }
        let entry = self.table.entry(ty.index());
        // Eq. 2 from the running demand counter, shaped exactly like the
        // reference's `demand / P` division.
        let ewt = self.table.demand_ns() / self.cfg.parallelism as f64;
        let mut violated = 0usize;
        let mut evaluated = 0usize;
        for k in 0..entry.n_targets() {
            let (pt, target) = entry.target(k);
            // A `None` slot means neither the type nor the general histogram
            // had data: cold-start leniency (Appendix A).
            let Some(pt) = pt else {
                continue;
            };
            evaluated += 1;
            if ewt + pt as f64 > target as f64 {
                violated += 1;
                if self.cfg.decision_rule == DecisionRule::RejectIfAnyViolated {
                    return Decision::Reject(RejectReason::PredictedSloViolation);
                }
            }
        }
        let reject_all = self.cfg.decision_rule == DecisionRule::RejectIfAllViolated
            && evaluated > 0
            && violated == evaluated;
        if reject_all {
            Decision::Reject(RejectReason::PredictedSloViolation)
        } else {
            Decision::Accept
        }
    }

    /// The seed's exact decision path: recomputes Eq. 2 over every type and
    /// re-reads the percentile histograms on each call. Kept as the
    /// reference the cached [`Bouncer::can_admit`] is equivalence-tested
    /// against (`crates/core/tests/estimate_equivalence.rs`) and as the
    /// "before" side of the `admit_hot_path` benchmark.
    pub fn can_admit_reference(&self, ty: TypeId, now: Nanos) -> Decision {
        let ewt = self.estimated_wait_mean_at(now);
        let slo = self.effective_slo(ty, now);
        let mut violated = 0usize;
        let mut evaluated = 0usize;
        for &(p, target) in slo.targets() {
            // During a full cold start there is no data at all; be lenient
            // and let the query in so histograms can populate (Appendix A).
            let Some(pt) = self.processing_quantile_at(ty, p, now) else {
                continue;
            };
            evaluated += 1;
            if ewt + pt as f64 > target as f64 {
                violated += 1;
                if self.cfg.decision_rule == DecisionRule::RejectIfAnyViolated {
                    return Decision::Reject(RejectReason::PredictedSloViolation);
                }
            }
        }
        let reject_all = self.cfg.decision_rule == DecisionRule::RejectIfAllViolated
            && evaluated > 0
            && violated == evaluated;
        if reject_all {
            Decision::Reject(RejectReason::PredictedSloViolation)
        } else {
            Decision::Accept
        }
    }

    /// Recomputes one type's table entry from the estimators at `now`:
    /// cached mean (compensating the demand counter for the queries already
    /// queued), warm flag, and the resolved `(pt_pX, limit)` pairs under the
    /// SLO in effect.
    fn refresh_entry(&self, i: usize, now: Nanos) {
        let min = self.min_samples();
        let state = &self.per_type[i];
        let ty = TypeId::from_index(i as u32);

        let mean = state
            .hist
            .mean(now, min)
            .or_else(|| self.general.mean(now, min))
            .unwrap_or(0.0);
        self.table
            .set_mean(i, mean_to_fp(mean), state.queued.load(Ordering::Relaxed));

        let warm = state.hist.usable_count(now, min) >= min;
        if warm != self.table.entry(i).is_warm() {
            self.table.set_warm(i, warm);
            if warm {
                self.cold_types.fetch_sub(1, Ordering::Relaxed);
            } else {
                self.cold_types.fetch_add(1, Ordering::Relaxed);
            }
        }

        let slo = if warm {
            self.slos.slo_for(ty)
        } else {
            self.slos.default_slo()
        };
        let targets = slo.targets();
        // One cumulative scan prices every percentile; SLOs have a handful
        // of targets, so a stack buffer covers the practical case.
        const STACK: usize = 8;
        let mut qs_buf = [0.0f64; STACK];
        let mut own_buf = [None; STACK];
        let mut gen_buf = [None; STACK];
        let n = targets.len();
        if n <= STACK {
            let qs = &mut qs_buf[..n];
            for (slot, &(p, _)) in qs.iter_mut().zip(targets) {
                *slot = p.quantile();
            }
            let own = &mut own_buf[..n];
            state.hist.quantiles(qs, now, min, own);
            // Some/None depends only on counts: the own slots are either all
            // resolved or all empty, so one general pass covers the gaps.
            if own.iter().any(Option::is_none) {
                self.general.quantiles(qs, now, min, &mut gen_buf[..n]);
            }
            let mut resolved = [(None, 0u64); STACK];
            for (k, &(_, limit)) in targets.iter().enumerate() {
                resolved[k] = (own[k].or(gen_buf[k]), limit);
            }
            self.table.set_targets(i, &resolved[..n]);
        } else {
            let resolved: Vec<(Option<Nanos>, Nanos)> = targets
                .iter()
                .map(|&(p, limit)| (self.processing_quantile_at(ty, p, now), limit))
                .collect();
            self.table.set_targets(i, &resolved);
        }
    }

    /// Rebuilds every table entry and re-anchors the demand counter to an
    /// exactly recomputed `Σ queued × mean` — called at swap points and
    /// sliding interval boundaries.
    fn rebuild_table(&self, now: Nanos) {
        for i in 0..self.per_type.len() {
            self.refresh_entry(i, now);
        }
        self.table
            .reanchor_demand(self.per_type.iter().map(|s| s.queued.load(Ordering::Relaxed)));
    }

    /// Sliding mode's lazy boundary rebuild: a sliding read changes when
    /// `now` crosses into a new interval (slots expire by time alone), so
    /// the first decision of each interval rebuilds the table. Within one
    /// interval, sliding reads are pure functions of the recorded data and
    /// the per-completion refreshes keep the table exact.
    fn maybe_rebuild_for_slot(&self, now: Nanos) {
        let slot = now / self.cfg.histogram_interval;
        let last = self.last_refresh_slot.load(Ordering::Acquire);
        if slot == last {
            return;
        }
        if self
            .last_refresh_slot
            .compare_exchange(last, slot, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.rebuild_table(now);
        }
    }
}

impl AdmissionPolicy for Bouncer {
    fn name(&self) -> &str {
        "bouncer"
    }

    #[inline]
    fn admit(&self, ty: TypeId, now: Nanos) -> Decision {
        self.can_admit(ty, now)
    }

    #[inline]
    fn on_enqueued(&self, ty: TypeId, _now: Nanos) {
        self.per_type[ty.index()].queued.fetch_add(1, Ordering::Relaxed);
        self.table.on_enqueued(ty.index());
    }

    #[inline]
    fn on_dequeued(&self, ty: TypeId, _wait: Nanos, _now: Nanos) {
        self.per_type[ty.index()].queued.fetch_sub(1, Ordering::Relaxed);
        self.table.on_dequeued(ty.index());
    }

    fn on_completed(&self, ty: TypeId, processing: Nanos, now: Nanos) {
        let i = ty.index();
        self.per_type[i].hist.record(processing, now);
        self.general.record(processing, now);
        // Keep the cache exact through the warm-up bridge: a volatile
        // estimator's reads move with this very sample, so re-price the
        // affected entries now instead of waiting for the next swap.
        let min = self.min_samples();
        if self.per_type[i].hist.is_volatile(min) {
            self.refresh_entry(i, now);
        }
        // A volatile *general* estimator changes the fallback every cold
        // type reads; in the steady state (`cold_types == 0`, general
        // frozen) this costs two relaxed loads.
        if self.general.is_volatile(min) && self.cold_types.load(Ordering::Relaxed) > 0 {
            for j in 0..self.per_type.len() {
                if j != i && !self.table.entry(j).is_warm() {
                    self.refresh_entry(j, now);
                }
            }
        }
    }

    fn on_tick(&self, now: Nanos) {
        let last = self.last_swap.load(Ordering::Acquire);
        if now.saturating_sub(last) < self.cfg.histogram_interval {
            return;
        }
        if self
            .last_swap
            .compare_exchange(last, now, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return; // another thread is performing this swap
        }
        for state in &self.per_type {
            state.hist.on_interval();
        }
        self.general.on_interval();
        self.last_refresh_slot
            .store(now / self.cfg.histogram_interval, Ordering::Release);
        self.rebuild_table(now);
        self.sink
            .emit(|| Event::HistogramSwap { at: now, policy: "bouncer" });
        for i in 0..self.per_type.len() {
            self.sink.emit(|| {
                let entry = self.table.entry(i);
                let n = entry.n_targets();
                Event::EstimateRefresh {
                    at: now,
                    policy: "bouncer",
                    ty: TypeId::from_index(i as u32),
                    warm: entry.is_warm(),
                    mean_ns: fp_to_ns(entry.mean_fp()),
                    pt_tail_ns: if n > 0 { entry.target(n - 1).0 } else { None },
                }
            });
        }
    }

    fn attach_sink(&self, sink: std::sync::Arc<dyn crate::obs::EventSink>) {
        self.sink.attach(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeRegistry;
    use bouncer_metrics::time::millis;

    /// Registry with "fast" and "slow"; SLOs of 18/50 ms like the paper's
    /// evaluation; parallelism 4; permissive default SLO.
    fn setup() -> (Bouncer, TypeId, TypeId) {
        let mut reg = TypeRegistry::new();
        let fast = reg.register("fast");
        let slow = reg.register("slow");
        let slos = SloConfig::builder(&reg)
            .default_slo(Slo::p50_p90(millis(100), millis(500)))
            .set(fast, Slo::p50_p90(millis(18), millis(50)))
            .set(slow, Slo::p50_p90(millis(18), millis(50)))
            .build();
        let cfg = BouncerConfig {
            parallelism: 4,
            histogram_interval: secs(1),
            retention_min_samples: 0,
            warmup_min_samples: 8,
            decision_rule: DecisionRule::default(),
            histogram_mode: HistogramMode::default(),
        };
        (Bouncer::new(slos, cfg), fast, slow)
    }

    /// Records `n` completions of duration `pt` and swaps them into the
    /// readable buffer.
    fn feed(b: &Bouncer, ty: TypeId, pt: Nanos, n: usize, now_tick: Nanos) {
        for _ in 0..n {
            b.on_completed(ty, pt, 0);
        }
        b.on_tick(now_tick);
    }

    #[test]
    fn cold_start_accepts_everything() {
        let (b, fast, slow) = setup();
        assert!(b.admit(fast, 0).is_accept());
        assert!(b.admit(slow, 0).is_accept());
        assert!(b.is_warming_up(fast));
        assert_eq!(b.estimated_response(fast, Percentile::P50), None);
    }

    #[test]
    fn fast_queries_within_slo_are_accepted() {
        let (b, fast, _) = setup();
        feed(&b, fast, millis(5), 100, secs(1));
        assert!(!b.is_warming_up(fast));
        assert!(b.admit(fast, secs(1)).is_accept());
    }

    #[test]
    fn queries_whose_p50_exceeds_slo_are_rejected() {
        let (b, _, slow) = setup();
        // pt_p50 = 30ms > SLO_p50 = 18ms even with an empty queue.
        feed(&b, slow, millis(30), 100, secs(1));
        assert_eq!(
            b.admit(slow, secs(1)),
            Decision::Reject(RejectReason::PredictedSloViolation)
        );
    }

    #[test]
    fn p90_violation_alone_rejects() {
        let (b, fast, _) = setup();
        // Mixed distribution: p50 ~ 1ms (fine), p90 ~ 60ms (> 50ms target).
        for _ in 0..80 {
            b.on_completed(fast, millis(1), 0);
        }
        for _ in 0..20 {
            b.on_completed(fast, millis(60), 0);
        }
        b.on_tick(secs(1));
        assert_eq!(
            b.admit(fast, secs(1)),
            Decision::Reject(RejectReason::PredictedSloViolation)
        );
    }

    #[test]
    fn queue_backlog_raises_wait_estimate_and_rejects() {
        let (b, fast, _) = setup();
        feed(&b, fast, millis(10), 100, secs(1));
        // Empty queue: ert_p50 ~ 10ms <= 18ms -> accept.
        assert!(b.admit(fast, secs(1)).is_accept());
        // 8 queued x 10ms / P=4 = 20ms wait -> ert_p50 ~ 30ms > 18ms.
        for _ in 0..8 {
            b.on_enqueued(fast, secs(1));
        }
        assert!(!b.admit(fast, secs(1)).is_accept());
        // Draining the queue restores acceptance.
        for _ in 0..8 {
            b.on_dequeued(fast, millis(1), secs(1));
        }
        assert!(b.admit(fast, secs(1)).is_accept());
    }

    #[test]
    fn wait_estimate_matches_eq2() {
        let (b, fast, slow) = setup();
        // Both types measured within the same interval, then one swap —
        // otherwise the second swap would empty the first type's histogram
        // (retention threshold is 0 in this fixture).
        for _ in 0..100 {
            b.on_completed(fast, millis(10), 0);
            b.on_completed(slow, millis(40), 0);
        }
        b.on_tick(secs(1));
        for _ in 0..3 {
            b.on_enqueued(fast, 0);
        }
        for _ in 0..2 {
            b.on_enqueued(slow, 0);
        }
        // (3*10 + 2*40) / 4 = 27.5ms.
        let ewt = b.estimated_wait_mean();
        let expected = (3.0 * 10.0 + 2.0 * 40.0) / 4.0;
        let got_ms = ewt / 1e6;
        assert!((got_ms - expected).abs() < 1.5, "got {got_ms}ms");
    }

    #[test]
    fn per_type_isolation_rejects_only_offending_type() {
        let (b, fast, slow) = setup();
        for _ in 0..100 {
            b.on_completed(fast, millis(2), 0);
            b.on_completed(slow, millis(45), 0);
        }
        b.on_tick(secs(1));
        assert!(b.admit(fast, secs(1)).is_accept());
        assert!(!b.admit(slow, secs(1)).is_accept());
    }

    #[test]
    fn warming_type_uses_general_histogram_and_default_slo() {
        let (b, fast, slow) = setup();
        // Only "fast" has data; its 30ms exceeds fast/slow SLO p50=18ms but
        // not the default SLO p50=100ms.
        feed(&b, fast, millis(30), 100, secs(1));
        assert!(b.is_warming_up(slow));
        // slow falls back to general histogram (30ms) + default SLO (100ms).
        assert!(b.admit(slow, secs(1)).is_accept());
        // fast is warm: its own SLO applies and rejects.
        assert!(!b.admit(fast, secs(1)).is_accept());
    }

    #[test]
    fn estimated_response_is_wait_plus_percentile() {
        let (b, fast, _) = setup();
        feed(&b, fast, millis(10), 100, secs(1));
        let ert = b.estimated_response(fast, Percentile::P50).unwrap();
        let pt = b.processing_quantile(fast, Percentile::P50).unwrap();
        assert_eq!(ert, pt); // empty queue: ewt = 0
        b.on_enqueued(fast, 0);
        let ert2 = b.estimated_response(fast, Percentile::P50).unwrap();
        assert!(ert2 > ert);
    }

    #[test]
    fn tick_is_paced_by_interval() {
        let (b, fast, _) = setup();
        for _ in 0..100 {
            b.on_completed(fast, millis(5), 0);
        }
        // Before any swap, the populating-buffer bridge already serves
        // estimates (the type is not considered cold)...
        assert!(!b.is_warming_up(fast));
        b.on_tick(millis(500)); // too early: no swap yet
        assert_eq!(b.processing_quantile(fast, Percentile::P50), {
            // ...read from the populating buffer.
            b.processing_quantile(fast, Percentile::P50)
        });
        // After the interval elapses, the samples move to the frozen buffer
        // and a new (empty) populating buffer starts.
        b.on_tick(secs(1));
        let p50 = b.processing_quantile(fast, Percentile::P50).unwrap();
        assert!(p50.abs_diff(millis(5)) < millis(1), "p50={p50}");
        // A second swap with no new samples empties the frozen buffer; the
        // type becomes cold again (and would use the general fallback).
        b.on_tick(secs(2));
        assert!(b.is_warming_up(fast));
    }

    #[test]
    fn retention_keeps_estimates_through_lulls() {
        let mut reg = TypeRegistry::new();
        let t = reg.register("t");
        let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
        let cfg = BouncerConfig {
            parallelism: 4,
            histogram_interval: secs(1),
            retention_min_samples: 8,
            warmup_min_samples: 8,
            decision_rule: DecisionRule::default(),
            histogram_mode: HistogramMode::default(),
        };
        let b = Bouncer::new(slos, cfg);
        for _ in 0..100 {
            b.on_completed(t, millis(30), 0);
        }
        b.on_tick(secs(1));
        assert!(!b.admit(t, secs(1)).is_accept());
        // A whole interval with no traffic: swap would empty the histogram,
        // but retention keeps the stale 30ms distribution readable.
        b.on_tick(secs(2));
        assert!(!b.admit(t, secs(2)).is_accept());
        assert!(!b.is_warming_up(t));
    }

    #[test]
    fn reject_if_all_is_more_lenient_than_reject_if_any() {
        let mut reg = TypeRegistry::new();
        let t = reg.register("t");
        let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
        let make = |rule| {
            let mut cfg = BouncerConfig::with_parallelism(4);
            cfg.decision_rule = rule;
            cfg.warmup_min_samples = 1;
            let b = Bouncer::new(slos.clone(), cfg);
            // p50 ~ 25ms (> 18 target) but p90 ~ 30ms (< 50 target): the
            // strict rule rejects, the lenient one does not.
            for _ in 0..90 {
                b.on_completed(t, millis(25), 0);
            }
            for _ in 0..10 {
                b.on_completed(t, millis(30), 0);
            }
            b.on_tick(secs(1));
            b
        };
        let strict = make(DecisionRule::RejectIfAnyViolated);
        let lenient = make(DecisionRule::RejectIfAllViolated);
        assert!(!strict.admit(t, secs(1)).is_accept());
        assert!(lenient.admit(t, secs(1)).is_accept());
        // With both targets violated, even the lenient rule rejects.
        let both = {
            let mut cfg = BouncerConfig::with_parallelism(4);
            cfg.decision_rule = DecisionRule::RejectIfAllViolated;
            cfg.warmup_min_samples = 1;
            let b = Bouncer::new(slos.clone(), cfg);
            for _ in 0..100 {
                b.on_completed(t, millis(60), 0);
            }
            b.on_tick(secs(1));
            b
        };
        assert!(!both.admit(t, secs(1)).is_accept());
    }

    #[test]
    fn sliding_mode_sees_fresh_samples_without_a_swap() {
        let mut reg = TypeRegistry::new();
        let t = reg.register("t");
        let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
        let mut cfg = BouncerConfig::with_parallelism(4);
        cfg.histogram_mode = HistogramMode::Sliding { intervals: 4 };
        cfg.warmup_min_samples = 8;
        let b = Bouncer::new(slos, cfg);
        for _ in 0..50 {
            b.on_completed(t, millis(30), millis(100));
        }
        // No tick yet: sliding estimates are already live and reject.
        assert!(!b.is_warming_up_at(t, millis(100)));
        assert!(!b.admit(t, millis(200)).is_accept());
    }

    #[test]
    fn sliding_mode_expires_old_intervals() {
        let mut reg = TypeRegistry::new();
        let t = reg.register("t");
        let slos = SloConfig::uniform(&reg, Slo::p50_p90(millis(18), millis(50)));
        let mut cfg = BouncerConfig::with_parallelism(4);
        cfg.histogram_interval = secs(1);
        cfg.histogram_mode = HistogramMode::Sliding { intervals: 2 };
        cfg.warmup_min_samples = 8;
        let b = Bouncer::new(slos, cfg);
        for _ in 0..50 {
            b.on_completed(t, millis(30), 0);
        }
        assert!(!b.admit(t, millis(500)).is_accept());
        // Two interval lengths later the samples have expired: the type is
        // cold again and the (empty) general fallback admits leniently.
        assert!(b.is_warming_up_at(t, secs(3)));
        assert!(b.admit(t, secs(3)).is_accept());
    }

    #[test]
    #[should_panic(expected = "sliding mode needs >= 2 intervals")]
    fn sliding_mode_validates_intervals() {
        let reg = TypeRegistry::new();
        let slos = SloConfig::uniform(&reg, Slo::unbounded());
        let mut cfg = BouncerConfig::with_parallelism(1);
        cfg.histogram_mode = HistogramMode::Sliding { intervals: 1 };
        let _ = Bouncer::new(slos, cfg);
    }

    #[test]
    fn unbounded_slo_never_rejects() {
        let mut reg = TypeRegistry::new();
        let t = reg.register("t");
        let slos = SloConfig::uniform(&reg, Slo::unbounded());
        let b = Bouncer::new(slos, BouncerConfig::with_parallelism(1));
        for _ in 0..100 {
            b.on_completed(t, secs(10), 0);
        }
        b.on_tick(secs(1));
        assert!(b.admit(t, secs(1)).is_accept());
    }
}
