//! A pass-through policy: accepts every query.
//!
//! Used as the no-admission-control baseline in experiments (showing the
//! unprotected system's collapse under overload) and by the LIquid cluster's
//! capacity probe, which needs the system's raw saturation throughput.

use bouncer_metrics::Nanos;

use crate::policy::{AdmissionPolicy, Decision};
use crate::types::TypeId;

/// Accepts everything; implements no overload protection.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysAccept;

impl AlwaysAccept {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl AdmissionPolicy for AlwaysAccept {
    fn name(&self) -> &str {
        "always-accept"
    }

    #[inline]
    fn admit(&self, _ty: TypeId, _now: Nanos) -> Decision {
        Decision::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_everything() {
        let p = AlwaysAccept::new();
        assert!(p.admit(TypeId(0), 0).is_accept());
        assert_eq!(p.name(), "always-accept");
    }
}
