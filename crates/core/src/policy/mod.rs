//! Admission-control policies.
//!
//! All policies implement [`AdmissionPolicy`] and are driven by the framework
//! (Figure 1) through the same four measurement points the paper describes:
//! the admit decision itself, plus recording hooks after enqueue (Point 1),
//! after dequeue (Point 2 — queue wait time), and after processing completes
//! (Point 3 — processing time). Periodic maintenance (histogram swaps,
//! acceptance-fraction updates) happens in [`AdmissionPolicy::on_tick`].

mod accept_fraction;
mod allowance;
mod always;
mod bouncer;
mod gatekeeper;
mod maxql;
mod maxqwt;
mod underserved;

pub use accept_fraction::{AcceptFraction, AcceptFractionConfig};
pub use allowance::AcceptanceAllowance;
pub use always::AlwaysAccept;
pub use bouncer::{Bouncer, BouncerConfig, DecisionRule, HistogramMode};
pub use gatekeeper::{GatekeeperConfig, GatekeeperStyle};
pub use maxql::MaxQueueLength;
pub use maxqwt::MaxQueueWaitTime;
pub use underserved::HelpingTheUnderserved;

use bouncer_metrics::Nanos;

use crate::types::TypeId;

/// Why a query was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Bouncer predicts the query would violate one of its percentile
    /// response-time targets (Algorithm 1).
    PredictedSloViolation,
    /// MaxQL: the FIFO queue has reached its length limit.
    QueueLengthLimit,
    /// MaxQWT: the estimated mean queue wait time exceeds the limit.
    WaitTimeLimit,
    /// AcceptFraction: probabilistically shed to keep utilization under the
    /// threshold.
    CapacityFraction,
    /// AcceptFraction (LIquid mode): the query is expected to time out while
    /// still waiting in the queue.
    PredictedTimeout,
    /// The framework's bounded queue was full (`L_limit` safeguard, §5.4).
    QueueFull,
}

impl RejectReason {
    /// All reasons, for dense per-reason counters.
    pub const ALL: [RejectReason; 6] = [
        RejectReason::PredictedSloViolation,
        RejectReason::QueueLengthLimit,
        RejectReason::WaitTimeLimit,
        RejectReason::CapacityFraction,
        RejectReason::PredictedTimeout,
        RejectReason::QueueFull,
    ];

    /// Dense index of this reason within [`RejectReason::ALL`].
    pub fn index(self) -> usize {
        match self {
            RejectReason::PredictedSloViolation => 0,
            RejectReason::QueueLengthLimit => 1,
            RejectReason::WaitTimeLimit => 2,
            RejectReason::CapacityFraction => 3,
            RejectReason::PredictedTimeout => 4,
            RejectReason::QueueFull => 5,
        }
    }

    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::PredictedSloViolation => "predicted-slo-violation",
            RejectReason::QueueLengthLimit => "queue-length-limit",
            RejectReason::WaitTimeLimit => "wait-time-limit",
            RejectReason::CapacityFraction => "capacity-fraction",
            RejectReason::PredictedTimeout => "predicted-timeout",
            RejectReason::QueueFull => "queue-full",
        }
    }
}

/// Outcome of an admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admit the query into the FIFO queue.
    Accept,
    /// Drop the query and reply with an error response straight away —
    /// the fail-early-and-cheaply rejection of §2.
    Reject(RejectReason),
}

impl Decision {
    /// `true` for [`Decision::Accept`].
    #[inline]
    pub fn is_accept(self) -> bool {
        matches!(self, Decision::Accept)
    }
}

/// An admission-control policy plugged into the Figure 1 framework.
///
/// Implementations must be thread-safe: in the real system many transport
/// threads call [`admit`](Self::admit) concurrently while engine threads
/// invoke the recording hooks.
pub trait AdmissionPolicy: Send + Sync {
    /// Short policy name for reports (e.g. `"bouncer"`).
    fn name(&self) -> &str;

    /// Decides whether to accept or reject a query of type `ty` arriving at
    /// time `now`. Called before the query enters the FIFO queue.
    fn admit(&self, ty: TypeId, now: Nanos) -> Decision;

    /// A query of type `ty` was placed in the FIFO queue (Point 1).
    fn on_enqueued(&self, _ty: TypeId, _now: Nanos) {}

    /// A query was pulled from the queue after waiting `wait` (Point 2).
    fn on_dequeued(&self, _ty: TypeId, _wait: Nanos, _now: Nanos) {}

    /// A query finished processing in `processing` time (Point 3).
    fn on_completed(&self, _ty: TypeId, _processing: Nanos, _now: Nanos) {}

    /// Periodic maintenance; the framework calls this on a timer (real
    /// system) or from scheduled events (simulator). Policies must tolerate
    /// arbitrary call frequency and use `now` to pace internal work.
    fn on_tick(&self, _now: Nanos) {}

    /// Installs an event sink for the policy's per-interval maintenance
    /// events (histogram swaps, threshold updates, moving-average
    /// refreshes). The framework calls this when a gate is built with a
    /// sink; the default ignores it — policies without interval events
    /// need no storage. Wrapper policies must forward to their inner
    /// policy.
    fn attach_sink(&self, _sink: std::sync::Arc<dyn crate::obs::EventSink>) {}

    /// Stages a new value for a live-tunable parameter, to be installed
    /// at the policy's next maintenance boundary (`on_tick`) — the Act
    /// step of the adaptive control plane ([`crate::control`]). Returns
    /// `true` when the policy owns `param`; the default owns nothing.
    /// Wrapper policies handle their own parameter and forward the rest
    /// to their inner policy.
    fn stage_param(&self, _param: crate::control::ControlParam, _value: f64) -> bool {
        false
    }
}

/// Blanket implementation so policies can be shared behind `Arc`.
impl<P: AdmissionPolicy + ?Sized> AdmissionPolicy for std::sync::Arc<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn admit(&self, ty: TypeId, now: Nanos) -> Decision {
        (**self).admit(ty, now)
    }
    fn on_enqueued(&self, ty: TypeId, now: Nanos) {
        (**self).on_enqueued(ty, now)
    }
    fn on_dequeued(&self, ty: TypeId, wait: Nanos, now: Nanos) {
        (**self).on_dequeued(ty, wait, now)
    }
    fn on_completed(&self, ty: TypeId, processing: Nanos, now: Nanos) {
        (**self).on_completed(ty, processing, now)
    }
    fn on_tick(&self, now: Nanos) {
        (**self).on_tick(now)
    }
    fn attach_sink(&self, sink: std::sync::Arc<dyn crate::obs::EventSink>) {
        (**self).attach_sink(sink)
    }
    fn stage_param(&self, param: crate::control::ControlParam, value: f64) -> bool {
        (**self).stage_param(param, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reason_indices_are_dense() {
        for (i, r) in RejectReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert!(!r.label().is_empty());
        }
    }

    #[test]
    fn decision_is_accept() {
        assert!(Decision::Accept.is_accept());
        assert!(!Decision::Reject(RejectReason::QueueFull).is_accept());
    }
}
