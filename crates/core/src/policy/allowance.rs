//! The acceptance-allowance starvation-avoidance strategy (§4.1, Algorithm 2).
//!
//! "This strategy ensures that a small percentage of queries of each type is
//! always admitted. … Setting A = 0.01 means that we are willing to give
//! 'free passes' to up to 1 % of the queries of each type over the span of
//! the sliding window."
//!
//! The call to the wrapped policy splits the strategy in two parts: the
//! first accepts when the type's windowed acceptance ratio has fallen under
//! the allowance `A`; the second overrides rejections "on the spot"
//! uniformly at random with probability `A`. Besides relieving query types
//! from systemic service denial, the free passes keep Bouncer's
//! processing-time histograms populated.

use bouncer_metrics::time::{millis, secs, Nanos};
use bouncer_metrics::WindowedCounters;

use crate::control::{ControlParam, StagedParam};
use crate::obs::{Event, SinkSlot};
use crate::policy::{AdmissionPolicy, Decision};
use crate::rng::AtomicRng;
use crate::types::TypeId;

/// Wraps an admission policy with the acceptance-allowance strategy.
///
/// Generic over the inner policy; the paper pairs it with [`Bouncer`]
/// (`Bouncer.CanAdmit(Q)` in Algorithm 2) but nothing in the strategy
/// depends on Bouncer specifically.
///
/// ```
/// use bouncer_core::prelude::*;
/// use bouncer_metrics::time::millis;
///
/// let mut registry = TypeRegistry::new();
/// let ty = registry.register("GraphDistance");
/// let slos = SloConfig::uniform(&registry, Slo::p50_p90(millis(18), millis(50)));
/// let bouncer = Bouncer::new(slos, BouncerConfig::with_parallelism(64));
/// // Guarantee ~5% of each type gets through even under starvation:
/// let policy = AcceptanceAllowance::new(bouncer, registry.len(), 0.05, 42);
/// assert!(policy.admit(ty, 0).is_accept()); // cold start is lenient
/// ```
///
/// [`Bouncer`]: crate::policy::Bouncer
pub struct AcceptanceAllowance<P> {
    inner: P,
    window: WindowedCounters,
    /// Live-tunable `A` (the control plane stages, `on_tick` installs).
    allowance: StagedParam,
    rng: AtomicRng,
    name: String,
    sink: SinkSlot,
}

impl<P: AdmissionPolicy> AcceptanceAllowance<P> {
    /// Wraps `inner` with allowance `A ∈ [0, 1]` (the paper expects small
    /// values, 0.01–0.1) over a sliding window of the paper's default shape
    /// (D = 1 s, Δ = 10 ms).
    pub fn new(inner: P, n_types: usize, allowance: f64, seed: u64) -> Self {
        Self::with_window(inner, n_types, allowance, secs(1), millis(10), seed)
    }

    /// Wraps `inner` with an explicit sliding-window duration `D` and step
    /// `Δ`, `D ≫ Δ`.
    pub fn with_window(
        inner: P,
        n_types: usize,
        allowance: f64,
        window_duration: Nanos,
        window_step: Nanos,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&allowance),
            "allowance must be in [0,1], got {allowance}"
        );
        let name = format!("{}+allowance", inner.name());
        Self {
            inner,
            window: WindowedCounters::new(n_types, window_duration, window_step),
            allowance: StagedParam::new(allowance),
            rng: AtomicRng::new(seed),
            name,
            sink: SinkSlot::new(),
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The currently live allowance `A`.
    pub fn allowance(&self) -> f64 {
        self.allowance.get()
    }

    /// The windowed acceptance ratio `aqc/rqc` for `ty`, or `None` when no
    /// queries of the type were received within the window.
    pub fn acceptance_ratio(&self, ty: TypeId, now: Nanos) -> Option<f64> {
        let (aqc, rqc) = self.window.counts(ty.index(), now);
        (rqc > 0).then(|| aqc as f64 / rqc as f64)
    }
}

impl<P: AdmissionPolicy> AdmissionPolicy for AcceptanceAllowance<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&self, ty: TypeId, now: Nanos) -> Decision {
        // Algorithm 2, step by step. Read `A` once so both halves of the
        // strategy see the same value even across an `on_tick` install.
        let allowance = self.allowance.get();
        let (aqc, rqc) = self.window.counts(ty.index(), now);

        let mut decision = if rqc == 0 {
            // Nothing received within the window: accept to (re)establish
            // measurements for the type.
            Decision::Accept
        } else if (aqc as f64 / rqc as f64) < allowance {
            // Historical part: the type is under its allowance.
            Decision::Accept
        } else {
            Decision::Reject(crate::policy::RejectReason::PredictedSloViolation)
        };

        if !decision.is_accept() {
            decision = self.inner.admit(ty, now); // ask the policy
        }

        if !decision.is_accept() && self.rng.chance(allowance) {
            // "On the spot" free pass.
            decision = Decision::Accept;
        }

        self.window.record(ty.index(), decision.is_accept(), now);
        decision
    }

    fn on_enqueued(&self, ty: TypeId, now: Nanos) {
        self.inner.on_enqueued(ty, now);
    }
    fn on_dequeued(&self, ty: TypeId, wait: Nanos, now: Nanos) {
        self.inner.on_dequeued(ty, wait, now);
    }
    fn on_completed(&self, ty: TypeId, processing: Nanos, now: Nanos) {
        self.inner.on_completed(ty, processing, now);
    }
    fn on_tick(&self, now: Nanos) {
        if let Some(value) = self.allowance.install() {
            self.sink.emit(|| Event::ParamUpdate {
                at: now,
                policy: "allowance",
                param: ControlParam::Allowance.label(),
                value,
            });
        }
        self.inner.on_tick(now);
    }

    fn attach_sink(&self, sink: std::sync::Arc<dyn crate::obs::EventSink>) {
        self.sink.attach(sink.clone());
        self.inner.attach_sink(sink);
    }

    fn stage_param(&self, param: ControlParam, value: f64) -> bool {
        if param == ControlParam::Allowance {
            self.allowance.stage(value.clamp(0.0, 1.0));
            true
        } else {
            self.inner.stage_param(param, value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlwaysAccept, RejectReason};
    use bouncer_metrics::time::micros;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A policy that always rejects — the adversarial inner policy for
    /// exercising the strategy in isolation.
    struct AlwaysReject(AtomicU64);
    impl AdmissionPolicy for AlwaysReject {
        fn name(&self) -> &str {
            "always-reject"
        }
        fn admit(&self, _ty: TypeId, _now: Nanos) -> Decision {
            self.0.fetch_add(1, Ordering::Relaxed);
            Decision::Reject(RejectReason::PredictedSloViolation)
        }
    }

    #[test]
    fn guarantees_roughly_the_allowance_under_total_rejection() {
        let p = AcceptanceAllowance::new(AlwaysReject(AtomicU64::new(0)), 1, 0.05, 42);
        let ty = TypeId(0);
        let n = 200_000u64;
        let mut accepted = 0u64;
        for i in 0..n {
            // ~20k QPS over a 1s/10ms window.
            let now = i * micros(50);
            if p.admit(ty, now).is_accept() {
                accepted += 1;
            }
        }
        let ratio = accepted as f64 / n as f64;
        // Historical top-up plus on-the-spot passes: close to A, and never
        // below it by much.
        assert!(ratio > 0.045 && ratio < 0.15, "ratio={ratio}");
    }

    #[test]
    fn first_query_in_empty_window_is_accepted() {
        let p = AcceptanceAllowance::new(AlwaysReject(AtomicU64::new(0)), 1, 0.01, 1);
        assert!(p.admit(TypeId(0), 0).is_accept());
    }

    #[test]
    fn does_not_interfere_when_inner_accepts() {
        let p = AcceptanceAllowance::new(AlwaysAccept::new(), 2, 0.02, 7);
        for i in 0..1_000 {
            assert!(p.admit(TypeId(1), i * micros(100)).is_accept());
        }
    }

    #[test]
    fn zero_allowance_defers_entirely_to_inner() {
        let p = AcceptanceAllowance::new(AlwaysReject(AtomicU64::new(0)), 1, 0.0, 3);
        // First query: window empty -> accepted (measurement bootstrap).
        assert!(p.admit(TypeId(0), 0).is_accept());
        // Afterwards the acceptance ratio is 1.0 > 0.0, the inner rejects,
        // and no on-the-spot pass can fire.
        for i in 1..1_000 {
            assert!(!p.admit(TypeId(0), i * micros(100)).is_accept());
        }
    }

    #[test]
    fn allowance_is_per_type() {
        let p = AcceptanceAllowance::new(AlwaysReject(AtomicU64::new(0)), 3, 0.05, 5);
        let mut accepted = [0u64; 3];
        for i in 0..60_000u64 {
            let ty = TypeId((i % 3) as u32);
            if p.admit(ty, i * micros(50)).is_accept() {
                accepted[ty.index()] += 1;
            }
        }
        for (t, &a) in accepted.iter().enumerate() {
            let ratio = a as f64 / 20_000.0;
            assert!(ratio > 0.04, "type {t} starved: ratio={ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "allowance must be in [0,1]")]
    fn rejects_invalid_allowance() {
        let _ = AcceptanceAllowance::new(AlwaysAccept::new(), 1, 1.5, 0);
    }

    #[test]
    fn acceptance_ratio_reflects_window() {
        let p = AcceptanceAllowance::new(AlwaysAccept::new(), 1, 0.05, 9);
        assert_eq!(p.acceptance_ratio(TypeId(0), 0), None);
        p.admit(TypeId(0), 0);
        assert_eq!(p.acceptance_ratio(TypeId(0), 1), Some(1.0));
    }

    #[test]
    fn name_composes() {
        let p = AcceptanceAllowance::new(AlwaysAccept::new(), 1, 0.05, 0);
        assert_eq!(p.name(), "always-accept+allowance");
    }

    #[test]
    fn staged_allowance_installs_at_the_tick_boundary() {
        let p = AcceptanceAllowance::new(AlwaysAccept::new(), 1, 0.05, 0);
        assert!(p.stage_param(crate::control::ControlParam::Allowance, 0.2));
        assert_eq!(p.allowance(), 0.05, "staging must not take effect yet");
        p.on_tick(secs(1));
        assert_eq!(p.allowance(), 0.2);
        // A parameter this wrapper doesn't own falls through to the inner
        // policy (AlwaysAccept owns nothing).
        assert!(!p.stage_param(crate::control::ControlParam::Alpha, 0.5));
    }
}
