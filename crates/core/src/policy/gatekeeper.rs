//! A Gatekeeper-style capacity baseline from the literature (§6 / §7).
//!
//! Gatekeeper (Elnikety et al. 2004, discussed in the paper's related work)
//! "lets the system serve a sustained throughput without exceeding its
//! capacity, and uses moving averages to estimate mean response times":
//! each query type's cost is estimated online, the admitted-but-unfinished
//! demand is tracked, and a query is admitted only while total in-flight
//! demand stays under a capacity threshold. The paper leaves evaluating
//! Bouncer "against other policies in the literature" as future work (§7);
//! this implementation supports that comparison.
//!
//! Differences from Bouncer it shares with the paper's characterization:
//! it is type-*aware* for cost estimation but enforces no latency SLOs —
//! it bounds *load*, not response time — and it does not reject early on
//! percentile estimates.

use std::sync::atomic::{AtomicU64, Ordering};

use bouncer_metrics::time::{secs, Nanos};
use bouncer_metrics::MovingStats;

use crate::policy::{AdmissionPolicy, Decision, RejectReason};
use crate::types::TypeId;

/// Configuration for [`GatekeeperStyle`].
#[derive(Debug, Clone)]
pub struct GatekeeperConfig {
    /// Engine processes (`P`); capacity = `P` seconds of work per second.
    pub parallelism: u32,
    /// Admit while in-flight demand ≤ `beta · P · horizon`. `beta` is the
    /// load threshold (Gatekeeper tuned an analogous multiprogramming
    /// limit empirically); `1.0` means "one horizon's worth of work".
    pub beta: f64,
    /// The demand horizon: how much backlog (in time-to-drain) is allowed.
    pub horizon: Nanos,
    /// Moving-average window for per-type cost estimates.
    pub window_duration: Nanos,
    /// Moving-average step.
    pub window_step: Nanos,
}

impl GatekeeperConfig {
    /// Defaults: β = 1.0, 100 ms backlog horizon, 60 s / 1 s window.
    pub fn new(parallelism: u32) -> Self {
        Self {
            parallelism,
            beta: 1.0,
            horizon: 100_000_000,
            window_duration: secs(60),
            window_step: secs(1),
        }
    }
}

struct TypeState {
    /// Moving average of processing times for this type.
    cost: MovingStats,
    /// Queries admitted and not yet completed.
    in_flight: AtomicU64,
}

/// Admits while estimated in-flight demand stays under the capacity bound.
pub struct GatekeeperStyle {
    cfg: GatekeeperConfig,
    per_type: Vec<TypeState>,
    /// Cost estimate for types with no data yet: the all-types average.
    general: MovingStats,
}

impl GatekeeperStyle {
    /// Creates the policy for `n_types` query types.
    pub fn new(n_types: usize, cfg: GatekeeperConfig) -> Self {
        assert!(cfg.parallelism > 0, "parallelism must be positive");
        assert!(cfg.beta > 0.0, "beta must be positive");
        let per_type = (0..n_types)
            .map(|_| TypeState {
                cost: MovingStats::new(cfg.window_duration, cfg.window_step),
                in_flight: AtomicU64::new(0),
            })
            .collect();
        Self {
            general: MovingStats::new(cfg.window_duration, cfg.window_step),
            per_type,
            cfg,
        }
    }

    fn cost_estimate(&self, ty: TypeId, now: Nanos) -> f64 {
        self.per_type[ty.index()]
            .cost
            .mean(now)
            .or_else(|| self.general.mean(now))
            .unwrap_or(0.0)
    }

    /// Total estimated in-flight demand in engine-nanoseconds.
    pub fn in_flight_demand(&self, now: Nanos) -> f64 {
        self.per_type
            .iter()
            .map(|s| s.in_flight.load(Ordering::Relaxed) as f64 * s.cost.mean(now).unwrap_or(0.0))
            .sum()
    }

    /// The admission bound in engine-nanoseconds.
    pub fn capacity_bound(&self) -> f64 {
        self.cfg.beta * self.cfg.parallelism as f64 * self.cfg.horizon as f64
    }
}

impl AdmissionPolicy for GatekeeperStyle {
    fn name(&self) -> &str {
        "gatekeeper-style"
    }

    fn admit(&self, ty: TypeId, now: Nanos) -> Decision {
        let projected = self.in_flight_demand(now) + self.cost_estimate(ty, now);
        if projected <= self.capacity_bound() {
            Decision::Accept
        } else {
            Decision::Reject(RejectReason::CapacityFraction)
        }
    }

    #[inline]
    fn on_enqueued(&self, ty: TypeId, _now: Nanos) {
        self.per_type[ty.index()]
            .in_flight
            .fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn on_completed(&self, ty: TypeId, processing: Nanos, now: Nanos) {
        let state = &self.per_type[ty.index()];
        // Saturating: a completion for a query admitted before a reset.
        let _ = state
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        state.cost.record(processing, now);
        self.general.record(processing, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bouncer_metrics::time::millis;

    fn warmed(parallelism: u32, horizon: Nanos) -> GatekeeperStyle {
        let mut cfg = GatekeeperConfig::new(parallelism);
        cfg.horizon = horizon;
        let g = GatekeeperStyle::new(2, cfg);
        for i in 0..100 {
            g.on_completed(TypeId::from_index(0), millis(10), i * millis(10));
            g.on_completed(TypeId::from_index(1), millis(50), i * millis(10));
        }
        g
    }

    #[test]
    fn cold_start_admits() {
        let g = GatekeeperStyle::new(1, GatekeeperConfig::new(1));
        assert!(g.admit(TypeId::from_index(0), 0).is_accept());
    }

    #[test]
    fn admits_until_demand_reaches_the_bound() {
        // P=2, horizon 100ms -> bound 200ms of demand; type 0 costs 10ms.
        let g = warmed(2, millis(100));
        let ty = TypeId::from_index(0);
        let mut admitted = 0;
        for _ in 0..100 {
            if !g.admit(ty, secs(2)).is_accept() {
                break;
            }
            g.on_enqueued(ty, secs(2));
            admitted += 1;
        }
        // 19 x 10ms + 10ms projected = 200ms <= bound; the 20th pushes over.
        assert!((19..=20).contains(&admitted), "admitted={admitted}");
    }

    #[test]
    fn expensive_types_consume_the_budget_faster() {
        let g = warmed(2, millis(100));
        let cheap = TypeId::from_index(0); // 10ms
        let costly = TypeId::from_index(1); // 50ms
        let count = |ty: TypeId| {
            let g = warmed(2, millis(100));
            let mut n = 0;
            while g.admit(ty, secs(2)).is_accept() && n < 1000 {
                g.on_enqueued(ty, secs(2));
                n += 1;
            }
            n
        };
        let n_cheap = count(cheap);
        let n_costly = count(costly);
        assert!(n_cheap > 3 * n_costly, "cheap={n_cheap} costly={n_costly}");
        let _ = g;
    }

    #[test]
    fn completions_release_budget() {
        let g = warmed(1, millis(50));
        let ty = TypeId::from_index(0);
        while g.admit(ty, secs(2)).is_accept() {
            g.on_enqueued(ty, secs(2));
        }
        assert!(!g.admit(ty, secs(2)).is_accept());
        g.on_completed(ty, millis(10), secs(2));
        g.on_completed(ty, millis(10), secs(2));
        assert!(g.admit(ty, secs(2)).is_accept());
    }

    #[test]
    fn unknown_types_use_the_general_estimate() {
        let mut cfg = GatekeeperConfig::new(1);
        cfg.horizon = millis(100);
        let g = GatekeeperStyle::new(3, cfg);
        for i in 0..50 {
            g.on_completed(TypeId::from_index(0), millis(20), i * millis(20));
        }
        // Type 2 has no data; its cost estimate falls back to ~20ms.
        let ty = TypeId::from_index(2);
        assert!((g.cost_estimate(ty, secs(1)) - millis(20) as f64).abs() < 1e6);
    }
}
