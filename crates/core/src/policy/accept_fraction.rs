//! The Acceptance Fraction (AcceptFraction) policy (§5.2.3).
//!
//! A capacity-centric policy: it periodically computes the fraction of
//! queries the host should accept,
//!
//! ```text
//! f = min(1.0, MaxUtil · |PU| / (qps_mavg · pt_mavg))
//! ```
//!
//! and then accepts each query with probability `f`. The numerator is the
//! *available* processing capacity (fixed at configuration time), the
//! denominator the *demanded* capacity (recomputed every update interval
//! from moving averages over a sliding window, default D = 60 s, Δ = 1 s).
//! When the demanded capacity is zero, `f = min(1, ∞) = 1` (the paper relies
//! on floating-point semantics for this; so do we).
//!
//! In LIquid this policy additionally "estimates the mean queue wait time of
//! every query using Eq. 5 … and rejects the queries expected to time out in
//! the queue"; enable that with [`AcceptFractionConfig::queue_timeout`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use bouncer_metrics::time::{as_secs_f64, secs, Nanos};
use bouncer_metrics::MovingStats;

use crate::control::{ControlParam, StagedParam};
use crate::obs::{Event, SinkSlot};
use crate::policy::{AdmissionPolicy, Decision, RejectReason};
use crate::rng::AtomicRng;
use crate::types::TypeId;

/// Configuration for [`AcceptFraction`].
#[derive(Debug, Clone)]
pub struct AcceptFractionConfig {
    /// `MaxUtil`: the maximum utilization threshold. The paper's range is
    /// `(0, 1]`; values above 1 are accepted as an overcommit multiplier
    /// — `apc = MaxUtil · |PU|` simply exceeds physical capacity, so the
    /// policy never sheds. Transport benchmarks and equivalence tests use
    /// this to take probabilistic shedding out of the measured path.
    pub max_utilization: f64,
    /// `|PU|`: processing units set aside for query processing (CPU cores on
    /// shards, engine processes on brokers).
    pub processing_units: u32,
    /// How often the demanded processing capacity (and thus `f`) is
    /// recomputed. The paper uses 1 s.
    pub update_interval: Nanos,
    /// Sliding-window duration `D` for the moving averages.
    pub window_duration: Nanos,
    /// Sliding-window step `Δ`.
    pub window_step: Nanos,
    /// If set, also reject queries whose estimated queue wait (Eq. 5)
    /// exceeds this expiration time — LIquid's deployment mode.
    pub queue_timeout: Option<Nanos>,
    /// Seed for the probabilistic accept/reject draws.
    pub seed: u64,
}

impl AcceptFractionConfig {
    /// The paper's defaults: 1 s update interval, D = 60 s, Δ = 1 s, no
    /// queue-timeout rejection.
    pub fn new(max_utilization: f64, processing_units: u32) -> Self {
        Self {
            max_utilization,
            processing_units,
            update_interval: secs(1),
            window_duration: secs(60),
            window_step: secs(1),
            queue_timeout: None,
            seed: 0x5EED,
        }
    }
}

/// Probabilistically sheds the fraction of traffic exceeding the host's
/// available processing capacity.
pub struct AcceptFraction {
    cfg: AcceptFractionConfig,
    /// `MaxUtil`, live-tunable by the control plane; the available
    /// processing capacity `MaxUtil · |PU|` is derived from it at each
    /// fraction update.
    max_utilization: StagedParam,
    /// Moving stats over processing times (mean -> `pt_mavg`).
    pt_mavg: MovingStats,
    /// Moving stats over arrivals (rate -> `qps_mavg`).
    arrivals: MovingStats,
    /// Current acceptance fraction `f`, stored as `f64` bits.
    fraction: AtomicU64,
    last_update: AtomicU64,
    len: AtomicI64,
    rng: AtomicRng,
    sink: SinkSlot,
}

impl AcceptFraction {
    /// Creates the policy.
    pub fn new(cfg: AcceptFractionConfig) -> Self {
        assert!(
            cfg.max_utilization > 0.0 && cfg.max_utilization.is_finite(),
            "MaxUtil must be positive and finite, got {}",
            cfg.max_utilization
        );
        assert!(cfg.processing_units > 0, "|PU| must be positive");
        Self {
            max_utilization: StagedParam::new(cfg.max_utilization),
            pt_mavg: MovingStats::new(cfg.window_duration, cfg.window_step),
            arrivals: MovingStats::new(cfg.window_duration, cfg.window_step),
            fraction: AtomicU64::new(1.0f64.to_bits()),
            last_update: AtomicU64::new(0),
            len: AtomicI64::new(0),
            rng: AtomicRng::new(cfg.seed),
            sink: SinkSlot::new(),
            cfg,
        }
    }

    /// The acceptance fraction `f` computed at the last update.
    pub fn fraction(&self) -> f64 {
        f64::from_bits(self.fraction.load(Ordering::Relaxed))
    }

    /// The currently live `MaxUtil`.
    pub fn max_utilization(&self) -> f64 {
        self.max_utilization.get()
    }

    /// Recomputes `f` from the current moving averages.
    fn update_fraction(&self, now: Nanos) {
        let qps = self.arrivals.rate_per_sec(now);
        let pt_secs = as_secs_f64(self.pt_mavg.mean(now).unwrap_or(0.0) as Nanos);
        // dpc may be zero; IEEE division then yields +inf and f = 1.0,
        // exactly as the paper prescribes (§5.2.3, footnote 6).
        let dpc = qps * pt_secs;
        let apc = self.max_utilization.get() * self.cfg.processing_units as f64;
        let f = (apc / dpc).min(1.0);
        self.fraction.store(f.to_bits(), Ordering::Relaxed);
        self.sink.emit(|| Event::ThresholdUpdate {
            at: now,
            policy: "accept-fraction",
            threshold: f,
        });
    }

    /// Eq. 5 wait estimate used for the queue-timeout rejection.
    fn estimated_wait(&self, now: Nanos) -> f64 {
        let l = self.len.load(Ordering::Relaxed).max(0) as f64;
        l * self.pt_mavg.mean(now).unwrap_or(0.0) / self.cfg.processing_units as f64
    }
}

impl AdmissionPolicy for AcceptFraction {
    fn name(&self) -> &str {
        "accept-fraction"
    }

    fn admit(&self, _ty: TypeId, now: Nanos) -> Decision {
        // Every incoming query contributes to the demanded-capacity rate.
        self.arrivals.record(0, now);

        if let Some(timeout) = self.cfg.queue_timeout {
            if self.estimated_wait(now) > timeout as f64 {
                return Decision::Reject(RejectReason::PredictedTimeout);
            }
        }

        let f = self.fraction();
        if f >= 1.0 || self.rng.chance(f) {
            Decision::Accept
        } else {
            Decision::Reject(RejectReason::CapacityFraction)
        }
    }

    #[inline]
    fn on_enqueued(&self, _ty: TypeId, _now: Nanos) {
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn on_dequeued(&self, _ty: TypeId, _wait: Nanos, _now: Nanos) {
        self.len.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    fn on_completed(&self, _ty: TypeId, processing: Nanos, now: Nanos) {
        self.pt_mavg.record(processing, now);
    }

    fn on_tick(&self, now: Nanos) {
        let last = self.last_update.load(Ordering::Acquire);
        if now.saturating_sub(last) < self.cfg.update_interval {
            return;
        }
        if self
            .last_update
            .compare_exchange(last, now, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if let Some(value) = self.max_utilization.install() {
                self.sink.emit(|| Event::ParamUpdate {
                    at: now,
                    policy: "accept-fraction",
                    param: ControlParam::MaxUtilization.label(),
                    value,
                });
            }
            self.update_fraction(now);
        }
    }

    fn attach_sink(&self, sink: std::sync::Arc<dyn crate::obs::EventSink>) {
        self.sink.attach(sink);
    }

    fn stage_param(&self, param: ControlParam, value: f64) -> bool {
        if param == ControlParam::MaxUtilization {
            self.max_utilization.stage(value.clamp(f64::MIN_POSITIVE, 1.0));
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bouncer_metrics::time::millis;

    /// Simulates `qps` arrivals/sec with `pt` processing times for `dur`
    /// seconds, ticking every second, then returns the policy.
    fn warmed(max_util: f64, pu: u32, qps: u64, pt: Nanos, dur_secs: u64) -> AcceptFraction {
        let p = AcceptFraction::new(AcceptFractionConfig::new(max_util, pu));
        let gap = secs(1) / qps;
        for s in 0..dur_secs {
            for i in 0..qps {
                let now = secs(s) + i * gap;
                let _ = p.admit(TypeId(0), now);
                p.on_completed(TypeId(0), pt, now);
            }
            p.on_tick(secs(s + 1));
        }
        p
    }

    #[test]
    fn under_capacity_accepts_everything() {
        // Demand: 100 qps x 10ms = 1.0 PU; available: 0.95 x 4 = 3.8.
        let p = warmed(0.95, 4, 100, millis(10), 10);
        assert!((p.fraction() - 1.0).abs() < 1e-9);
        let accepted = (0..1000)
            .filter(|i| p.admit(TypeId(0), secs(10) + i * millis(1)).is_accept())
            .count();
        assert_eq!(accepted, 1000);
    }

    #[test]
    fn over_capacity_sheds_the_excess_fraction() {
        // Demand: 1000 qps x 10ms = 10 PU; available: 0.95 x 4 = 3.8.
        // f ~ 0.38.
        let p = warmed(0.95, 4, 1000, millis(10), 10);
        let f = p.fraction();
        assert!((f - 0.38).abs() < 0.05, "f={f}");
        let n = 20_000u64;
        let accepted = (0..n)
            .filter(|i| p.admit(TypeId(0), secs(10) + i * micros_50()).is_accept())
            .count();
        let ratio = accepted as f64 / n as f64;
        assert!((ratio - f).abs() < 0.05, "ratio={ratio} f={f}");
    }

    fn micros_50() -> Nanos {
        50_000
    }

    #[test]
    fn fraction_starts_at_one() {
        let p = AcceptFraction::new(AcceptFractionConfig::new(0.8, 8));
        assert_eq!(p.fraction(), 1.0);
        assert!(p.admit(TypeId(0), 0).is_accept());
    }

    #[test]
    fn zero_demand_keeps_fraction_at_one() {
        let p = AcceptFraction::new(AcceptFractionConfig::new(0.8, 8));
        // Ticks with no arrivals: dpc = 0 -> f = min(1, inf) = 1.
        p.on_tick(secs(1));
        p.on_tick(secs(2));
        assert_eq!(p.fraction(), 1.0);
    }

    #[test]
    fn queue_timeout_mode_rejects_predicted_timeouts() {
        let mut cfg = AcceptFractionConfig::new(1.0, 1);
        cfg.queue_timeout = Some(millis(100));
        let p = AcceptFraction::new(cfg);
        for i in 0..100 {
            p.on_completed(TypeId(0), millis(20), i * millis(10));
        }
        for _ in 0..4 {
            p.on_enqueued(TypeId(0), secs(1));
        }
        // 4 x 20ms / 1 = 80ms <= 100ms: accepted.
        assert!(p.admit(TypeId(0), secs(1)).is_accept());
        for _ in 0..2 {
            p.on_enqueued(TypeId(0), secs(1));
        }
        // 6 x 20ms = 120ms > 100ms: predicted timeout.
        assert_eq!(
            p.admit(TypeId(0), secs(1)),
            Decision::Reject(RejectReason::PredictedTimeout)
        );
    }

    #[test]
    fn update_is_paced_by_interval() {
        let p = AcceptFraction::new(AcceptFractionConfig::new(0.5, 1));
        // Saturating demand...
        for i in 0..1000 {
            let _ = p.admit(TypeId(0), i * millis(1));
            p.on_completed(TypeId(0), millis(50), i * millis(1));
        }
        // ...but no full interval elapsed: f still 1.
        p.on_tick(millis(500));
        assert_eq!(p.fraction(), 1.0);
        p.on_tick(secs(1));
        assert!(p.fraction() < 1.0);
    }

    #[test]
    #[should_panic(expected = "MaxUtil must be positive and finite")]
    fn rejects_invalid_utilization() {
        let _ = AcceptFraction::new(AcceptFractionConfig::new(0.0, 1));
    }

    #[test]
    #[should_panic(expected = "MaxUtil must be positive and finite")]
    fn rejects_infinite_utilization() {
        let _ = AcceptFraction::new(AcceptFractionConfig::new(f64::INFINITY, 1));
    }

    #[test]
    fn overcommit_utilization_never_sheds() {
        // MaxUtil above 1 is the documented escape hatch for transport
        // benches: apc exceeds any measurable demand, so f stays 1.
        let p = warmed(1000.0, 1, 10_000, millis(10), 10);
        assert_eq!(p.fraction(), 1.0);
    }

    #[test]
    fn staged_max_utilization_drives_the_next_fraction_update() {
        // Saturated at MaxUtil = 0.5: f ~ 0.5x4 / (1000qps x 10ms) = 0.2.
        let p = warmed(0.5, 4, 1000, millis(10), 10);
        let before = p.fraction();
        assert!((before - 0.2).abs() < 0.05, "f={before}");
        assert!(p.stage_param(crate::control::ControlParam::MaxUtilization, 1.0));
        assert_eq!(p.max_utilization(), 0.5, "install waits for on_tick");
        // Keep demand flowing through one more interval, then tick.
        for i in 0..1000 {
            let now = secs(10) + i * millis(1);
            let _ = p.admit(TypeId(0), now);
            p.on_completed(TypeId(0), millis(10), now);
        }
        p.on_tick(secs(11));
        assert_eq!(p.max_utilization(), 1.0);
        let after = p.fraction();
        assert!((after - 2.0 * before).abs() < 0.1, "before={before} after={after}");
        assert!(!p.stage_param(crate::control::ControlParam::Allowance, 0.1));
    }
}
