//! The Maximum Queue Length (MaxQL) policy (§5.2.1).
//!
//! "It simply accepts an incoming query only if the FIFO queue's length is
//! less than a configurable length limit (l < L_limit)." Oblivious to query
//! types; the queue length is the only signal.

use std::sync::atomic::{AtomicI64, Ordering};

use bouncer_metrics::Nanos;

use crate::policy::{AdmissionPolicy, Decision, RejectReason};
use crate::types::TypeId;

/// Accepts while the FIFO queue is shorter than a fixed limit.
#[derive(Debug)]
pub struct MaxQueueLength {
    limit: u64,
    /// Current queue length, maintained through the enqueue/dequeue hooks.
    /// `i64` tolerates the transient enqueue/dequeue hook races; reads clamp.
    len: AtomicI64,
}

impl MaxQueueLength {
    /// Creates the policy with queue length limit `L_limit`.
    pub fn new(limit: u64) -> Self {
        assert!(limit > 0, "queue length limit must be positive");
        Self {
            limit,
            len: AtomicI64::new(0),
        }
    }

    /// The current queue length as this policy sees it.
    pub fn queue_len(&self) -> u64 {
        self.len.load(Ordering::Relaxed).max(0) as u64
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

impl AdmissionPolicy for MaxQueueLength {
    fn name(&self) -> &str {
        "maxql"
    }

    #[inline]
    fn admit(&self, _ty: TypeId, _now: Nanos) -> Decision {
        if self.queue_len() < self.limit {
            Decision::Accept
        } else {
            Decision::Reject(RejectReason::QueueLengthLimit)
        }
    }

    #[inline]
    fn on_enqueued(&self, _ty: TypeId, _now: Nanos) {
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn on_dequeued(&self, _ty: TypeId, _wait: Nanos, _now: Nanos) {
        self.len.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_below_limit_rejects_at_limit() {
        let p = MaxQueueLength::new(3);
        for _ in 0..3 {
            assert!(p.admit(TypeId(0), 0).is_accept());
            p.on_enqueued(TypeId(0), 0);
        }
        assert_eq!(
            p.admit(TypeId(0), 0),
            Decision::Reject(RejectReason::QueueLengthLimit)
        );
        p.on_dequeued(TypeId(0), 0, 0);
        assert!(p.admit(TypeId(0), 0).is_accept());
    }

    #[test]
    fn is_type_oblivious() {
        let p = MaxQueueLength::new(1);
        p.on_enqueued(TypeId(0), 0);
        // A different type is rejected just the same.
        assert!(!p.admit(TypeId(1), 0).is_accept());
    }

    #[test]
    fn queue_len_tracks_hooks() {
        let p = MaxQueueLength::new(10);
        p.on_enqueued(TypeId(0), 0);
        p.on_enqueued(TypeId(1), 0);
        assert_eq!(p.queue_len(), 2);
        p.on_dequeued(TypeId(0), 5, 5);
        assert_eq!(p.queue_len(), 1);
    }

    #[test]
    #[should_panic(expected = "queue length limit must be positive")]
    fn zero_limit_is_invalid() {
        let _ = MaxQueueLength::new(0);
    }
}
