//! The "helping the underserved" starvation-avoidance strategy (§4.2,
//! Algorithm 3).
//!
//! Rather than a fixed per-type allowance, this strategy helps query types
//! that have been rejected more than others: a type is deemed unfavorably
//! treated when its windowed acceptance ratio `AR` is below the *average*
//! acceptance ratio `AAR` across all types. A rejection by the wrapped
//! policy is then overridden with probability
//!
//! ```text
//! x = (AAR − AR) / AAR,      p = α · x / (1 + x)
//! ```
//!
//! — a bounded, smoothed "help" (`p < α/2` whenever `x ≤ 1`), instead of the
//! naive `(AAR − AR)/AAR` which would approach 1 for fully starved types and
//! give them excessive help.

use bouncer_metrics::time::{millis, secs, Nanos};
use bouncer_metrics::WindowedCounters;

use crate::control::{ControlParam, StagedParam};
use crate::obs::{Event, SinkSlot};
use crate::policy::{AdmissionPolicy, Decision};
use crate::rng::AtomicRng;
use crate::types::TypeId;

/// Wraps an admission policy with the helping-the-underserved strategy.
pub struct HelpingTheUnderserved<P> {
    inner: P,
    window: WindowedCounters,
    /// Scaling factor α ∈ (0, 1], live-tunable by the control plane.
    alpha: StagedParam,
    rng: AtomicRng,
    name: String,
    sink: SinkSlot,
}

impl<P: AdmissionPolicy> HelpingTheUnderserved<P> {
    /// Wraps `inner` with scaling factor `alpha ∈ (0, 1]` over the paper's
    /// default sliding window (D = 1 s, Δ = 10 ms).
    pub fn new(inner: P, n_types: usize, alpha: f64, seed: u64) -> Self {
        Self::with_window(inner, n_types, alpha, secs(1), millis(10), seed)
    }

    /// Wraps `inner` with an explicit window duration `D` and step `Δ`.
    pub fn with_window(
        inner: P,
        n_types: usize,
        alpha: f64,
        window_duration: Nanos,
        window_step: Nanos,
        seed: u64,
    ) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        let name = format!("{}+underserved", inner.name());
        Self {
            inner,
            window: WindowedCounters::new(n_types, window_duration, window_step),
            alpha: StagedParam::new(alpha),
            rng: AtomicRng::new(seed),
            name,
            sink: SinkSlot::new(),
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The currently live scaling factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha.get()
    }

    /// `(AR(ty), AAR)` as Algorithm 3 computes them: per-type ratios use a
    /// `max(received, 1)` denominator and the average runs over **all**
    /// registered types, seen or not.
    pub fn ratios(&self, ty: TypeId, now: Nanos) -> (f64, f64) {
        let mut sum = 0.0;
        let mut ar = 0.0;
        let mut n = 0usize;
        self.window.for_each_type(now, |t, accepted, received| {
            let ratio = accepted as f64 / received.max(1) as f64;
            if t == ty.index() {
                ar = ratio;
            }
            sum += ratio;
            n += 1;
        });
        (ar, sum / n.max(1) as f64)
    }
}

impl<P: AdmissionPolicy> AdmissionPolicy for HelpingTheUnderserved<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&self, ty: TypeId, now: Nanos) -> Decision {
        // Algorithm 3: ask the policy first, then maybe override.
        let mut decision = self.inner.admit(ty, now);

        if !decision.is_accept() {
            let (ar, aar) = self.ratios(ty, now);
            if ar < aar {
                let x = (aar - ar) / aar;
                let p = self.alpha.get() * x / (1.0 + x);
                if self.rng.chance(p) {
                    decision = Decision::Accept;
                }
            }
        }

        self.window.record(ty.index(), decision.is_accept(), now);
        decision
    }

    fn on_enqueued(&self, ty: TypeId, now: Nanos) {
        self.inner.on_enqueued(ty, now);
    }
    fn on_dequeued(&self, ty: TypeId, wait: Nanos, now: Nanos) {
        self.inner.on_dequeued(ty, wait, now);
    }
    fn on_completed(&self, ty: TypeId, processing: Nanos, now: Nanos) {
        self.inner.on_completed(ty, processing, now);
    }
    fn on_tick(&self, now: Nanos) {
        if let Some(value) = self.alpha.install() {
            self.sink.emit(|| Event::ParamUpdate {
                at: now,
                policy: "underserved",
                param: ControlParam::Alpha.label(),
                value,
            });
        }
        self.inner.on_tick(now);
    }

    fn attach_sink(&self, sink: std::sync::Arc<dyn crate::obs::EventSink>) {
        self.sink.attach(sink.clone());
        self.inner.attach_sink(sink);
    }

    fn stage_param(&self, param: ControlParam, value: f64) -> bool {
        if param == ControlParam::Alpha {
            self.alpha.stage(value.clamp(0.0, 1.0));
            true
        } else {
            self.inner.stage_param(param, value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlwaysAccept, RejectReason};
    use bouncer_metrics::time::micros;

    /// Rejects queries of the type given at construction, accepts the rest.
    struct RejectType(u32);
    impl AdmissionPolicy for RejectType {
        fn name(&self) -> &str {
            "reject-type"
        }
        fn admit(&self, ty: TypeId, _now: Nanos) -> Decision {
            if ty.index() == self.0 as usize {
                Decision::Reject(RejectReason::PredictedSloViolation)
            } else {
                Decision::Accept
            }
        }
    }

    /// Drives a 2-type workload where the inner policy rejects type 1 and
    /// accepts type 0, and returns type 1's acceptance ratio.
    fn run_biased(alpha: f64, seed: u64) -> f64 {
        let p = HelpingTheUnderserved::new(RejectType(1), 2, alpha, seed);
        let mut accepted = 0u64;
        let n = 100_000u64;
        for i in 0..n {
            let now = i * micros(50);
            let ty = TypeId((i % 2) as u32);
            let a = p.admit(ty, now).is_accept();
            if ty.index() == 1 && a {
                accepted += 1;
            }
        }
        accepted as f64 / (n / 2) as f64
    }

    #[test]
    fn underserved_type_gets_probabilistic_help() {
        // AR(1)->~p, AAR ~ (1+p)/2, x=(AAR-AR)/AAR. At equilibrium
        // p = alpha*x/(1+x); for alpha=1, solving numerically gives ~0.24.
        let ratio = run_biased(1.0, 42);
        assert!(ratio > 0.15 && ratio < 0.35, "ratio={ratio}");
    }

    #[test]
    fn help_scales_with_alpha() {
        let low = run_biased(0.1, 7);
        let high = run_biased(1.0, 7);
        assert!(
            high > 2.0 * low,
            "expected monotone help: low={low} high={high}"
        );
        assert!(low > 0.005, "low={low}");
    }

    #[test]
    fn no_override_when_all_types_equally_treated() {
        // Inner rejects *everything*: all ratios are 0, AR == AAR, so the
        // strategy never overrides.
        struct RejectAll;
        impl AdmissionPolicy for RejectAll {
            fn name(&self) -> &str {
                "reject-all"
            }
            fn admit(&self, _ty: TypeId, _now: Nanos) -> Decision {
                Decision::Reject(RejectReason::PredictedSloViolation)
            }
        }
        let p = HelpingTheUnderserved::new(RejectAll, 2, 1.0, 3);
        let accepted = (0..10_000u64)
            .filter(|i| p.admit(TypeId((i % 2) as u32), i * micros(100)).is_accept())
            .count();
        assert_eq!(accepted, 0);
    }

    #[test]
    fn passes_accepts_through_untouched() {
        let p = HelpingTheUnderserved::new(AlwaysAccept::new(), 2, 1.0, 5);
        for i in 0..1_000u64 {
            assert!(p.admit(TypeId(0), i * micros(100)).is_accept());
        }
    }

    #[test]
    fn ratios_average_includes_unseen_types() {
        let p = HelpingTheUnderserved::new(AlwaysAccept::new(), 4, 1.0, 1);
        p.admit(TypeId(0), 0); // accepted; types 1-3 unseen
        let (ar, aar) = p.ratios(TypeId(0), 1);
        assert_eq!(ar, 1.0);
        // AAR = (1 + 0 + 0 + 0) / 4.
        assert!((aar - 0.25).abs() < 1e-9);
    }

    #[test]
    fn override_probability_is_bounded_by_half_alpha() {
        // With AR = 0 and AAR > 0, x = 1 and p = alpha/2 — the paper's
        // p_max = alpha * 1/2 (Table 5 note).
        let alpha = 0.6f64;
        let x: f64 = 1.0;
        let p = alpha * x / (1.0 + x);
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn rejects_invalid_alpha() {
        let _ = HelpingTheUnderserved::new(AlwaysAccept::new(), 1, 0.0, 0);
    }

    #[test]
    fn name_composes() {
        let p = HelpingTheUnderserved::new(AlwaysAccept::new(), 1, 1.0, 0);
        assert_eq!(p.name(), "always-accept+underserved");
    }

    #[test]
    fn staged_alpha_installs_at_the_tick_boundary() {
        let p = HelpingTheUnderserved::new(AlwaysAccept::new(), 1, 1.0, 0);
        assert!(p.stage_param(crate::control::ControlParam::Alpha, 0.25));
        assert_eq!(p.alpha(), 1.0, "staging must not take effect yet");
        p.on_tick(secs(1));
        assert_eq!(p.alpha(), 0.25);
        assert!(!p.stage_param(crate::control::ControlParam::Allowance, 0.1));
    }
}
