//! Textual SLO configuration, in the paper's own notation.
//!
//! §3 configures the policy "with strings denoting the query types and for
//! each type, a latency SLO with the target percentile response times; for
//! example: `"Fast":{p50=10ms, p90=90ms}, "Slow":{p50=60ms, p90=270ms},
//! "default":{p50=30ms, p90=400ms}`". This module parses exactly that
//! format (quotes optional, whitespace ignored, `ms`/`us`/`s` units,
//! arbitrary percentiles like `p99` or `p99.9`) into a [`TypeRegistry`] and
//! [`SloConfig`], so operators can keep SLOs in plain config files.

use bouncer_metrics::time::Nanos;

use crate::slo::{Percentile, Slo, SloConfig};
use crate::types::{TypeRegistry, DEFAULT_TYPE_NAME};

/// Parse failure, with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SLO spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Parses a full SLO specification into a registry and config.
///
/// ```
/// use bouncer_core::slo_spec::parse_slo_spec;
/// use bouncer_core::slo::Percentile;
///
/// let (registry, slos) = parse_slo_spec(
///     r#""Fast":{p50=10ms, p90=90ms}, "Slow":{p50=60ms, p90=270ms},
///        "default":{p50=30ms, p90=400ms}"#,
/// )
/// .unwrap();
/// let fast = registry.resolve("Fast").unwrap();
/// assert_eq!(slos.slo_for(fast).target(Percentile::P50), Some(10_000_000));
/// assert_eq!(slos.default_slo().target(Percentile::P90), Some(400_000_000));
/// ```
pub fn parse_slo_spec(spec: &str) -> Result<(TypeRegistry, SloConfig), SpecError> {
    let mut registry = TypeRegistry::new();
    let slos = parse_slo_spec_into(&mut registry, spec, true)?;
    Ok((registry, slos))
}

/// Parses an SLO spec against an *existing* registry: every named type must
/// already be registered (`default` aside). Use this to attach SLOs to a
/// workload whose types are fixed, e.g. the CLI's Table 1 mix.
pub fn apply_slo_spec(registry: &TypeRegistry, spec: &str) -> Result<SloConfig, SpecError> {
    let mut copy = registry.clone();
    let slos = parse_slo_spec_into(&mut copy, spec, false)?;
    Ok(slos)
}

/// Parses an SLO spec into named `(type, Slo)` entries without resolving
/// them against a registry — the structural form the scenario layer stores
/// (`default` is a valid name). Validation against a workload's types
/// happens when the scenario is resolved.
pub fn parse_slo_entries(spec: &str) -> Result<Vec<(String, Slo)>, SpecError> {
    let mut entries: Vec<(String, Slo)> = Vec::new();
    for (name, body) in split_entries(spec)? {
        if name.is_empty() {
            return Err(SpecError("empty query-type name".into()));
        }
        let slo = parse_slo_body(&body)?;
        if entries.iter().any(|(n, _)| *n == name) {
            return Err(SpecError(format!("duplicate entry for type `{name}`")));
        }
        entries.push((name, slo));
    }
    if entries.is_empty() {
        return Err(SpecError("no SLO entries found".into()));
    }
    Ok(entries)
}

fn parse_slo_spec_into(
    registry: &mut TypeRegistry,
    spec: &str,
    register_new: bool,
) -> Result<SloConfig, SpecError> {
    let mut entries: Vec<(String, Slo)> = Vec::new();

    for (name, body) in split_entries(spec)? {
        if name.is_empty() {
            return Err(SpecError("empty query-type name".into()));
        }
        let slo = parse_slo_body(&body)?;
        if entries.iter().any(|(n, _)| *n == name) {
            return Err(SpecError(format!("duplicate entry for type `{name}`")));
        }
        if name != DEFAULT_TYPE_NAME {
            if register_new {
                registry.register(&name);
            } else if registry.resolve(&name).is_none() {
                return Err(SpecError(format!(
                    "unknown query type `{name}` (workload types: {})",
                    registry
                        .iter()
                        .map(|(_, n)| n.to_owned())
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        entries.push((name, slo));
    }
    if entries.is_empty() {
        return Err(SpecError("no SLO entries found".into()));
    }

    let mut builder = SloConfig::builder(registry);
    for (name, slo) in entries {
        if name == DEFAULT_TYPE_NAME {
            builder = builder.default_slo(slo);
        } else {
            let ty = registry.resolve(&name).expect("checked above");
            builder = builder.set(ty, slo);
        }
    }
    Ok(builder.build())
}

/// Splits `"Name":{...}, "Name2":{...}` into `(name, body)` pairs.
fn split_entries(spec: &str) -> Result<Vec<(String, String)>, SpecError> {
    let mut out = Vec::new();
    let mut rest = spec.trim();
    while !rest.is_empty() {
        let colon = rest
            .find(':')
            .ok_or_else(|| SpecError(format!("expected `\"type\":{{...}}`, got `{rest}`")))?;
        let raw_name = rest[..colon].trim();
        let name = raw_name.trim_matches('"').trim().to_owned();
        let after = rest[colon + 1..].trim_start();
        if !after.starts_with('{') {
            return Err(SpecError(format!("expected `{{` after `{name}:`")));
        }
        let close = after
            .find('}')
            .ok_or_else(|| SpecError(format!("unclosed `{{` in entry `{name}`")))?;
        out.push((name, after[1..close].to_owned()));
        rest = after[close + 1..]
            .trim_start()
            .trim_start_matches(',')
            .trim_start();
    }
    Ok(out)
}

/// Parses `p50=10ms, p90=90ms` into an [`Slo`].
fn parse_slo_body(body: &str) -> Result<Slo, SpecError> {
    let mut slo = Slo::unbounded();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (pct_str, value_str) = part
            .split_once('=')
            .ok_or_else(|| SpecError(format!("expected `pXX=<duration>`, got `{part}`")))?;
        let percentile = parse_percentile(pct_str.trim())?;
        let target = parse_duration(value_str.trim())?;
        slo = slo.with(percentile, target);
    }
    if slo.targets().is_empty() {
        return Err(SpecError("an SLO needs at least one percentile target".into()));
    }
    Ok(slo)
}

fn parse_percentile(s: &str) -> Result<Percentile, SpecError> {
    let digits = s
        .strip_prefix('p')
        .or_else(|| s.strip_prefix('P'))
        .ok_or_else(|| SpecError(format!("percentile must look like `p50`, got `{s}`")))?;
    let value: f64 = digits
        .parse()
        .map_err(|_| SpecError(format!("bad percentile number in `{s}`")))?;
    if !(0.0..100.0).contains(&value) || value <= 0.0 {
        return Err(SpecError(format!("percentile out of range in `{s}`")));
    }
    Ok(Percentile::new(value / 100.0))
}

fn parse_duration(s: &str) -> Result<Nanos, SpecError> {
    let (number, unit): (&str, &str) = if let Some(n) = s.strip_suffix("ms") {
        (n, "ms")
    } else if let Some(n) = s.strip_suffix("us") {
        (n, "us")
    } else if let Some(n) = s.strip_suffix("ns") {
        (n, "ns")
    } else if let Some(n) = s.strip_suffix('s') {
        (n, "s")
    } else {
        return Err(SpecError(format!(
            "duration needs a unit (ns/us/ms/s): `{s}`"
        )));
    };
    let value: f64 = number
        .trim()
        .parse()
        .map_err(|_| SpecError(format!("bad duration number in `{s}`")))?;
    if value < 0.0 {
        return Err(SpecError(format!("negative duration: `{s}`")));
    }
    let nanos = match unit {
        "ns" => value,
        "us" => value * 1e3,
        "ms" => value * 1e6,
        "s" => value * 1e9,
        _ => unreachable!(),
    };
    Ok(nanos.round() as Nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bouncer_metrics::time::millis;

    #[test]
    fn parses_the_papers_example_verbatim() {
        let (reg, slos) = parse_slo_spec(
            r#""Fast":{p50=10ms, p90=90ms}, "Slow":{p50=60ms, p90=270ms}, "default":{p50=30ms, p90=400ms}"#,
        )
        .unwrap();
        assert_eq!(reg.len(), 3); // default + Fast + Slow
        let fast = reg.resolve("Fast").unwrap();
        let slow = reg.resolve("Slow").unwrap();
        assert_eq!(slos.slo_for(fast).target(Percentile::P50), Some(millis(10)));
        assert_eq!(slos.slo_for(fast).target(Percentile::P90), Some(millis(90)));
        assert_eq!(slos.slo_for(slow).target(Percentile::P90), Some(millis(270)));
        assert_eq!(slos.default_slo().target(Percentile::P50), Some(millis(30)));
    }

    #[test]
    fn quotes_and_whitespace_are_optional() {
        let (reg, slos) =
            parse_slo_spec("GetFriends : { p50 = 5ms },default:{p50=30ms}").unwrap();
        let ty = reg.resolve("GetFriends").unwrap();
        assert_eq!(slos.slo_for(ty).target(Percentile::P50), Some(millis(5)));
    }

    #[test]
    fn supports_arbitrary_percentiles_and_units() {
        let (reg, slos) =
            parse_slo_spec(r#""X":{p99=1.5ms, p99.9=2s, p50=800us}, "default":{p50=1s}"#).unwrap();
        let x = reg.resolve("X").unwrap();
        assert_eq!(slos.slo_for(x).target(Percentile::P99), Some(1_500_000));
        assert_eq!(
            slos.slo_for(x).target(Percentile::new(0.999)),
            Some(2_000_000_000)
        );
        assert_eq!(slos.slo_for(x).target(Percentile::P50), Some(800_000));
    }

    #[test]
    fn unlisted_types_fall_back_to_default() {
        let (mut reg, _) = parse_slo_spec(r#""A":{p50=1ms}, "default":{p50=9ms}"#).unwrap();
        // Registering another type later uses the builder's default path —
        // parse again with the extra type to check fallback semantics.
        let _ = reg.register("B");
        let (reg2, slos2) =
            parse_slo_spec(r#""A":{p50=1ms}, "B":{p50=2ms}, "default":{p50=9ms}"#).unwrap();
        let b = reg2.resolve("B").unwrap();
        assert_eq!(slos2.slo_for(b).target(Percentile::P50), Some(millis(2)));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "Fast",
            "Fast:{}",
            "Fast:{p50=10}",          // missing unit
            "Fast:{50=10ms}",         // missing p
            "Fast:{p0=10ms}",         // zero percentile
            "Fast:{p100=10ms}",       // 100th percentile
            "Fast:{p50=10ms",         // unclosed brace
            "Fast:{p50=-3ms}",        // negative
            "Fast:{p50=1ms},Fast:{p50=2ms}", // duplicate
        ] {
            assert!(parse_slo_spec(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn apply_requires_known_types() {
        let mut reg = TypeRegistry::new();
        reg.register("fast");
        let ok = apply_slo_spec(&reg, r#""fast":{p50=9ms}, "default":{p50=40ms}"#).unwrap();
        let fast = reg.resolve("fast").unwrap();
        assert_eq!(ok.slo_for(fast).target(Percentile::P50), Some(millis(9)));
        let err = apply_slo_spec(&reg, r#""nope":{p50=9ms}"#).unwrap_err();
        assert!(err.0.contains("unknown query type `nope`"), "{err}");
    }

    #[test]
    fn default_entry_is_optional() {
        let (reg, slos) = parse_slo_spec(r#""OnlyType":{p90=44ms}"#).unwrap();
        let ty = reg.resolve("OnlyType").unwrap();
        assert_eq!(slos.slo_for(ty).target(Percentile::P90), Some(millis(44)));
        // The default SLO is unbounded when unspecified.
        assert!(slos.default_slo().targets().is_empty());
    }
}
