//! Closed-loop adaptive admission: the Observe → Decide → Act control
//! plane that retunes a running policy from live telemetry (ADAPTIVE.md).
//!
//! * **Observe** — a [`ControlTap`] sits in the event-sink chain and folds
//!   the query-lifecycle stream into per-interval [`Telemetry`] snapshots
//!   (per-type rejection rate, SLO attainment, demand).
//! * **Decide** — a [`Controller`] runs one control law
//!   ([`LawKind`](crate::spec::LawKind)) over each snapshot and picks the
//!   next value for the single policy parameter that law owns.
//! * **Act** — the decided value is *staged* into the policy through
//!   [`AdmissionPolicy::stage_param`] and only becomes live when the
//!   policy's own `on_tick` maintenance installs it ([`StagedParam`]), so
//!   retuning always lands on an interval-swap boundary and never
//!   mid-interval — the dual-buffer exactness argument survives
//!   (DESIGN.md S35).
//!
//! The loop is zero-cost when absent: no tap, no staged cells consulted
//! beyond one relaxed atomic load that replaces the former plain field
//! read, and the admission hot path is untouched.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use bouncer_metrics::time::{millis_f64, Nanos};

use crate::obs::{Event, EventSink, SinkSlot};
use crate::policy::AdmissionPolicy;
use crate::slo::SloConfig;
use crate::spec::{ControllerSpec, LawKind};

/// A live-tunable policy parameter the control plane can own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlParam {
    /// AcceptFraction's utilization threshold (`MaxUtil`, §5.2.3).
    MaxUtilization,
    /// The acceptance allowance `A` (Algorithm 2).
    Allowance,
    /// Helping-the-underserved's scaling factor `α` (Algorithm 3).
    Alpha,
}

impl ControlParam {
    /// The parameter's snake_case label, as used in
    /// `controller_decision` / `param_update` events.
    pub fn label(self) -> &'static str {
        match self {
            ControlParam::MaxUtilization => "max_utilization",
            ControlParam::Allowance => "allowance",
            ControlParam::Alpha => "alpha",
        }
    }
}

/// A policy parameter with a two-phase update protocol: reads see the
/// *live* value; the controller stages a replacement that the owning
/// policy installs at its next maintenance boundary.
///
/// `get()` is one relaxed atomic load — the same cost class as the plain
/// `f64` field it replaces, so hot paths keep their budget. Staging and
/// installing are cold-path (controller interval / maintenance tick).
#[derive(Debug)]
pub struct StagedParam {
    live: AtomicU64,
    staged: AtomicU64,
    dirty: AtomicBool,
}

impl StagedParam {
    /// A cell whose live value is `initial` with nothing staged.
    pub fn new(initial: f64) -> Self {
        Self {
            live: AtomicU64::new(initial.to_bits()),
            staged: AtomicU64::new(initial.to_bits()),
            dirty: AtomicBool::new(false),
        }
    }

    /// The live value (what decisions use right now).
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.live.load(Ordering::Relaxed))
    }

    /// Stages `value` for installation at the next maintenance boundary.
    pub fn stage(&self, value: f64) {
        self.staged.store(value.to_bits(), Ordering::Relaxed);
        self.dirty.store(true, Ordering::Release);
    }

    /// Installs the staged value, if any, returning the newly live value.
    /// Policies call this from `on_tick` — never from the decision path.
    pub fn install(&self) -> Option<f64> {
        if !self.dirty.swap(false, Ordering::Acquire) {
            return None;
        }
        let v = self.staged.load(Ordering::Relaxed);
        self.live.store(v, Ordering::Relaxed);
        Some(f64::from_bits(v))
    }
}

/// One query type's slice of an interval's telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeTelemetry {
    /// Admission decisions seen (admitted + rejected).
    pub received: u64,
    /// Queries the policy let through.
    pub admitted: u64,
    /// Queries turned away (any reason).
    pub rejected: u64,
    /// Queries that finished processing during the interval.
    pub completed: u64,
    /// Completions whose response time met the type's SLO tail target.
    pub within_slo: u64,
}

impl TypeTelemetry {
    /// Rejected over received, `0` when idle.
    pub fn rejection_rate(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.rejected as f64 / self.received as f64
        }
    }

    /// Within-SLO completions over completions; a type with no
    /// completions counts as fully attaining (nothing was late).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.within_slo as f64 / self.completed as f64
        }
    }
}

/// One interval's aggregated view of the event stream — what a control
/// law decides from.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Zero-based interval index since the tap saw its first event.
    pub index: u64,
    /// Interval start (inclusive), in the emitting clock's nanoseconds.
    pub start: Nanos,
    /// Interval end (exclusive).
    pub end: Nanos,
    /// Per-type counters, indexed by `TypeId::index()`.
    pub types: Vec<TypeTelemetry>,
}

impl Telemetry {
    /// Total admission decisions seen.
    pub fn received(&self) -> u64 {
        self.types.iter().map(|t| t.received).sum()
    }

    /// Total rejections.
    pub fn rejected(&self) -> u64 {
        self.types.iter().map(|t| t.rejected).sum()
    }

    /// Total completions.
    pub fn completed(&self) -> u64 {
        self.types.iter().map(|t| t.completed).sum()
    }

    /// Overall rejection rate in `[0, 1]`, `0` when idle.
    pub fn rejection_rate(&self) -> f64 {
        let received = self.received();
        if received == 0 {
            0.0
        } else {
            self.rejected() as f64 / received as f64
        }
    }

    /// Overall SLO attainment in `[0, 1]`; `1` when nothing completed.
    pub fn attainment(&self) -> f64 {
        let (mut done, mut ok) = (0u64, 0u64);
        for t in &self.types {
            done += t.completed;
            ok += t.within_slo;
        }
        if done == 0 {
            1.0
        } else {
            ok as f64 / done as f64
        }
    }

    /// Max minus min per-type attainment over types that completed work —
    /// the unfairness signal the gradient law consumes. `0` with fewer
    /// than two active types.
    pub fn attainment_spread(&self) -> f64 {
        let (mut lo, mut hi, mut seen) = (1.0f64, 0.0f64, 0u32);
        for t in &self.types {
            if t.completed == 0 {
                continue;
            }
            let a = t.attainment();
            lo = lo.min(a);
            hi = hi.max(a);
            seen += 1;
        }
        if seen < 2 {
            0.0
        } else {
            hi - lo
        }
    }
}

/// One decision the controller took, kept for reports and convergence
/// tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlDecision {
    /// Decision time (the closed interval's end).
    pub at: Nanos,
    /// The newly decided parameter value.
    pub value: f64,
    /// Overall attainment over the interval that drove it.
    pub attainment: f64,
    /// Overall rejection rate over that interval.
    pub rejection: f64,
}

/// The Decide + Act half of the loop: runs one control law per closed
/// telemetry interval and stages the result into the attached policies.
pub struct Controller {
    spec: ControllerSpec,
    value: Mutex<f64>,
    policies: Mutex<Vec<Arc<dyn AdmissionPolicy>>>,
    history: Mutex<Vec<ControlDecision>>,
    sink: SinkSlot,
}

impl fmt::Debug for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Controller")
            .field("spec", &self.spec)
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

impl Controller {
    /// A controller running `spec`'s law from the parameter's current
    /// value `initial` (clamped into the spec's `[min, max]` band).
    pub fn new(spec: ControllerSpec, initial: f64) -> Self {
        let start = initial.clamp(spec.min, spec.max);
        Self {
            spec,
            value: Mutex::new(start),
            policies: Mutex::new(Vec::new()),
            history: Mutex::new(Vec::new()),
            sink: SinkSlot::new(),
        }
    }

    /// The spec this controller runs.
    pub fn spec(&self) -> &ControllerSpec {
        &self.spec
    }

    /// The telemetry interval, in nanoseconds.
    pub fn interval(&self) -> Nanos {
        millis_f64(self.spec.interval_ms)
    }

    /// Registers a policy whose [`ControlParam`] this controller owns.
    /// Decisions are staged into every attached policy.
    pub fn attach_policy(&self, policy: Arc<dyn AdmissionPolicy>) {
        self.policies
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(policy);
    }

    /// Routes `controller_decision` events (usually into the same
    /// [`ControlTap`] that feeds this controller, so decisions land in
    /// the run's JSONL alongside everything else).
    pub fn attach_sink(&self, sink: Arc<dyn EventSink>) {
        self.sink.attach(sink);
    }

    /// Every decision taken so far, in order.
    pub fn decisions(&self) -> Vec<ControlDecision> {
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The most recently decided parameter value.
    pub fn current_value(&self) -> f64 {
        *self.value.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes one closed telemetry interval: runs the law, stages the
    /// new value, emits `controller_decision`. Idle intervals (no
    /// admission decisions) are skipped — an empty window says nothing
    /// about where the parameter should sit.
    pub fn on_interval(&self, t: &Telemetry) {
        if t.received() == 0 {
            return;
        }
        let attainment = t.attainment();
        let rejection = t.rejection_rate();
        let next = {
            let mut v = self.value.lock().unwrap_or_else(PoisonError::into_inner);
            *v = self.law_step(*v, attainment, t);
            *v
        };
        for p in self
            .policies
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            p.stage_param(self.spec.law.param(), next);
        }
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(ControlDecision {
                at: t.end,
                value: next,
                attainment,
                rejection,
            });
        self.sink.emit(|| Event::ControllerDecision {
            at: t.end,
            law: self.spec.law.name(),
            param: self.spec.law.param().label(),
            value: next,
            attainment,
            rejection,
        });
    }

    /// One law update (ADAPTIVE.md gives each equation with its
    /// stability argument):
    ///
    /// * `aimd`:     `v ← v + step` on target, `v ← v·backoff` off it
    /// * `budget`:   `v ← v·(1+step)` on target, `v ← v·backoff` off it
    /// * `gradient`: `v ← v + step·((1 − target) − spread)`
    ///
    /// all clamped into `[min, max]`.
    fn law_step(&self, v: f64, attainment: f64, t: &Telemetry) -> f64 {
        let s = &self.spec;
        let on_target = attainment >= s.target_attain;
        let next = match s.law {
            LawKind::Aimd => {
                if on_target {
                    v + s.step
                } else {
                    v * s.backoff
                }
            }
            LawKind::Budget => {
                if on_target {
                    v * (1.0 + s.step)
                } else {
                    v * s.backoff
                }
            }
            LawKind::Gradient => {
                let tolerance = 1.0 - s.target_attain;
                v + s.step * (t.attainment_spread() - tolerance)
            }
        };
        next.clamp(s.min, s.max)
    }
}

/// Per-type SLO tail targets (the last — tightest-percentile — target of
/// each type's SLO), indexed by `TypeId::index()`: what the tap scores
/// completions against. Types without a bound never miss.
pub fn slo_tail_targets(slos: &SloConfig, n_types: usize) -> Vec<Option<Nanos>> {
    (0..n_types.max(slos.n_types()))
        .map(|i| {
            slos.slo_for(crate::types::TypeId::from_index(i as u32))
                .targets()
                .last()
                .map(|&(_, target)| target)
        })
        .collect()
}

#[derive(Debug, Default)]
struct TapState {
    /// Start of the open interval; `None` until the first event arrives.
    start: Option<Nanos>,
    index: u64,
    counts: Vec<TypeTelemetry>,
}

/// The Observe half of the loop: an [`EventSink`] adapter that forwards
/// every event to an optional downstream sink and folds the lifecycle
/// events into per-interval [`Telemetry`], handing each closed interval
/// to the [`Controller`].
///
/// Interval boundaries come from event timestamps (virtual time under the
/// simulator, wall clock on the threaded hosts), so the tap needs no
/// timer of its own. The final partial interval of a run is never closed
/// — by construction it cannot influence a decision.
pub struct ControlTap {
    controller: Arc<Controller>,
    downstream: Option<Arc<dyn EventSink>>,
    interval: Nanos,
    slo_tails: Vec<Option<Nanos>>,
    state: Mutex<TapState>,
}

impl fmt::Debug for ControlTap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlTap")
            .field("controller", &self.controller)
            .field("interval", &self.interval)
            .finish_non_exhaustive()
    }
}

impl ControlTap {
    /// A tap feeding `controller`, scoring completions against
    /// `slo_tails` (see [`slo_tail_targets`]), forwarding everything to
    /// `downstream` when given.
    pub fn new(
        controller: Arc<Controller>,
        slo_tails: Vec<Option<Nanos>>,
        downstream: Option<Arc<dyn EventSink>>,
    ) -> Self {
        let interval = controller.interval().max(1);
        Self {
            controller,
            downstream,
            interval,
            slo_tails,
            state: Mutex::new(TapState::default()),
        }
    }

    /// The controller this tap feeds.
    pub fn controller(&self) -> &Arc<Controller> {
        &self.controller
    }

    fn fold(&self, event: &Event) -> Option<Telemetry> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let at = event.at();
        let start = *st.start.get_or_insert(at);
        let mut finished = None;
        if at >= start + self.interval {
            // Close the open interval; silently skip any fully idle ones
            // between it and `at` (the controller ignores idle intervals
            // anyway).
            let skipped = (at - start) / self.interval;
            finished = Some(Telemetry {
                index: st.index,
                start,
                end: start + self.interval,
                types: std::mem::take(&mut st.counts),
            });
            st.index += skipped;
            st.start = Some(start + skipped * self.interval);
        }
        fn slot(counts: &mut Vec<TypeTelemetry>, i: usize) -> &mut TypeTelemetry {
            if counts.len() <= i {
                counts.resize(i + 1, TypeTelemetry::default());
            }
            &mut counts[i]
        }
        match *event {
            Event::Admitted { ty, .. } => {
                let c = slot(&mut st.counts, ty.index());
                c.received += 1;
                c.admitted += 1;
            }
            Event::Rejected { ty, .. } => {
                let c = slot(&mut st.counts, ty.index());
                c.received += 1;
                c.rejected += 1;
            }
            Event::Completed { ty, rt, .. } => {
                let within = match self.slo_tails.get(ty.index()).copied().flatten() {
                    Some(target) => rt <= target,
                    None => true,
                };
                let c = slot(&mut st.counts, ty.index());
                c.completed += 1;
                if within {
                    c.within_slo += 1;
                }
            }
            _ => {}
        }
        finished
    }
}

impl EventSink for ControlTap {
    fn emit(&self, event: &Event) {
        if let Some(d) = &self.downstream {
            if d.enabled() {
                d.emit(event);
            }
        }
        // Run the law *outside* the tap's lock: the controller's decision
        // event re-enters this sink.
        if let Some(telemetry) = self.fold(event) {
            self.controller.on_interval(&telemetry);
        }
    }

    fn flush(&self) {
        if let Some(d) = &self.downstream {
            d.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MemorySink;
    use crate::policy::{AdmissionPolicy, Decision};
    use crate::slo::Slo;
    use crate::spec::defaults;
    use crate::types::{TypeId, TypeRegistry};
    use bouncer_metrics::time::millis;

    fn spec(law: LawKind) -> ControllerSpec {
        ControllerSpec::law_default(law)
    }

    #[test]
    fn staged_param_two_phase_protocol() {
        let p = StagedParam::new(0.5);
        assert_eq!(p.get(), 0.5);
        assert_eq!(p.install(), None);
        p.stage(0.25);
        assert_eq!(p.get(), 0.5, "staging must not touch the live value");
        assert_eq!(p.install(), Some(0.25));
        assert_eq!(p.get(), 0.25);
        assert_eq!(p.install(), None, "install is one-shot per stage");
    }

    fn telemetry(types: Vec<TypeTelemetry>) -> Telemetry {
        Telemetry {
            index: 0,
            start: 0,
            end: 1_000_000_000,
            types,
        }
    }

    #[test]
    fn telemetry_rates_and_spread() {
        let t = telemetry(vec![
            TypeTelemetry {
                received: 80,
                admitted: 60,
                rejected: 20,
                completed: 60,
                within_slo: 60,
            },
            TypeTelemetry {
                received: 20,
                admitted: 20,
                rejected: 0,
                completed: 20,
                within_slo: 10,
            },
        ]);
        assert_eq!(t.received(), 100);
        assert!((t.rejection_rate() - 0.2).abs() < 1e-12);
        assert!((t.attainment() - 70.0 / 80.0).abs() < 1e-12);
        assert!((t.attainment_spread() - 0.5).abs() < 1e-12);
        let idle = telemetry(vec![TypeTelemetry::default()]);
        assert_eq!(idle.rejection_rate(), 0.0);
        assert_eq!(idle.attainment(), 1.0);
        assert_eq!(idle.attainment_spread(), 0.0);
    }

    fn good_interval() -> Telemetry {
        telemetry(vec![TypeTelemetry {
            received: 100,
            admitted: 100,
            rejected: 0,
            completed: 100,
            within_slo: 100,
        }])
    }

    fn bad_interval() -> Telemetry {
        telemetry(vec![TypeTelemetry {
            received: 100,
            admitted: 100,
            rejected: 0,
            completed: 100,
            within_slo: 10,
        }])
    }

    #[test]
    fn aimd_increases_additively_and_backs_off_multiplicatively() {
        let c = Controller::new(spec(LawKind::Aimd), 0.8);
        c.on_interval(&good_interval());
        assert!((c.current_value() - (0.8 + defaults::AIMD_STEP)).abs() < 1e-12);
        c.on_interval(&bad_interval());
        let expect = (0.8 + defaults::AIMD_STEP) * defaults::AIMD_BACKOFF;
        assert!((c.current_value() - expect).abs() < 1e-12);
        // Sustained good intervals saturate at the ceiling.
        for _ in 0..100 {
            c.on_interval(&good_interval());
        }
        assert_eq!(c.current_value(), defaults::AIMD_MAX);
    }

    #[test]
    fn budget_law_moves_multiplicatively_both_ways() {
        let c = Controller::new(spec(LawKind::Budget), 0.1);
        c.on_interval(&good_interval());
        assert!((c.current_value() - 0.1 * (1.0 + defaults::BUDGET_STEP)).abs() < 1e-12);
        for _ in 0..100 {
            c.on_interval(&bad_interval());
        }
        assert_eq!(c.current_value(), defaults::BUDGET_MIN);
    }

    #[test]
    fn gradient_law_follows_the_attainment_spread() {
        let c = Controller::new(spec(LawKind::Gradient), 0.5);
        // Spread 0.5 over tolerance 0.1 → alpha rises.
        let uneven = telemetry(vec![
            TypeTelemetry {
                received: 50,
                admitted: 50,
                rejected: 0,
                completed: 50,
                within_slo: 50,
            },
            TypeTelemetry {
                received: 50,
                admitted: 50,
                rejected: 0,
                completed: 50,
                within_slo: 25,
            },
        ]);
        c.on_interval(&uneven);
        assert!(c.current_value() > 0.5);
        // No spread → alpha decays toward the floor.
        let c2 = Controller::new(spec(LawKind::Gradient), 0.5);
        for _ in 0..100 {
            c2.on_interval(&good_interval());
        }
        assert_eq!(c2.current_value(), defaults::GRADIENT_MIN);
    }

    #[test]
    fn idle_intervals_do_not_decide() {
        let c = Controller::new(spec(LawKind::Aimd), 0.8);
        c.on_interval(&telemetry(vec![TypeTelemetry::default()]));
        assert!(c.decisions().is_empty());
        assert_eq!(c.current_value(), 0.8);
    }

    /// A stub policy that records staged parameters.
    #[derive(Debug, Default)]
    struct Recorder {
        staged: Mutex<Vec<(ControlParam, f64)>>,
    }

    impl AdmissionPolicy for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn admit(&self, _ty: TypeId, _now: Nanos) -> Decision {
            Decision::Accept
        }
        fn stage_param(&self, param: ControlParam, value: f64) -> bool {
            self.staged.lock().unwrap().push((param, value));
            true
        }
    }

    #[test]
    fn decisions_stage_into_policies_and_emit_events() {
        let c = Controller::new(spec(LawKind::Budget), 0.1);
        let policy = Arc::new(Recorder::default());
        c.attach_policy(policy.clone());
        let sink = Arc::new(MemorySink::new());
        c.attach_sink(sink.clone());
        c.on_interval(&good_interval());
        let staged = policy.staged.lock().unwrap().clone();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].0, ControlParam::Allowance);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        match events[0] {
            Event::ControllerDecision { law, param, value, .. } => {
                assert_eq!(law, "budget");
                assert_eq!(param, "allowance");
                assert!((value - staged[0].1).abs() < 1e-12);
            }
            ref other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(c.decisions().len(), 1);
    }

    fn tails() -> Vec<Option<Nanos>> {
        vec![Some(millis(10)), Some(millis(10))]
    }

    #[test]
    fn tap_aggregates_and_closes_intervals_on_the_clock() {
        let c = Arc::new(Controller::new(spec(LawKind::Aimd), 0.8));
        let downstream = Arc::new(MemorySink::new());
        let tap = ControlTap::new(c.clone(), tails(), Some(downstream.clone()));
        let second = 1_000_000_000u64;
        // First interval: one admit, one reject, one on-time completion.
        tap.emit(&Event::Admitted { at: 10, ty: TypeId(0) });
        tap.emit(&Event::Rejected {
            at: 20,
            ty: TypeId(1),
            reason: crate::policy::RejectReason::PredictedSloViolation,
        });
        tap.emit(&Event::Completed {
            at: 30,
            ty: TypeId(0),
            wait: 0,
            processing: millis(5),
            rt: millis(5),
        });
        assert!(c.decisions().is_empty(), "interval still open");
        // An event at the boundary (start 10 + one interval) closes it and
        // the law runs.
        tap.emit(&Event::Admitted { at: second + 10, ty: TypeId(0) });
        let d = c.decisions();
        assert_eq!(d.len(), 1);
        assert!((d[0].rejection - 0.5).abs() < 1e-12);
        assert!((d[0].attainment - 1.0).abs() < 1e-12);
        assert_eq!(d[0].at, 10 + second);
        // Everything was forwarded downstream untouched.
        assert_eq!(downstream.len(), 4);
    }

    #[test]
    fn tap_scores_completions_against_the_tail_target() {
        let c = Arc::new(Controller::new(spec(LawKind::Aimd), 0.8));
        let tap = ControlTap::new(c.clone(), tails(), None);
        tap.emit(&Event::Admitted { at: 0, ty: TypeId(0) });
        tap.emit(&Event::Completed {
            at: 1,
            ty: TypeId(0),
            wait: 0,
            processing: millis(50),
            rt: millis(50),
        });
        tap.emit(&Event::Admitted { at: 2_000_000_000, ty: TypeId(0) });
        let d = c.decisions();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].attainment, 0.0, "50ms rt misses the 10ms tail");
        // The bad interval backed max_utilization off.
        assert!((d[0].value - 0.8 * defaults::AIMD_BACKOFF).abs() < 1e-12);
    }

    #[test]
    fn tap_skips_idle_gaps_without_deciding() {
        let c = Arc::new(Controller::new(spec(LawKind::Aimd), 0.8));
        let tap = ControlTap::new(c.clone(), tails(), None);
        tap.emit(&Event::Admitted { at: 0, ty: TypeId(0) });
        // 10 intervals later: the long-idle gap yields exactly one
        // decision (for the interval that had the admit).
        tap.emit(&Event::Admitted { at: 10_500_000_000, ty: TypeId(0) });
        assert_eq!(c.decisions().len(), 1);
        tap.emit(&Event::Admitted { at: 11_500_000_000, ty: TypeId(0) });
        assert_eq!(c.decisions().len(), 2);
    }

    #[test]
    fn slo_tails_come_from_the_config() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("a");
        reg.register("b");
        let slos = SloConfig::builder(&reg)
            .default_slo(Slo::p50_p90(millis(18), millis(50)))
            .set(a, Slo::unbounded())
            .build();
        let tails = slo_tail_targets(&slos, reg.len());
        assert_eq!(tails.len(), reg.len());
        assert_eq!(tails[a.index()], None);
        assert!(tails.iter().skip(a.index() + 1).any(|t| *t == Some(millis(50))));
    }
}
