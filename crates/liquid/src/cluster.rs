//! Cluster orchestration: spawn shards and brokers, wire transports, probe
//! capacity.
//!
//! Mirrors the paper's §5.4 deployment: every broker is configured with the
//! same (pluggable) admission policy, while "the shards always run
//! AcceptFraction" guarding CPU, their limiting resource.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bouncer_core::control::{ControlTap, Controller};
use bouncer_core::obs::recorder::DEFAULT_RING_CAPACITY;
use bouncer_core::obs::{
    Event, EventSink, HealthConfig, HealthSampler, Recorder, RecorderSink, Tracer,
};
use bouncer_core::policy::{AcceptFraction, AcceptFractionConfig, AdmissionPolicy};
use bouncer_core::spec::ControllerSpec;
use bouncer_core::types::TypeRegistry;
use bouncer_metrics::{Clock, MonotonicClock, Nanos};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::broker::{liquid_registry, Broker, BrokerConfig, ClientOutcome, RouteStrategy};
use crate::graph::{Graph, GraphConfig, GraphStats};
use crate::query::Query;
use crate::shard::{ShardConfig, ShardHost};
use crate::transport::{InProcShardClient, ShardClient, TcpShardClient, TcpShardServer};
use crate::wire::BufferPool;

/// How brokers reach shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Direct in-process calls (default for experiments).
    InProc,
    /// Real TCP over loopback with framed multiplexing.
    Tcp,
    /// Thread-per-core in-process data path: clients reach broker engines
    /// over submission lanes and each broker engine owns a private SPSC
    /// ring pair to every shard, so a query's steady-state round trip
    /// acquires no shared lock and allocates nothing (see
    /// `docs/adr/001-performance-targets.md`). Queries must be submitted
    /// through [`Cluster::execute`] / [`Cluster::execute_on`]; the
    /// channel-style `submit_tagged` path does not exist in this mode.
    Rings,
}

/// Closed-loop retuning of the broker tier (ADAPTIVE.md): one controller
/// observes the merged broker event stream and stages its law's parameter
/// into every broker policy; each broker installs the value at its own
/// tick boundary.
#[derive(Debug, Clone)]
pub struct ClusterController {
    /// The control law and its gains (the scenario `controller =` line).
    pub spec: ControllerSpec,
    /// Initial parameter value the loop starts from (normally the value
    /// the broker policies were built with).
    pub initial: f64,
    /// Per-type SLO tail targets scoring completions for the attainment
    /// signal, indexed by `TypeId::index()`
    /// (see [`bouncer_core::control::slo_tail_targets`]). Types beyond
    /// the vector — or `None` entries — never count as misses.
    pub slo_tails: Vec<Option<Nanos>>,
}

/// Cluster parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of *logical* shards (graph partitions).
    pub n_shards: usize,
    /// Replicas per logical shard (R). Each replica is a full engine group
    /// (its own host, gate and engine threads) materializing the same
    /// partition; all R replicas share one `Arc`'d CSR build, so memory
    /// grows with partitions, not with R. Physical hosts are laid out
    /// replica-major: host `s * R + r` is replica `r` of shard `s`.
    pub replicas: usize,
    /// How brokers route each round's per-shard batch among the shard's
    /// replicas. Normalized to [`RouteStrategy::PrimaryOnly`] when
    /// `replicas == 1`.
    pub strategy: RouteStrategy,
    /// Number of broker hosts.
    pub n_brokers: usize,
    /// Synthetic graph parameters.
    pub graph: GraphConfig,
    /// Per-shard host configuration.
    pub shard: ShardConfig,
    /// Per-broker host configuration.
    pub broker: BrokerConfig,
    /// Broker→shard transport.
    pub transport: TransportKind,
    /// AcceptFraction utilization threshold on shards (the paper uses 80 %).
    pub shard_max_utilization: f64,
    /// Connections per broker→shard pair for the TCP transport.
    pub tcp_connections: usize,
    /// Optional cluster-wide observability sink, installed on every broker
    /// and shard gate unless that host's own config already names one.
    pub sink: Option<Arc<dyn EventSink>>,
    /// Optional cluster-wide tracer, installed on every broker and shard
    /// unless that host's own config already names one. Every host shares
    /// the cluster clock, so span timestamps are directly comparable.
    pub tracer: Option<Arc<Tracer>>,
    /// Optional adaptive controller over the broker tier. Only broker
    /// gate events feed it (the shard tier keeps its static
    /// AcceptFraction guard), and it interposes on the broker sink, so
    /// the downstream sink still sees every event.
    pub controller: Option<ClusterController>,
    /// Optional always-on flight recorder + health sampler + incident
    /// triggers over the merged cluster event stream. The sampler chain
    /// interposes in front of [`ClusterConfig::sink`] on both tiers
    /// (broker-side it sits *under* the controller tap, so
    /// `controller_decision` events reach the recorder), and a background
    /// probe thread advances wall-clock windows, snapshots SPSC ring
    /// occupancy (rings mode) and re-emits `pool_stats` (TCP mode) every
    /// interval. Empty `type_names` are filled in from the LIquid
    /// registry; set `slo_tails` for attainment scoring.
    pub health: Option<HealthConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            n_shards: 2,
            replicas: 1,
            strategy: RouteStrategy::PrimaryOnly,
            n_brokers: 1,
            graph: GraphConfig::default(),
            shard: ShardConfig::default(),
            broker: BrokerConfig::default(),
            transport: TransportKind::InProc,
            shard_max_utilization: 0.8,
            tcp_connections: 4,
            sink: None,
            tracer: None,
            controller: None,
            health: None,
        }
    }
}

/// A running mini-LIquid cluster.
pub struct Cluster {
    registry: TypeRegistry,
    vertices: u32,
    graph_stats: GraphStats,
    clock: Arc<dyn Clock>,
    brokers: Vec<Arc<Broker>>,
    shards: Vec<Arc<ShardHost>>,
    servers: Vec<TcpShardServer>,
    round_robin: AtomicUsize,
    controller: Option<Arc<Controller>>,
    /// Encode-buffer pools of the TCP shard clients (empty off-TCP);
    /// snapshotted into `pool_stats` events at shutdown.
    pools: Vec<Arc<BufferPool>>,
    sink: Option<Arc<dyn EventSink>>,
    /// Health sampler + its wall-clock probe thread, when configured.
    health: Option<Arc<HealthSampler>>,
    probe: Option<HealthProbe>,
}

/// The background thread driving wall-clock health windows: every
/// interval it re-emits `pool_stats` snapshots and calls
/// [`HealthSampler::probe`] with the live lane-ring occupancy.
struct HealthProbe {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl Cluster {
    /// Builds the graph, spawns the shard tier (AcceptFraction policies),
    /// then the broker tier with policies from `broker_policy` (called once
    /// per broker with the type registry and the broker's engine count —
    /// Bouncer and MaxQWT need the parallelism `P`).
    pub fn spawn(
        cfg: &ClusterConfig,
        broker_policy: impl Fn(&TypeRegistry, u32) -> Arc<dyn AdmissionPolicy>,
    ) -> Self {
        assert!(cfg.n_shards > 0 && cfg.n_brokers > 0);
        assert!(cfg.replicas > 0, "a shard needs at least one replica");
        let registry = liquid_registry();
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let graph = Graph::generate(&cfg.graph);
        let vertices = graph.vertex_count();
        let graph_stats = graph.stats();
        // One CSR build per logical partition, shared by that shard's R
        // replica hosts — replication multiplies engines, not storage.
        let slices: Vec<Arc<crate::graph::ShardData>> = (0..cfg.n_shards)
            .map(|s| Arc::new(graph.shard_slice(s, cfg.n_shards)))
            .collect();

        let mut shard_cfg = cfg.shard.clone();
        if shard_cfg.tracer.is_none() {
            shard_cfg.tracer = cfg.tracer.clone();
        }
        let mut broker_cfg = cfg.broker.clone();
        if broker_cfg.tracer.is_none() {
            broker_cfg.tracer = cfg.tracer.clone();
        }
        // Health chain: sampler → recorder → user sink, shared by both
        // tiers so the sampler folds the merged stream. It must sit
        // *under* the controller tap (wired next) so decision events flow
        // down into the recorder and the backoff trigger.
        let health = cfg.health.clone().map(|mut health| {
            if health.type_names.is_empty() {
                health.type_names = (0..registry.len())
                    .map(|i| {
                        registry
                            .name(bouncer_core::types::TypeId::from_index(i as u32))
                            .to_string()
                    })
                    .collect();
            }
            let recorder = Recorder::new(DEFAULT_RING_CAPACITY);
            let rec_sink: Arc<dyn EventSink> =
                Arc::new(RecorderSink::new(Arc::clone(&recorder), cfg.sink.clone()));
            HealthSampler::new(health, recorder, rec_sink)
        });
        // Hosts without their own sink get the cluster-wide one — behind
        // the sampler when health is on.
        let cluster_sink: Option<Arc<dyn EventSink>> = match &health {
            Some(sampler) => Some(sampler.clone()),
            None => cfg.sink.clone(),
        };
        if shard_cfg.sink.is_none() {
            shard_cfg.sink = cluster_sink.clone();
        }
        if broker_cfg.sink.is_none() {
            broker_cfg.sink = cluster_sink;
        }
        // The Observe tap interposes on the (shared) broker sink: every
        // broker gate event folds into the controller's telemetry and is
        // forwarded downstream untouched.
        let controller = cfg.controller.as_ref().map(|cc| {
            let controller = Arc::new(Controller::new(cc.spec.clone(), cc.initial));
            let tap = Arc::new(ControlTap::new(
                Arc::clone(&controller),
                cc.slo_tails.clone(),
                broker_cfg.sink.take(),
            ));
            controller.attach_sink(tap.clone());
            broker_cfg.sink = Some(tap);
            controller
        });

        // Rings mode wires the whole topology (per-engine ring pairs and
        // client lanes) up front, before any host thread starts.
        let mut broker_rigs = Vec::new();
        let shard_policy = || {
            Arc::new(AcceptFraction::new(AcceptFractionConfig::new(
                cfg.shard_max_utilization,
                cfg.shard.engines,
            )))
        };
        // The physical shard tier: `n_shards * replicas` hosts in
        // replica-major order, host `s * R + r` cloning shard `s`'s Arc'd
        // slice. At R=1 this is exactly the old flat tier.
        let shards: Vec<Arc<ShardHost>> = if cfg.transport == TransportKind::Rings {
            let (brigs, srigs) = crate::rings::build_topology(
                cfg.n_brokers,
                cfg.broker.engines as usize,
                cfg.n_shards,
                cfg.shard.engines as usize,
                cfg.replicas,
            );
            broker_rigs = brigs;
            srigs
                .into_iter()
                .enumerate()
                .map(|(p, rig)| {
                    ShardHost::spawn_rings(
                        Arc::clone(&slices[p / cfg.replicas]),
                        shard_policy(),
                        clock.clone(),
                        shard_cfg.clone(),
                        rig,
                    )
                })
                .collect()
        } else {
            (0..cfg.n_shards * cfg.replicas)
                .map(|p| {
                    ShardHost::spawn(
                        Arc::clone(&slices[p / cfg.replicas]),
                        shard_policy(),
                        clock.clone(),
                        shard_cfg.clone(),
                    )
                })
                .collect()
        };

        let mut servers = Vec::new();
        let mut pools: Vec<Arc<BufferPool>> = Vec::new();
        // One client per *physical* host, regrouped into per-logical-shard
        // replica groups for the broker's routing layer.
        let make_client_groups = |servers: &mut Vec<TcpShardServer>,
                                  pools: &mut Vec<Arc<BufferPool>>|
         -> Vec<Vec<Arc<dyn ShardClient>>> {
            let physical: Vec<Arc<dyn ShardClient>> = match cfg.transport {
                TransportKind::InProc => shards
                    .iter()
                    .map(|h| {
                        Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>
                    })
                    .collect(),
                TransportKind::Tcp => {
                    if servers.is_empty() {
                        for h in &shards {
                            servers.push(
                                TcpShardServer::serve(Arc::clone(h), "127.0.0.1:0")
                                    .expect("failed to serve shard"),
                            );
                        }
                    }
                    servers
                        .iter()
                        .map(|s| {
                            let client = Arc::new(
                                TcpShardClient::connect(s.addr(), cfg.tcp_connections)
                                    .expect("failed to connect shard"),
                            );
                            pools.push(Arc::clone(client.pool()));
                            client as Arc<dyn ShardClient>
                        })
                        .collect()
                }
                TransportKind::Rings => unreachable!("rings mode does not use shard clients"),
            };
            physical
                .chunks(cfg.replicas)
                .map(|group| group.to_vec())
                .collect()
        };

        let mut broker_rigs = broker_rigs.into_iter();
        let brokers: Vec<Arc<Broker>> = (0..cfg.n_brokers)
            .map(|_| {
                let policy = broker_policy(&registry, cfg.broker.engines);
                if let Some(c) = &controller {
                    c.attach_policy(Arc::clone(&policy));
                }
                if cfg.transport == TransportKind::Rings {
                    Broker::spawn_rings(
                        shards.clone(),
                        cfg.replicas,
                        cfg.strategy,
                        policy,
                        clock.clone(),
                        broker_cfg.clone(),
                        broker_rigs.next().expect("one rig per broker"),
                    )
                } else {
                    Broker::spawn_replicated(
                        make_client_groups(&mut servers, &mut pools),
                        cfg.strategy,
                        policy,
                        clock.clone(),
                        broker_cfg.clone(),
                    )
                }
            })
            .collect();

        let sink = broker_cfg.sink.clone();
        // One-shot storage summary: what the cluster just loaded and what
        // it costs, on the same stream as the query lifecycle events.
        if let Some(sink) = &sink {
            if sink.enabled() {
                sink.emit(&Event::GraphStats {
                    at: clock.now(),
                    vertices: graph_stats.vertices,
                    edges: graph_stats.edges,
                    heap_bytes: graph_stats.heap_bytes,
                    bytes_per_edge: graph_stats.bytes_per_edge,
                });
            }
        }
        // The wall-clock probe: wakes every sampler interval, re-emits
        // the transport pool counters as `pool_stats` and hands the
        // sampler the live lane-ring occupancy. Under load the event
        // stream closes windows by itself; on an idle cluster this
        // heartbeat is what keeps samples flowing.
        let probe = health.as_ref().map(|sampler| {
            let sampler = Arc::clone(sampler);
            let interval = Duration::from_nanos(sampler.interval().max(1));
            let clock = Arc::clone(&clock);
            let brokers: Vec<Arc<Broker>> = brokers.clone();
            let pools = pools.clone();
            let rings = cfg.transport == TransportKind::Rings;
            let stop = Arc::new(AtomicBool::new(false));
            let stop_flag = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("health-probe".into())
                .spawn(move || {
                    let tick = Duration::from_millis(5).min(interval);
                    let mut elapsed = Duration::ZERO;
                    while !stop_flag.load(Ordering::Acquire) {
                        std::thread::sleep(tick);
                        elapsed += tick;
                        if elapsed < interval {
                            continue;
                        }
                        elapsed = Duration::ZERO;
                        let now = clock.now();
                        for pool in &pools {
                            pool.emit_stats("shard_client", sampler.as_ref(), now);
                        }
                        let occupancy = rings.then(|| {
                            brokers.iter().filter_map(|b| b.ring_occupancy()).sum()
                        });
                        sampler.probe(clock.now(), occupancy);
                    }
                })
                .expect("failed to spawn health probe");
            HealthProbe { stop, handle }
        });
        Self {
            registry,
            vertices,
            graph_stats,
            clock,
            brokers,
            shards,
            servers,
            round_robin: AtomicUsize::new(0),
            controller,
            pools,
            sink,
            health,
            probe,
        }
    }

    /// Aggregated hit/miss/occupancy counters over every transport
    /// encode-buffer pool in the cluster (all zeros off-TCP). Feed this to
    /// [`bouncer_core::obs::render_prometheus_full`] for the
    /// `bouncer_buffer_pool_*` metric family.
    pub fn pool_counters(&self) -> bouncer_core::obs::PoolCounters {
        let mut agg = bouncer_core::obs::PoolCounters::default();
        for pool in &self.pools {
            let c = pool.counters();
            agg.hits += c.hits;
            agg.misses += c.misses;
            agg.pooled += c.pooled;
        }
        agg
    }

    /// The adaptive controller over the broker tier, when one was
    /// configured ([`ClusterConfig::controller`]).
    pub fn controller(&self) -> Option<&Arc<Controller>> {
        self.controller.as_ref()
    }

    /// The health sampler (and, through it, the flight recorder), when
    /// one was configured ([`ClusterConfig::health`]).
    pub fn health(&self) -> Option<&Arc<HealthSampler>> {
        self.health.as_ref()
    }

    /// The clock every host in this cluster stamps events and spans with.
    /// Traced clients ([`crate::front::TcpBrokerClient::connect_traced`])
    /// must share it for their span timestamps to be comparable.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The cluster's query-type registry (`default` + QT1..QT11).
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// Vertices in the stored graph.
    pub fn vertices(&self) -> u32 {
        self.vertices
    }

    /// Storage summary of the graph this cluster serves (also emitted as
    /// a `graph_stats` event at spawn when a sink is configured).
    pub fn graph_stats(&self) -> GraphStats {
        self.graph_stats
    }

    /// Executes a query on the next broker, round-robin — standing in for
    /// the load balancer spreading traffic "evenly divided among the
    /// brokers" (§5.4).
    pub fn execute(&self, q: Query) -> ClientOutcome {
        let idx = self.round_robin.fetch_add(1, Ordering::Relaxed) % self.brokers.len();
        self.brokers[idx].execute(q)
    }

    /// Executes a query on a specific broker.
    pub fn execute_on(&self, broker: usize, q: Query) -> ClientOutcome {
        self.brokers[broker].execute(q)
    }

    /// Offers a query on the next broker (round-robin) with the outcome
    /// delivered as `(token, outcome)` on `tx` — the open-loop submission
    /// path (see [`Broker::submit_tagged`]).
    ///
    /// # Panics
    /// In [`TransportKind::Rings`] mode, which has no channel-style
    /// submission path — use [`Cluster::execute`].
    pub fn submit_tagged(
        &self,
        q: Query,
        tx: crossbeam::channel::Sender<(u64, ClientOutcome)>,
        token: u64,
    ) {
        let idx = self.round_robin.fetch_add(1, Ordering::Relaxed) % self.brokers.len();
        self.brokers[idx].submit_tagged(q, tx, token);
    }

    /// The broker hosts.
    pub fn brokers(&self) -> &[Arc<Broker>] {
        &self.brokers
    }

    /// The *physical* shard hosts, replica-major (`[s * R + r]`; with
    /// `replicas == 1` this is one host per logical shard, as before).
    pub fn shards(&self) -> &[Arc<ShardHost>] {
        &self.shards
    }

    /// Cluster-wide hedge telemetry, summed over the brokers (all zeros
    /// under non-hedged strategies). Feed to
    /// [`bouncer_core::obs::render_prometheus_full`] for the
    /// `bouncer_hedges_total` / `bouncer_hedge_cancels_total` counters.
    pub fn hedge_counters(&self) -> bouncer_core::obs::HedgeCounters {
        let mut agg = bouncer_core::obs::HedgeCounters::default();
        for b in &self.brokers {
            let c = b.hedge_counters();
            agg.hedges += c.hedges;
            agg.cancels += c.cancels;
        }
        agg
    }

    /// Resets statistics on every host (e.g. after warm-up).
    pub fn reset_stats(&self) {
        for b in &self.brokers {
            b.stats().reset(0);
        }
        for s in &self.shards {
            s.stats().reset(0);
        }
    }

    /// Measures the cluster's saturation throughput: `workers` closed-loop
    /// clients hammer random queries (drawn by `sample`) for `duration`,
    /// and the completion rate is the capacity estimate — the empirical
    /// stand-in for the paper's absolute rate axis (its 36K–180K QPS are
    /// normalized to this in our experiments; see DESIGN.md §1).
    pub fn probe_capacity<F>(&self, duration: Duration, workers: usize, sample: F) -> f64
    where
        F: Fn(&mut SmallRng) -> Query + Sync,
    {
        let completed = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let completed = &completed;
                let sample = &sample;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0xCAFE + w as u64);
                    while start.elapsed() < duration {
                        let q = sample(&mut rng);
                        if matches!(self.execute(q), ClientOutcome::Ok(_)) {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        completed.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
    }

    /// Stops every host and TCP server, then snapshots each transport
    /// buffer pool into a final `pool_stats` event.
    pub fn shutdown(self) {
        if let Some(probe) = self.probe {
            probe.stop.store(true, Ordering::Release);
            let _ = probe.handle.join();
        }
        for server in &self.servers {
            server.stop();
        }
        for b in self.brokers {
            b.shutdown();
        }
        for s in self.shards {
            s.shutdown();
        }
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                let now = self.clock.now();
                for pool in &self.pools {
                    pool.emit_stats("shard_client", sink.as_ref(), now);
                }
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryKind;
    use bouncer_core::policy::AlwaysAccept;

    fn tiny_config() -> ClusterConfig {
        ClusterConfig {
            n_shards: 2,
            n_brokers: 2,
            graph: GraphConfig {
                vertices: 1_000,
                edges_per_vertex: 3,
                seed: 4,
            },
            shard: ShardConfig {
                engines: 2,
                ..ShardConfig::default()
            },
            broker: BrokerConfig {
                engines: 2,
                ..BrokerConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn cluster_answers_queries_in_proc() {
        let cluster = Cluster::spawn(&tiny_config(), |_reg, _p| Arc::new(AlwaysAccept::new()));
        for u in 0..20 {
            let out = cluster.execute(Query {
                kind: QueryKind::Qt1Degree,
                u,
                v: 0,
            });
            assert!(matches!(out, ClientOutcome::Ok(_)), "{out:?}");
        }
        // Round robin touched both brokers.
        let b0 = cluster.brokers()[0].stats().snapshot(1, 1).total_received();
        let b1 = cluster.brokers()[1].stats().snapshot(1, 1).total_received();
        assert_eq!(b0 + b1, 20);
        assert!(b0 > 0 && b1 > 0);
        cluster.shutdown();
    }

    #[test]
    fn cluster_answers_queries_over_tcp() {
        let cfg = ClusterConfig {
            transport: TransportKind::Tcp,
            tcp_connections: 2,
            ..tiny_config()
        };
        let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        for u in 0..20 {
            let out = cluster.execute(Query {
                kind: QueryKind::Qt5MutualCount,
                u,
                v: u + 1,
            });
            assert!(matches!(out, ClientOutcome::Ok(_)), "{out:?}");
        }
        cluster.shutdown();
    }

    #[test]
    fn tcp_cluster_snapshots_buffer_pools_at_shutdown() {
        use bouncer_core::obs::{Event, MemorySink};
        let sink = Arc::new(MemorySink::new());
        let cfg = ClusterConfig {
            transport: TransportKind::Tcp,
            tcp_connections: 2,
            sink: Some(sink.clone()),
            ..tiny_config()
        };
        let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        for u in 0..20 {
            let out = cluster.execute(Query {
                kind: QueryKind::Qt1Degree,
                u,
                v: 0,
            });
            assert!(matches!(out, ClientOutcome::Ok(_)), "{out:?}");
        }
        // The live aggregate sees every encode-buffer request: the first
        // get() per pool misses, steady state hits.
        let agg = cluster.pool_counters();
        assert!(agg.hits + agg.misses >= 20, "{agg:?}");
        assert!(agg.hits > 0, "{agg:?}");
        cluster.shutdown();

        // One pool_stats snapshot per shard client (2 shards x 2 brokers),
        // consistent with the live aggregate taken before shutdown.
        let events = sink.events();
        let snaps: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::PoolStats { .. }))
            .collect();
        assert_eq!(snaps.len(), 4, "events={}", events.len());
        let (mut hits, mut misses) = (0, 0);
        for e in &snaps {
            if let Event::PoolStats {
                pool,
                hits: h,
                misses: m,
                ..
            } = e
            {
                assert_eq!(*pool, "shard_client");
                hits += h;
                misses += m;
            }
        }
        assert_eq!((hits, misses), (agg.hits, agg.misses));
    }

    #[test]
    fn cluster_answers_queries_over_rings() {
        let cfg = ClusterConfig {
            transport: TransportKind::Rings,
            ..tiny_config()
        };
        let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        for kind in QueryKind::ALL {
            for u in 0..5 {
                let out = cluster.execute(Query { kind, u, v: u + 13 });
                assert!(matches!(out, ClientOutcome::Ok(_)), "{kind:?} {out:?}");
            }
        }
        // Both tiers accounted the traffic through their gates.
        let b0 = cluster.brokers()[0].stats().snapshot(1, 1).total_received();
        let b1 = cluster.brokers()[1].stats().snapshot(1, 1).total_received();
        assert_eq!(b0 + b1, (QueryKind::ALL.len() * 5) as u64);
        let shard_recv: u64 = cluster
            .shards()
            .iter()
            .map(|s| s.stats().snapshot(1, 1).total_received())
            .sum();
        assert!(shard_recv > 0, "shard gates saw no ring traffic");
        cluster.shutdown();
    }

    #[test]
    fn rings_rejects_early_when_policy_says_no() {
        use bouncer_core::policy::{Decision, RejectReason};
        use bouncer_core::types::TypeId;
        struct RejectAll;
        impl AdmissionPolicy for RejectAll {
            fn name(&self) -> &str {
                "reject-all"
            }
            fn admit(&self, _ty: TypeId, _now: Nanos) -> Decision {
                Decision::Reject(RejectReason::PredictedSloViolation)
            }
        }
        let cfg = ClusterConfig {
            transport: TransportKind::Rings,
            ..tiny_config()
        };
        let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(RejectAll));
        let out = cluster.execute(Query {
            kind: QueryKind::Qt1Degree,
            u: 1,
            v: 0,
        });
        assert!(matches!(out, ClientOutcome::Rejected(_)), "{out:?}");
        cluster.shutdown();
    }

    #[test]
    fn tcp_and_inproc_agree_on_results() {
        let inproc = Cluster::spawn(&tiny_config(), |_reg, _p| Arc::new(AlwaysAccept::new()));
        let tcp_cfg = ClusterConfig {
            transport: TransportKind::Tcp,
            ..tiny_config()
        };
        let tcp = Cluster::spawn(&tcp_cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        for kind in [
            QueryKind::Qt1Degree,
            QueryKind::Qt5MutualCount,
            QueryKind::Qt7TwoHopCount,
            QueryKind::Qt10Distance3,
        ] {
            for u in [3u32, 77, 500] {
                let q = Query { kind, u, v: u + 9 };
                assert_eq!(inproc.execute(q), tcp.execute(q), "{kind:?} u={u}");
            }
        }
        inproc.shutdown();
        tcp.shutdown();
    }

    #[test]
    fn unbatched_fanout_agrees_with_batched() {
        let batched = Cluster::spawn(&tiny_config(), |_reg, _p| Arc::new(AlwaysAccept::new()));
        let unbatched_cfg = ClusterConfig {
            broker: BrokerConfig {
                batch_fanout: false,
                ..tiny_config().broker
            },
            ..tiny_config()
        };
        let unbatched =
            Cluster::spawn(&unbatched_cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        for kind in [
            QueryKind::Qt5MutualCount,
            QueryKind::Qt7TwoHopCount,
            QueryKind::Qt8TriangleCount,
            QueryKind::Qt11Distance4,
        ] {
            for u in [2u32, 61, 444] {
                let q = Query { kind, u, v: u + 7 };
                assert_eq!(batched.execute(q), unbatched.execute(q), "{kind:?} u={u}");
            }
        }
        batched.shutdown();
        unbatched.shutdown();
    }

    #[test]
    fn cluster_sink_observes_query_lifecycles() {
        use bouncer_core::obs::MemorySink;
        let sink = Arc::new(MemorySink::new());
        let cfg = ClusterConfig {
            sink: Some(sink.clone()),
            ..tiny_config()
        };
        let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        for u in 0..10 {
            let out = cluster.execute(Query {
                kind: QueryKind::Qt1Degree,
                u,
                v: 0,
            });
            assert!(matches!(out, ClientOutcome::Ok(_)), "{out:?}");
        }
        cluster.shutdown();

        let events = sink.events();
        let count = |n: &str| events.iter().filter(|e| e.name() == n).count();
        // Every broker query and every shard sub-query passes a gate, so at
        // least the 10 client queries show up, and nothing was shed.
        assert!(count("admitted") >= 10, "events={}", events.len());
        assert_eq!(count("admitted"), count("completed"));
        assert_eq!(count("rejected"), 0);
        // Wall-clock timestamps are non-decreasing per emitting gate; the
        // merged stream at least starts at a real (nonzero) time.
        assert!(events.iter().all(|e| e.at() > 0));
    }

    #[test]
    fn cluster_tracer_produces_rooted_span_trees() {
        use bouncer_core::obs::{Event, MemorySink, SpanKind, Tracer, TracerConfig};
        use std::collections::HashSet;
        let sink = Arc::new(MemorySink::new());
        let tracer = Arc::new(Tracer::new(sink.clone(), TracerConfig::default()));
        let cfg = ClusterConfig {
            tracer: Some(tracer.clone()),
            ..tiny_config()
        };
        let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        for u in 0..10 {
            let out = cluster.execute(Query {
                kind: QueryKind::Qt7TwoHopCount,
                u,
                v: 0,
            });
            assert!(matches!(out, ClientOutcome::Ok(_)), "{out:?}");
        }
        cluster.shutdown();
        assert_eq!(tracer.sampled_total(), 10);

        let events = sink.events();
        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match *e {
                Event::Span {
                    trace,
                    span,
                    parent,
                    kind,
                    start,
                    end,
                    ..
                } => Some((trace, span, parent, kind, start, end)),
                _ => None,
            })
            .collect();
        let roots: Vec<_> = spans.iter().filter(|s| s.2.is_none()).collect();
        assert_eq!(roots.len(), 10, "one root per traced query");
        assert!(roots.iter().all(|s| matches!(s.3, SpanKind::Query)));
        // Every parent reference resolves within the same trace: no orphans.
        for &(trace, _, parent, kind, start, end) in &spans {
            let ids: HashSet<_> = spans
                .iter()
                .filter(|s| s.0 == trace)
                .map(|s| s.1)
                .collect();
            if let Some(p) = parent {
                assert!(ids.contains(&p), "orphan {kind:?} in {trace:?}");
            }
            assert!(end >= start);
        }
        // QT7 is a two-round plan: shard spans and at least two rounds
        // should appear somewhere in the stream.
        let kind_count = |pred: fn(&SpanKind) -> bool| {
            spans.iter().filter(|s| pred(&s.3)).count()
        };
        assert!(kind_count(|k| matches!(k, SpanKind::Round(_))) >= 2);
        assert!(kind_count(|k| matches!(k, SpanKind::ShardQueue { .. })) > 0);
        assert!(kind_count(|k| matches!(k, SpanKind::ShardService { .. })) > 0);
        assert!(kind_count(|k| matches!(k, SpanKind::SubQuery { .. })) > 0);
    }

    #[test]
    fn cluster_controller_retunes_broker_policies() {
        use bouncer_core::obs::MemorySink;
        let spec = ControllerSpec::parse("aimd interval=40ms step=0.01").unwrap();
        let sink = Arc::new(MemorySink::new());
        let cfg = ClusterConfig {
            sink: Some(sink.clone()),
            controller: Some(ClusterController {
                spec,
                initial: 0.5,
                // No tail targets: every completion attains, so AIMD
                // additively raises max_utilization each interval.
                slo_tails: Vec::new(),
            }),
            ..tiny_config()
        };
        let cluster = Cluster::spawn(&cfg, |_reg, p| {
            Arc::new(AcceptFraction::new(AcceptFractionConfig::new(0.5, p)))
        });
        let controller = Arc::clone(cluster.controller().expect("controller wired"));
        let deadline = Instant::now() + Duration::from_millis(400);
        let mut u = 0u32;
        while Instant::now() < deadline {
            let _ = cluster.execute(Query {
                kind: QueryKind::Qt1Degree,
                u: u % 1_000,
                v: 0,
            });
            u += 1;
        }
        cluster.shutdown();

        let decisions = controller.decisions();
        assert!(!decisions.is_empty(), "no closed intervals in 400ms");
        assert!(
            controller.current_value() > 0.5,
            "attaining load should raise max_utilization, got {}",
            controller.current_value()
        );
        // Decisions reached the event stream through the tap, and the
        // downstream sink still saw the broker lifecycle events.
        let events = sink.events();
        let count = |n: &str| events.iter().filter(|e| e.name() == n).count();
        assert_eq!(count("controller_decision"), decisions.len());
        assert!(count("admitted") > 0);
    }

    #[test]
    fn rings_cluster_health_samples_and_dumps_incidents_under_wall_clock() {
        use bouncer_core::obs::postmortem::{analyze, parse_dump};
        use bouncer_core::obs::{Event, MemorySink};

        let dir = std::env::temp_dir().join(format!(
            "bouncer-cluster-health-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let sink = Arc::new(MemorySink::new());
        let mut health = HealthConfig {
            interval: bouncer_metrics::time::millis(20),
            dump_dir: Some(dir.clone()),
            ..HealthConfig::default()
        };
        // Deterministic CI hook: the first window close trips the dump.
        health.trigger.force_at = Some(1);
        let cfg = ClusterConfig {
            transport: TransportKind::Rings,
            sink: Some(sink.clone()),
            health: Some(health),
            ..tiny_config()
        };
        let cluster = Cluster::spawn(&cfg, |_reg, _p| Arc::new(AlwaysAccept::new()));
        let sampler = Arc::clone(cluster.health().expect("health wired"));
        for u in 0..50 {
            let out = cluster.execute(Query {
                kind: QueryKind::Qt1Degree,
                u,
                v: 0,
            });
            assert!(matches!(out, ClientOutcome::Ok(_)), "{out:?}");
        }
        // Let the probe thread close a few wall-clock windows even though
        // traffic has stopped.
        let deadline = Instant::now() + Duration::from_secs(5);
        while (sampler.samples() < 2 || sampler.incidents() < 1) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        cluster.shutdown();

        assert!(sampler.samples() >= 2, "samples={}", sampler.samples());
        assert_eq!(sampler.incidents(), 1, "forced trigger fires once");
        let counters = sampler.health_counters(0);
        assert!(
            counters.ring_occupancy.is_some(),
            "rings mode reports lane-ring occupancy"
        );

        // The downstream sink saw the sampler's own windows alongside the
        // per-query lifecycle events.
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(e, Event::HealthSample { .. })));
        assert!(events.iter().any(|e| matches!(e, Event::Incident { .. })));

        // The dump reconstructs: real traffic, and the engines' park /
        // resume breadcrumbs from both tiers made it into the rings.
        let paths = sampler.incident_paths();
        assert_eq!(paths.len(), 1);
        let dump =
            parse_dump(&std::fs::read_to_string(&paths[0]).unwrap()).expect("parseable dump");
        assert_eq!(dump.header.reason, "forced");
        assert!(dump.header.records > 0);
        let analysis = analyze(&dump);
        assert!(
            analysis.engine_transitions.0 > 0,
            "engine park transitions recorded"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_probe_reports_positive_throughput() {
        let cluster = Cluster::spawn(&tiny_config(), |_reg, _p| Arc::new(AlwaysAccept::new()));
        let qps = cluster.probe_capacity(Duration::from_millis(300), 4, |rng| {
            Query::random(QueryKind::Qt1Degree, 1_000, rng)
        });
        assert!(qps > 100.0, "qps={qps}");
        cluster.shutdown();
    }
}
