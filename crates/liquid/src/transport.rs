//! Broker→shard transports: in-process and TCP.
//!
//! Experiments default to the in-process transport (deterministic, no
//! kernel in the measurement path); the TCP transport exercises the same
//! code over real sockets with length-prefixed frames and correlation-id
//! multiplexing, for deployments where hosts are separate processes.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bouncer_core::obs::TraceContext;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::query::SubQuery;
use crate::shard::{ShardHost, SubOutcome};
use crate::wire::{
    decode_subquery, decode_subreply, encode_subquery, encode_subreply, read_frame, write_frame,
    Status,
};

/// A handle a broker uses to reach one shard.
pub trait ShardClient: Send + Sync {
    /// Offers a sub-query; the returned channel yields its outcome. The
    /// optional trace context rides along — by value in process, as the
    /// versioned trailing wire field over TCP.
    fn submit(&self, sub: SubQuery, ctx: Option<TraceContext>) -> Receiver<SubOutcome>;
}

/// Same-process transport: calls into the shard host directly.
pub struct InProcShardClient {
    host: Arc<ShardHost>,
}

impl InProcShardClient {
    /// Wraps a shard host.
    pub fn new(host: Arc<ShardHost>) -> Self {
        Self { host }
    }
}

impl ShardClient for InProcShardClient {
    fn submit(&self, sub: SubQuery, ctx: Option<TraceContext>) -> Receiver<SubOutcome> {
        self.host.submit_traced(sub, ctx)
    }
}

/// Serves a shard host over TCP.
pub struct TcpShardServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl TcpShardServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `host`. Returns once the listener is ready.
    pub fn serve(host: Arc<ShardHost>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("shard-listener-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(stream) => spawn_connection(Arc::clone(&host), stream),
                        Err(_) => break,
                    }
                }
            })?;
        Ok(Self { addr, stop })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections (existing ones drain naturally when
    /// clients disconnect).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

/// One connection: a reader that decodes requests and submits them, and a
/// responder that writes outcomes back in submission order. Responses are
/// therefore delivered in request order per connection — acceptable because
/// the shard's own FIFO queue completes them in roughly that order anyway.
fn spawn_connection(host: Arc<ShardHost>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    type PendingReply = (u64, Receiver<SubOutcome>);
    let (tx, rx): (Sender<PendingReply>, Receiver<PendingReply>) = unbounded();

    std::thread::spawn(move || {
        while let Ok(frame) = read_frame(&mut read_half) {
            match decode_subquery(frame) {
                Ok((id, sub, ctx)) => {
                    let outcome_rx = host.submit_traced(sub, ctx);
                    if tx.send((id, outcome_rx)).is_err() {
                        break;
                    }
                }
                Err(_) => break, // protocol violation: drop the connection
            }
        }
    });

    let mut write_half = stream;
    std::thread::spawn(move || {
        for (id, outcome_rx) in rx.iter() {
            let (status, resp) = match outcome_rx.recv() {
                Ok(SubOutcome::Ok(resp)) => (Status::Ok, Some(resp)),
                Ok(SubOutcome::Rejected) => (Status::Rejected, None),
                Ok(SubOutcome::Error) | Err(_) => (Status::Error, None),
            };
            let frame = encode_subreply(id, status, resp.as_ref());
            if write_frame(&mut write_half, &frame).is_err() {
                break;
            }
            if write_half.flush().is_err() {
                break;
            }
        }
    });
}

type Pending = Arc<Mutex<HashMap<u64, Sender<SubOutcome>>>>;

struct TcpConn {
    writer: Mutex<TcpStream>,
    pending: Pending,
}

/// TCP client to one shard, multiplexing requests over a small pool of
/// connections by correlation id.
pub struct TcpShardClient {
    conns: Vec<TcpConn>,
    next_conn: AtomicUsize,
    next_id: AtomicU64,
}

impl TcpShardClient {
    /// Opens `connections` sockets to a shard server.
    pub fn connect(addr: SocketAddr, connections: usize) -> std::io::Result<Self> {
        assert!(connections > 0);
        let mut conns = Vec::with_capacity(connections);
        for _ in 0..connections {
            let stream = TcpStream::connect(addr)?;
            let _ = stream.set_nodelay(true);
            let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
            let mut read_half = stream.try_clone()?;
            let reader_pending = Arc::clone(&pending);
            std::thread::spawn(move || {
                while let Ok(frame) = read_frame(&mut read_half) {
                    let Ok((id, status, resp)) = decode_subreply(frame) else {
                        break;
                    };
                    let Some(tx) = reader_pending.lock().remove(&id) else {
                        continue;
                    };
                    let outcome = match (status, resp) {
                        (Status::Ok, Some(resp)) => SubOutcome::Ok(resp),
                        (Status::Rejected, _) => SubOutcome::Rejected,
                        _ => SubOutcome::Error,
                    };
                    let _ = tx.send(outcome);
                }
                // Connection gone: fail everything still pending.
                for (_, tx) in reader_pending.lock().drain() {
                    let _ = tx.send(SubOutcome::Error);
                }
            });
            conns.push(TcpConn {
                writer: Mutex::new(stream),
                pending,
            });
        }
        Ok(Self {
            conns,
            next_conn: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
        })
    }
}

impl ShardClient for TcpShardClient {
    fn submit(&self, sub: SubQuery, ctx: Option<TraceContext>) -> Receiver<SubOutcome> {
        let (tx, rx) = bounded(1);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn =
            &self.conns[self.next_conn.fetch_add(1, Ordering::Relaxed) % self.conns.len()];
        conn.pending.lock().insert(id, tx);
        let frame = encode_subquery(id, &sub, ctx.as_ref());
        let mut writer = conn.writer.lock();
        let write_result = write_frame(&mut *writer, &frame).and_then(|_| writer.flush());
        drop(writer);
        if write_result.is_err() {
            if let Some(tx) = conn.pending.lock().remove(&id) {
                let _ = tx.send(SubOutcome::Error);
            }
        }
        rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphConfig};
    use crate::query::SubResponse;
    use crate::shard::ShardConfig;
    use bouncer_core::policy::AlwaysAccept;
    use bouncer_metrics::MonotonicClock;

    fn test_host() -> (Graph, Arc<ShardHost>) {
        let g = Graph::generate(&GraphConfig {
            vertices: 500,
            edges_per_vertex: 3,
            seed: 9,
        });
        let host = ShardHost::spawn(
            g.shard_slice(0, 1),
            Arc::new(AlwaysAccept::new()),
            Arc::new(MonotonicClock::new()),
            ShardConfig::default(),
        );
        (g, host)
    }

    #[test]
    fn inproc_client_round_trips() {
        let (g, host) = test_host();
        let client = InProcShardClient::new(Arc::clone(&host));
        let rx = client.submit(SubQuery::Degree(5), None);
        assert_eq!(
            rx.recv().unwrap(),
            SubOutcome::Ok(SubResponse::Count(g.degree(5) as u64))
        );
        host.shutdown();
    }

    #[test]
    fn tcp_client_round_trips_over_real_sockets() {
        let (g, host) = test_host();
        let server = TcpShardServer::serve(Arc::clone(&host), "127.0.0.1:0").unwrap();
        let client = TcpShardClient::connect(server.addr(), 2).unwrap();

        // Interleave several requests to exercise multiplexing.
        let receivers: Vec<_> = (0..50)
            .map(|v| client.submit(SubQuery::Degree(v), None))
            .collect();
        for (v, rx) in receivers.into_iter().enumerate() {
            assert_eq!(
                rx.recv().unwrap(),
                SubOutcome::Ok(SubResponse::Count(g.degree(v as u32) as u64)),
                "vertex {v}"
            );
        }
        server.stop();
        host.shutdown();
    }

    #[test]
    fn tcp_transports_large_batches() {
        let (g, host) = test_host();
        let server = TcpShardServer::serve(Arc::clone(&host), "127.0.0.1:0").unwrap();
        let client = TcpShardClient::connect(server.addr(), 1).unwrap();
        let vs: Vec<u32> = (0..500).collect();
        let rx = client.submit(SubQuery::NeighborsMany(vs.clone()), None);
        match rx.recv().unwrap() {
            SubOutcome::Ok(SubResponse::IdLists(lists)) => {
                assert_eq!(lists.len(), 500);
                assert_eq!(lists[42], g.neighbors(42));
            }
            other => panic!("{other:?}"),
        }
        server.stop();
        host.shutdown();
    }
}
