//! Broker→shard transports: in-process and TCP.
//!
//! Experiments default to the in-process transport (deterministic, no
//! kernel in the measurement path); the TCP transport exercises the same
//! code over real sockets with length-prefixed frames and correlation-id
//! multiplexing, for deployments where hosts are separate processes.
//!
//! Both transports carry single sub-queries **and** per-shard batches
//! ([`ShardClient::submit_batch`]): a round's sub-queries to one shard
//! travel as one frame, land as one admission unit, and come back as one
//! batched reply — one reply channel, one frame write, one frame read,
//! however wide the fan-out. Frame encoding recycles buffers through a
//! bounded [`BufferPool`] (client side, arbitrary submitter threads) or a
//! per-thread scratch vec (server loops), and every frame is staged with
//! [`begin_frame`]/[`end_frame`] so it goes out in a single `write_all`.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bouncer_core::obs::TraceContext;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::query::SubQuery;
use crate::shard::{ShardHost, SubOutcome};
use crate::wire::{
    begin_frame, decode_subreply_any, decode_subrequest, encode_cancel_into,
    encode_subquery_batch_into, encode_subquery_into, encode_subreply_batch_into,
    encode_subreply_into, end_frame, read_frame_into, BufferPool, Status, SubReplyBody, SubRequest,
};

/// A handle a broker uses to reach one shard.
pub trait ShardClient: Send + Sync {
    /// Offers a sub-query; the returned channel yields its outcome. The
    /// optional trace context rides along — by value in process, as the
    /// versioned trailing wire field over TCP.
    fn submit(&self, sub: SubQuery, ctx: Option<TraceContext>) -> Receiver<SubOutcome>;

    /// Offers a round's sub-queries to this shard as **one** admission
    /// unit; the returned channel yields one outcome per sub-query, in
    /// submission order. An admission rejection rejects the whole batch.
    fn submit_batch(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> Receiver<Vec<SubOutcome>>;

    /// [`ShardClient::submit_batch`] plus a [`CancelHandle`] for hedged
    /// fan-out: cancelling before the shard dequeues the batch makes it
    /// reply per-item `Cancelled` without executing (and without charging
    /// processing time); cancelling later is a harmless no-op. A reply
    /// always arrives either way. The default implementation has no cancel
    /// path and returns a no-op handle.
    fn submit_batch_cancellable(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> (Receiver<Vec<SubOutcome>>, CancelHandle) {
        (self.submit_batch(subs, ctx), CancelHandle::noop())
    }
}

/// Best-effort cancellation of one in-flight batch (see
/// [`ShardClient::submit_batch_cancellable`]). In process it flips the
/// shard host's cancel flag directly; over TCP it writes a cancel frame
/// carrying the batch's correlation id.
pub struct CancelHandle(CancelInner);

enum CancelInner {
    /// Nothing to cancel.
    Noop,
    /// In-process / rings: the shard-side cancel flag.
    Flag(Arc<AtomicBool>),
    /// TCP: tell the server to flip the flag on its side.
    Tcp { conn: Arc<TcpConn>, id: u64 },
}

impl CancelHandle {
    /// A handle that cancels nothing.
    pub fn noop() -> Self {
        Self(CancelInner::Noop)
    }

    pub(crate) fn flag(flag: Arc<AtomicBool>) -> Self {
        Self(CancelInner::Flag(flag))
    }

    /// Requests cancellation. Consumes the handle — cancel is one-shot.
    pub fn cancel(self) {
        match self.0 {
            CancelInner::Noop => {}
            CancelInner::Flag(flag) => flag.store(true, Ordering::Release),
            CancelInner::Tcp { conn, id } => {
                let mut frame = Vec::with_capacity(13);
                let start = begin_frame(&mut frame);
                encode_cancel_into(&mut frame, id);
                end_frame(&mut frame, start);
                let mut writer = conn.writer.lock();
                let _ = writer.write_all(&frame).and_then(|_| writer.flush());
            }
        }
    }
}

/// Same-process transport: calls into the shard host directly.
pub struct InProcShardClient {
    host: Arc<ShardHost>,
}

impl InProcShardClient {
    /// Wraps a shard host.
    pub fn new(host: Arc<ShardHost>) -> Self {
        Self { host }
    }
}

impl ShardClient for InProcShardClient {
    fn submit(&self, sub: SubQuery, ctx: Option<TraceContext>) -> Receiver<SubOutcome> {
        self.host.submit_traced(sub, ctx)
    }

    fn submit_batch(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> Receiver<Vec<SubOutcome>> {
        self.host.submit_batch(subs, ctx)
    }

    fn submit_batch_cancellable(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> (Receiver<Vec<SubOutcome>>, CancelHandle) {
        let (rx, flag) = self.host.submit_batch_cancellable(subs, ctx);
        (rx, CancelHandle::flag(flag))
    }
}

/// Serves a shard host over TCP.
pub struct TcpShardServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl TcpShardServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `host`. Returns once the listener is ready.
    pub fn serve(host: Arc<ShardHost>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("shard-listener-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(stream) => spawn_connection(Arc::clone(&host), stream),
                        Err(_) => break,
                    }
                }
            })?;
        Ok(Self { addr, stop })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections (existing ones drain naturally when
    /// clients disconnect).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A reply the responder thread still has to write, in submission order.
enum PendingReply {
    Single(u64, Receiver<SubOutcome>),
    Batch(u64, usize, Receiver<Vec<SubOutcome>>),
}

/// One connection: a reader that decodes requests and submits them, and a
/// responder that writes outcomes back in submission order. Responses are
/// therefore delivered in request order per connection — acceptable because
/// the shard's own FIFO queue completes them in roughly that order anyway.
///
/// Each loop thread owns one scratch buffer, so the steady-state read and
/// write paths stop allocating once the buffers reach the connection's
/// working frame size.
fn spawn_connection(host: Arc<ShardHost>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx): (Sender<PendingReply>, Receiver<PendingReply>) = unbounded();
    // Cancel tokens of this connection's in-flight batches, by correlation
    // id. The reader inserts before handing the reply off; the responder
    // removes once the reply is written; a cancel frame in between flips
    // the flag the shard engine checks at dequeue.
    let cancels: Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>> = Arc::new(Mutex::new(HashMap::new()));
    let reader_cancels = Arc::clone(&cancels);

    std::thread::spawn(move || {
        let mut scratch = Vec::new();
        while let Ok(n) = read_frame_into(&mut read_half, &mut scratch) {
            match decode_subrequest(&scratch[..n]) {
                Ok((id, SubRequest::Single(sub), ctx)) => {
                    let outcome_rx = host.submit_traced(sub, ctx);
                    if tx.send(PendingReply::Single(id, outcome_rx)).is_err() {
                        break;
                    }
                }
                Ok((id, SubRequest::Batch(subs), ctx)) => {
                    let len = subs.len();
                    let (outcome_rx, cancel) = host.submit_batch_cancellable(subs, ctx);
                    reader_cancels.lock().insert(id, cancel);
                    if tx.send(PendingReply::Batch(id, len, outcome_rx)).is_err() {
                        break;
                    }
                }
                Ok((id, SubRequest::Cancel, _)) => {
                    // Best-effort; a cancel for an id already replied to
                    // (or never seen) is silently ignored, and cancel
                    // frames never get a reply of their own.
                    if let Some(flag) = reader_cancels.lock().get(&id) {
                        flag.store(true, Ordering::Release);
                    }
                }
                Err(_) => break, // protocol violation: drop the connection
            }
        }
    });

    let mut write_half = stream;
    std::thread::spawn(move || {
        let mut frame = Vec::new();
        for pending in rx.iter() {
            frame.clear();
            let start = begin_frame(&mut frame);
            match pending {
                PendingReply::Single(id, outcome_rx) => {
                    let (status, resp) = match outcome_rx.recv() {
                        Ok(SubOutcome::Ok(resp)) => (Status::Ok, Some(resp)),
                        Ok(SubOutcome::Rejected) => (Status::Rejected, None),
                        Ok(SubOutcome::Cancelled) => (Status::Cancelled, None),
                        Ok(SubOutcome::Error) | Err(_) => (Status::Error, None),
                    };
                    encode_subreply_into(&mut frame, id, status, resp.as_ref());
                }
                PendingReply::Batch(id, len, outcome_rx) => {
                    let outcomes = outcome_rx
                        .recv()
                        .unwrap_or_else(|_| vec![SubOutcome::Error; len]);
                    encode_subreply_batch_into(&mut frame, id, &outcomes);
                    cancels.lock().remove(&id);
                }
            }
            end_frame(&mut frame, start);
            if write_half.write_all(&frame).is_err() {
                break;
            }
            if write_half.flush().is_err() {
                break;
            }
        }
    });
}

/// A reply channel waiting on a correlation id; batches remember their
/// width so a dying connection can fail every item.
enum PendingTx {
    Single(Sender<SubOutcome>),
    Batch(Sender<Vec<SubOutcome>>, usize),
}

impl PendingTx {
    fn fail(self) {
        match self {
            PendingTx::Single(tx) => {
                let _ = tx.send(SubOutcome::Error);
            }
            PendingTx::Batch(tx, n) => {
                let _ = tx.send(vec![SubOutcome::Error; n]);
            }
        }
    }
}

type Pending = Arc<Mutex<HashMap<u64, PendingTx>>>;

struct TcpConn {
    writer: Mutex<TcpStream>,
    pending: Pending,
}

/// TCP client to one shard, multiplexing requests over a small pool of
/// connections by correlation id.
pub struct TcpShardClient {
    conns: Vec<Arc<TcpConn>>,
    next_conn: AtomicUsize,
    next_id: AtomicU64,
    /// Recycled encode buffers for submitter threads (see [`BufferPool`]).
    pool: Arc<BufferPool>,
}

impl TcpShardClient {
    /// Opens `connections` sockets to a shard server.
    pub fn connect(addr: SocketAddr, connections: usize) -> std::io::Result<Self> {
        assert!(connections > 0);
        let mut conns = Vec::with_capacity(connections);
        for _ in 0..connections {
            let stream = TcpStream::connect(addr)?;
            let _ = stream.set_nodelay(true);
            let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
            let mut read_half = stream.try_clone()?;
            let reader_pending = Arc::clone(&pending);
            std::thread::spawn(move || {
                let mut scratch = Vec::new();
                while let Ok(n) = read_frame_into(&mut read_half, &mut scratch) {
                    let Ok((id, body)) = decode_subreply_any(&scratch[..n]) else {
                        break;
                    };
                    let Some(tx) = reader_pending.lock().remove(&id) else {
                        continue;
                    };
                    match (tx, body) {
                        (PendingTx::Single(tx), SubReplyBody::Single(status, resp)) => {
                            let outcome = match (status, resp) {
                                (Status::Ok, Some(resp)) => SubOutcome::Ok(resp),
                                (Status::Rejected, _) => SubOutcome::Rejected,
                                _ => SubOutcome::Error,
                            };
                            let _ = tx.send(outcome);
                        }
                        (PendingTx::Batch(tx, _), SubReplyBody::Batch(outcomes)) => {
                            let _ = tx.send(outcomes);
                        }
                        // Envelope shape does not match what we sent:
                        // protocol violation, fail the waiter.
                        (tx, _) => tx.fail(),
                    }
                }
                // Connection gone: fail everything still pending.
                for (_, tx) in reader_pending.lock().drain() {
                    tx.fail();
                }
            });
            conns.push(Arc::new(TcpConn {
                writer: Mutex::new(stream),
                pending,
            }));
        }
        Ok(Self {
            conns,
            next_conn: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            pool: BufferPool::for_transport(),
        })
    }

    /// The client's encode-buffer pool, for observability snapshots.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Registers a waiter, writes one staged frame, and unwinds the waiter
    /// on a failed write.
    fn send_frame(&self, id: u64, conn: &TcpConn, frame: &[u8]) {
        let mut writer = conn.writer.lock();
        let write_result = writer.write_all(frame).and_then(|_| writer.flush());
        drop(writer);
        if write_result.is_err() {
            if let Some(tx) = conn.pending.lock().remove(&id) {
                tx.fail();
            }
        }
    }

    fn next_conn(&self) -> &Arc<TcpConn> {
        &self.conns[self.next_conn.fetch_add(1, Ordering::Relaxed) % self.conns.len()]
    }
}

impl ShardClient for TcpShardClient {
    fn submit(&self, sub: SubQuery, ctx: Option<TraceContext>) -> Receiver<SubOutcome> {
        let (tx, rx) = bounded(1);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn = self.next_conn();
        conn.pending.lock().insert(id, PendingTx::Single(tx));
        let mut frame = self.pool.get();
        let start = begin_frame(&mut frame);
        encode_subquery_into(&mut frame, id, &sub, ctx.as_ref());
        end_frame(&mut frame, start);
        self.send_frame(id, conn, &frame);
        rx
    }

    fn submit_batch(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> Receiver<Vec<SubOutcome>> {
        let (tx, rx) = bounded(1);
        if subs.is_empty() {
            let _ = tx.send(Vec::new());
            return rx;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn = self.next_conn();
        conn.pending
            .lock()
            .insert(id, PendingTx::Batch(tx, subs.len()));
        let mut frame = self.pool.get();
        let start = begin_frame(&mut frame);
        encode_subquery_batch_into(&mut frame, id, &subs, ctx.as_ref());
        end_frame(&mut frame, start);
        self.send_frame(id, conn, &frame);
        rx
    }

    fn submit_batch_cancellable(
        &self,
        subs: Vec<SubQuery>,
        ctx: Option<TraceContext>,
    ) -> (Receiver<Vec<SubOutcome>>, CancelHandle) {
        let (tx, rx) = bounded(1);
        if subs.is_empty() {
            let _ = tx.send(Vec::new());
            return (rx, CancelHandle::noop());
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::clone(self.next_conn());
        conn.pending
            .lock()
            .insert(id, PendingTx::Batch(tx, subs.len()));
        let mut frame = self.pool.get();
        let start = begin_frame(&mut frame);
        encode_subquery_batch_into(&mut frame, id, &subs, ctx.as_ref());
        end_frame(&mut frame, start);
        self.send_frame(id, &conn, &frame);
        (rx, CancelHandle(CancelInner::Tcp { conn, id }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphConfig};
    use crate::query::SubResponse;
    use crate::shard::ShardConfig;
    use bouncer_core::policy::AlwaysAccept;
    use bouncer_metrics::MonotonicClock;

    fn test_host() -> (Graph, Arc<ShardHost>) {
        let g = Graph::generate(&GraphConfig {
            vertices: 500,
            edges_per_vertex: 3,
            seed: 9,
        });
        let host = ShardHost::spawn(
            Arc::new(g.shard_slice(0, 1)),
            Arc::new(AlwaysAccept::new()),
            Arc::new(MonotonicClock::new()),
            ShardConfig::default(),
        );
        (g, host)
    }

    #[test]
    fn inproc_client_round_trips() {
        let (g, host) = test_host();
        let client = InProcShardClient::new(Arc::clone(&host));
        let rx = client.submit(SubQuery::Degree(5), None);
        assert_eq!(
            rx.recv().unwrap(),
            SubOutcome::Ok(SubResponse::Count(g.degree(5) as u64))
        );
        host.shutdown();
    }

    #[test]
    fn tcp_client_round_trips_over_real_sockets() {
        let (g, host) = test_host();
        let server = TcpShardServer::serve(Arc::clone(&host), "127.0.0.1:0").unwrap();
        let client = TcpShardClient::connect(server.addr(), 2).unwrap();

        // Interleave several requests to exercise multiplexing.
        let receivers: Vec<_> = (0..50)
            .map(|v| client.submit(SubQuery::Degree(v), None))
            .collect();
        for (v, rx) in receivers.into_iter().enumerate() {
            assert_eq!(
                rx.recv().unwrap(),
                SubOutcome::Ok(SubResponse::Count(g.degree(v as u32) as u64)),
                "vertex {v}"
            );
        }
        server.stop();
        host.shutdown();
    }

    #[test]
    fn tcp_transports_large_batches() {
        let (g, host) = test_host();
        let server = TcpShardServer::serve(Arc::clone(&host), "127.0.0.1:0").unwrap();
        let client = TcpShardClient::connect(server.addr(), 1).unwrap();
        let vs: Vec<u32> = (0..500).collect();
        let rx = client.submit(SubQuery::NeighborsMany(vs.into()), None);
        match rx.recv().unwrap() {
            SubOutcome::Ok(SubResponse::IdLists(lists)) => {
                assert_eq!(lists.len(), 500);
                assert_eq!(lists.get(42).unwrap(), g.neighbors(42));
            }
            other => panic!("{other:?}"),
        }
        server.stop();
        host.shutdown();
    }

    #[test]
    fn tcp_cancel_frame_cancels_a_queued_batch() {
        let g = Graph::generate(&GraphConfig {
            vertices: 500,
            edges_per_vertex: 3,
            seed: 9,
        });
        let host = ShardHost::spawn(
            Arc::new(g.shard_slice(0, 1)),
            Arc::new(AlwaysAccept::new()),
            Arc::new(MonotonicClock::new()),
            ShardConfig {
                engines: 1,
                ..ShardConfig::default()
            },
        );
        let server = TcpShardServer::serve(Arc::clone(&host), "127.0.0.1:0").unwrap();
        let client = TcpShardClient::connect(server.addr(), 1).unwrap();
        // Park heavy work in front of the single engine, then cancel a
        // batch queued behind it before the engine can reach it.
        let heavy: Vec<_> = (0..8)
            .map(|_| {
                client.submit_batch(
                    vec![SubQuery::NeighborsMany(Arc::new((0..500).collect())); 32],
                    None,
                )
            })
            .collect();
        let (rx, handle) = client.submit_batch_cancellable(vec![SubQuery::Degree(0); 3], None);
        handle.cancel();
        for h in heavy {
            assert!(h.recv().unwrap().iter().all(|o| matches!(o, SubOutcome::Ok(_))));
        }
        assert_eq!(rx.recv().unwrap(), vec![SubOutcome::Cancelled; 3]);
        // An uncancelled cancellable batch executes normally.
        let (rx, _handle) = client.submit_batch_cancellable(vec![SubQuery::Degree(2)], None);
        assert_eq!(
            rx.recv().unwrap(),
            vec![SubOutcome::Ok(SubResponse::Count(g.degree(2) as u64))]
        );
        server.stop();
        host.shutdown();
    }

    #[test]
    fn batch_round_trips_match_singles_on_both_transports() {
        let (g, host) = test_host();
        let server = TcpShardServer::serve(Arc::clone(&host), "127.0.0.1:0").unwrap();
        let tcp = TcpShardClient::connect(server.addr(), 2).unwrap();
        let inproc = InProcShardClient::new(Arc::clone(&host));
        let clients: [&dyn ShardClient; 2] = [&inproc, &tcp];

        let subs = vec![
            SubQuery::Degree(5),
            SubQuery::Neighbors(6),
            SubQuery::HasEdge(5, g.neighbors(5)[0]),
            SubQuery::DegreeMany(vec![1, 2, 3].into()),
            SubQuery::CountIntersect(7, Arc::new((0..100).collect())),
        ];
        for client in clients {
            // The batched outcomes must equal the item-by-item outcomes.
            let singles: Vec<SubOutcome> = subs
                .iter()
                .map(|s| client.submit(s.clone(), None).recv().unwrap())
                .collect();
            let batched = client.submit_batch(subs.clone(), None).recv().unwrap();
            assert_eq!(batched, singles);
            // Empty batches resolve immediately.
            assert_eq!(client.submit_batch(Vec::new(), None).recv().unwrap(), Vec::new());
        }
        server.stop();
        host.shutdown();
    }
}
