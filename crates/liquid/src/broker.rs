//! A broker host: the cluster's query entry point.
//!
//! "When a broker receives a query from a client, the broker sends
//! sub-queries to the shard hosts to fetch data from them. Answering a
//! query involves one or more communication rounds between the broker and
//! the shards. At the end of each round, the broker accumulates the shards'
//! responses and processes the sub-query results before starting the next
//! round." (§5.1)
//!
//! The broker runs the admission policy under evaluation; a query's broker
//! *processing time* spans all of its rounds, so it includes shard-side
//! queueing — which is why the paper's Figure 13 sees per-type processing
//! time rise with load on the real system but not in the ideal simulator.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bouncer_core::framework::{Gate, GateConfig, ServerStats, TakeOutcome, Ticker};
use bouncer_core::obs::{
    new_span_id, null_sink, EventSink, QueryTrace, SpanId, SpanKind, SpanStatus, TraceContext,
    Tracer,
};
use bouncer_core::policy::{AdmissionPolicy, RejectReason};
use bouncer_core::types::{TypeId, TypeRegistry};
use bouncer_metrics::{Clock, Nanos};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::graph::VertexId;
use crate::query::{IdLists, Query, QueryKind, SubQuery, SubResponse};
use crate::shard::SubOutcome;
use crate::transport::ShardClient;

/// Builds the type registry for the LIquid workload: `default` plus
/// QT1..QT11 in cost order (ids 1..=11).
pub fn liquid_registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    for kind in QueryKind::ALL {
        reg.register(kind.name());
    }
    reg
}

/// The registered [`TypeId`] of a query kind in [`liquid_registry`] order.
#[inline]
pub fn kind_type_id(kind: QueryKind) -> TypeId {
    TypeId::from_index(kind.index() as u32 + 1)
}

/// Outcome of a client query, as delivered to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOutcome {
    /// Serviced; scalar result.
    Ok(u64),
    /// Rejected by the broker's admission policy (early rejection, §2).
    Rejected(RejectReason),
    /// A shard rejected one of the query's sub-queries mid-plan.
    ShardRejected,
    /// The query expired in the broker's queue before an engine picked it
    /// up; it was dropped undone (§5.1 expiration enforcement).
    Expired,
    /// Execution failed (transport error, bad vertex).
    Failed,
}

/// Query-plan failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanError {
    ShardRejected,
    ShardFailed,
}

/// How a job's outcome travels back to the submitter.
enum Responder {
    /// Dedicated one-shot channel per query ([`Broker::submit`]).
    Oneshot(Sender<ClientOutcome>),
    /// Shared channel with a caller-chosen token ([`Broker::submit_tagged`]);
    /// lets one collector thread service any number of in-flight queries —
    /// a truly open-loop load generator needs this, since at overload the
    /// in-flight population exceeds any reasonable thread count.
    Tagged(Sender<(u64, ClientOutcome)>, u64),
}

impl Responder {
    fn send(self, outcome: ClientOutcome) {
        match self {
            Responder::Oneshot(tx) => {
                let _ = tx.send(outcome);
            }
            Responder::Tagged(tx, token) => {
                let _ = tx.send((token, outcome));
            }
        }
    }
}

struct Job {
    query: Query,
    respond: Responder,
    /// Buffered trace, present only when the broker has an enabled tracer.
    trace: Option<QueryTrace>,
}

/// Broker configuration.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Engine threads (`|PU|` on the broker).
    pub engines: u32,
    /// `L_limit` on the FIFO queue (the paper uses 800).
    pub max_queue_len: Option<usize>,
    /// Policy maintenance period.
    pub tick_period: Duration,
    /// Per-sub-query wait bound, guarding engines against stuck shards.
    pub subquery_timeout: Duration,
    /// Expiration time given to every admitted query (`None` = queries
    /// never expire — the paper's evaluation uses "generous expiration
    /// times to ensure they do not time out").
    pub query_deadline: Option<Duration>,
    /// Optional observability sink for this host's gate (lifecycle events
    /// with wall-clock timestamps, plus the policy's interval events).
    pub sink: Option<Arc<dyn EventSink>>,
    /// Optional distributed tracer. The broker roots a [`QueryTrace`] per
    /// offered query (joining an incoming sampled context when present),
    /// records admission/queue/round/sub-query spans, and finalizes at the
    /// outcome. `None` keeps tracing entirely off the admission path.
    pub tracer: Option<Arc<Tracer>>,
    /// Coalesce each round's sub-queries to one shard into a single batch
    /// (one message, one reply channel, one shard admission decision).
    /// `false` falls back to one message per sub-query — kept for
    /// batched-vs-unbatched equivalence testing and benchmarking.
    pub batch_fanout: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            engines: 4,
            max_queue_len: Some(800),
            tick_period: Duration::from_millis(100),
            subquery_timeout: Duration::from_secs(10),
            query_deadline: None,
            sink: None,
            tracer: None,
            batch_fanout: true,
        }
    }
}

/// A running broker host.
pub struct Broker {
    gate: Arc<Gate<Job>>,
    /// Engine threads, joined (exactly once) by [`Broker::shutdown`]. Held
    /// behind a mutex so shutdown joins regardless of how many `Arc` clones
    /// of the broker are still alive.
    engines: Mutex<Vec<JoinHandle<()>>>,
    _ticker: Ticker,
    parallelism: u32,
    query_deadline: Option<Duration>,
    tracer: Option<Arc<Tracer>>,
}

impl Broker {
    /// Spawns a broker over the given shard connections, gating admissions
    /// with `policy` (the policy under evaluation in §5.4).
    pub fn spawn(
        shards: Vec<Arc<dyn ShardClient>>,
        policy: Arc<dyn AdmissionPolicy>,
        clock: Arc<dyn Clock>,
        cfg: BrokerConfig,
    ) -> Arc<Self> {
        assert!(cfg.engines > 0);
        assert!(!shards.is_empty());
        let registry = liquid_registry();
        let gate: Arc<Gate<Job>> = Arc::new(Gate::new_with_sink(
            policy.clone(),
            registry.len(),
            clock.clone(),
            GateConfig {
                max_queue_len: cfg.max_queue_len,
                ..GateConfig::default()
            },
            cfg.sink.clone().unwrap_or_else(null_sink),
        ));
        let shards = Arc::new(shards);
        // A tracer whose sink is disabled behaves as no tracer at all.
        let tracer = cfg.tracer.filter(|t| t.enabled());
        let engines = (0..cfg.engines)
            .map(|i| {
                let gate = Arc::clone(&gate);
                let shards = Arc::clone(&shards);
                let timeout = cfg.subquery_timeout;
                let tracer = tracer.clone();
                let batch = cfg.batch_fanout;
                std::thread::Builder::new()
                    .name(format!("broker-engine{i}"))
                    .spawn(move || engine_loop(&gate, &shards, timeout, batch, tracer.as_deref()))
                    .expect("failed to spawn broker engine")
            })
            .collect();
        let ticker = Ticker::spawn(policy, clock, cfg.tick_period);
        Arc::new(Self {
            gate,
            engines: Mutex::new(engines),
            _ticker: ticker,
            parallelism: cfg.engines,
            query_deadline: cfg.query_deadline,
            tracer,
        })
    }

    /// Offers a client query; the returned channel yields its outcome. A
    /// broker-side rejection is delivered immediately.
    pub fn submit(&self, query: Query) -> Receiver<ClientOutcome> {
        self.submit_with_ctx(query, None)
    }

    /// Like [`Broker::submit`], joining an incoming trace context (the
    /// front server's path; in-process callers pass `None`).
    pub fn submit_with_ctx(
        &self,
        query: Query,
        ctx: Option<TraceContext>,
    ) -> Receiver<ClientOutcome> {
        let (tx, rx) = bounded(1);
        self.offer(query, Responder::Oneshot(tx), ctx);
        rx
    }

    /// Offers a client query whose outcome is delivered on a *shared*
    /// channel as `(token, outcome)`. Rejections are delivered immediately,
    /// like [`Broker::submit`].
    pub fn submit_tagged(&self, query: Query, tx: Sender<(u64, ClientOutcome)>, token: u64) {
        self.offer(query, Responder::Tagged(tx, token), None);
    }

    /// [`Broker::submit_tagged`] with an incoming trace context.
    pub fn submit_tagged_with_ctx(
        &self,
        query: Query,
        tx: Sender<(u64, ClientOutcome)>,
        token: u64,
        ctx: Option<TraceContext>,
    ) {
        self.offer(query, Responder::Tagged(tx, token), ctx);
    }

    fn offer(&self, query: Query, respond: Responder, ctx: Option<TraceContext>) {
        let ty = kind_type_id(query.kind);
        let trace = self
            .tracer
            .as_ref()
            .map(|t| t.begin(Some(ty), self.gate.clock().now(), ctx));
        let deadline = self
            .query_deadline
            .map(|d| self.gate.clock().now() + d.as_nanos() as u64);
        if let Err((reason, job)) =
            self.gate
                .offer_with_deadline(ty, Job { query, respond, trace }, deadline)
        {
            if let (Some(tracer), Some(mut qt)) = (self.tracer.as_ref(), job.trace) {
                // Early rejections are always emitted, whatever head
                // sampling decided.
                let now = self.gate.clock().now();
                qt.record_child(SpanKind::Admission, qt.start(), now);
                tracer.finish(qt, SpanStatus::Rejected, now);
            }
            job.respond.send(ClientOutcome::Rejected(reason));
        }
    }

    /// Convenience: submit and wait.
    pub fn execute(&self, query: Query) -> ClientOutcome {
        match self.submit(query).recv() {
            Ok(outcome) => outcome,
            Err(_) => ClientOutcome::Failed,
        }
    }

    /// This broker's statistics (per QT type).
    pub fn stats(&self) -> &Arc<ServerStats> {
        self.gate.stats()
    }

    /// The admission policy behind the gate.
    pub fn policy(&self) -> &Arc<dyn AdmissionPolicy> {
        self.gate.policy()
    }

    /// The distributed tracer, when one was configured with an enabled sink.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The clock this broker timestamps with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        self.gate.clock()
    }

    /// Engine parallelism (`|PU|`).
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Current FIFO queue length.
    pub fn queue_len(&self) -> usize {
        self.gate.queue_len()
    }

    /// Stops the engines and waits for them to exit.
    ///
    /// Always joins, no matter how many `Arc` clones of the broker are
    /// still held elsewhere (the seed only joined when the caller happened
    /// to hold the last strong reference, silently leaking the engine
    /// threads otherwise). Idempotent: later calls find no handles left.
    pub fn shutdown(&self) {
        self.gate.close();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.engines.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Number of engine threads not yet joined — 0 after
    /// [`Broker::shutdown`] returns.
    pub fn engines_running(&self) -> usize {
        self.engines.lock().len()
    }
}

fn engine_loop(
    gate: &Gate<Job>,
    shards: &[Arc<dyn ShardClient>],
    timeout: Duration,
    batch: bool,
    tracer: Option<&Tracer>,
) {
    let ctx = PlanCtx {
        shards,
        timeout,
        batch,
        clock: gate.clock(),
        trace: RefCell::new(None),
    };
    loop {
        match gate.take(Some(Duration::from_millis(100))) {
            TakeOutcome::Query(admitted) => {
                let (ty, enqueued_at, dequeued_at) =
                    (admitted.ty, admitted.enqueued_at, admitted.dequeued_at);
                let Job { query, respond, trace } = admitted.payload;
                if let Some(mut qt) = trace {
                    // The admission span covers the gate offer; the queue
                    // span covers enqueue→engine pickup. Both timestamps
                    // come from the gate's own bookkeeping.
                    qt.record_child(SpanKind::Admission, qt.start(), enqueued_at);
                    qt.record_child(SpanKind::BrokerQueue, enqueued_at, dequeued_at);
                    *ctx.trace.borrow_mut() = Some(PlanTrace::new(qt, dequeued_at));
                }
                let result = execute_plan(&ctx, query);
                gate.complete(ty, enqueued_at, dequeued_at);
                if let Some(pt) = ctx.trace.borrow_mut().take() {
                    if let Some(tracer) = tracer {
                        let status = match &result {
                            Ok(_) => SpanStatus::Ok,
                            Err(PlanError::ShardRejected) => SpanStatus::Rejected,
                            Err(PlanError::ShardFailed) => SpanStatus::Failed,
                        };
                        pt.finish(tracer, status, gate.clock().now());
                    }
                }
                let outcome = match result {
                    Ok(value) => ClientOutcome::Ok(value),
                    Err(PlanError::ShardRejected) => ClientOutcome::ShardRejected,
                    Err(PlanError::ShardFailed) => ClientOutcome::Failed,
                };
                respond.send(outcome);
            }
            TakeOutcome::Expired(admitted) => {
                // Dropped undone: reply with a timeout error immediately.
                let enqueued_at = admitted.enqueued_at;
                let Job { respond, trace, .. } = admitted.payload;
                if let (Some(tracer), Some(mut qt)) = (tracer, trace) {
                    let now = gate.clock().now();
                    qt.record_child(SpanKind::Admission, qt.start(), enqueued_at);
                    qt.record_child(SpanKind::BrokerQueue, enqueued_at, now);
                    tracer.finish(qt, SpanStatus::Expired, now);
                }
                respond.send(ClientOutcome::Expired);
            }
            TakeOutcome::TimedOut => {}
            TakeOutcome::Closed => return,
        }
    }
}

/// Query-plan caps: bound the fan-out of the expensive templates so costs
/// are heavy-tailed but finite, like production queries with result limits.
const PAGE: usize = 64;
const DEGREE_SAMPLE: usize = 32;
const TWO_HOP_CAP: usize = 192;
const TRIANGLE_CAP: usize = 32;
const COMMON_CAP: usize = 128;
const BFS3_CAP: usize = 512;
const BFS4_CAP: usize = 1024;

/// Per-query trace state while the engine runs the plan: segments the
/// execution into fan-out rounds (a round opens at the first send after the
/// previous round closed, and closes when every sub-query of the round has
/// been waited for) with [`SpanKind::Aggregation`] spans filling the
/// broker-compute gaps between rounds.
struct PlanTrace {
    qt: QueryTrace,
    /// Pre-minted id of the [`SpanKind::BrokerService`] span (recorded at
    /// finish); rounds and aggregation spans parent under it.
    service_span: SpanId,
    service_start: Nanos,
    round_idx: u16,
    /// The open round, as `(span id, start)`.
    round: Option<(SpanId, Nanos)>,
    /// Sub-queries sent in the open round and not yet waited for, as
    /// `(span id, shard, sent at)`. Drained entries become
    /// [`SpanKind::SubQuery`] spans; anything still here at finish is
    /// recorded then, so eagerly-emitted shard spans always find their
    /// parent even when an error path abandons receivers.
    outstanding: Vec<(SpanId, u16, Nanos)>,
    /// Where the current between-rounds aggregation segment began.
    segment_start: Nanos,
}

impl PlanTrace {
    fn new(qt: QueryTrace, dequeued_at: Nanos) -> Self {
        Self {
            qt,
            service_span: new_span_id(),
            service_start: dequeued_at,
            round_idx: 0,
            round: None,
            outstanding: Vec::new(),
            segment_start: dequeued_at,
        }
    }

    /// Called per sub-query send; returns the sub-query's span id (the
    /// parent shard-side spans attach under).
    fn on_send(&mut self, shard: u16, now: Nanos) -> SpanId {
        if self.round.is_none() {
            if self.round_idx > 0 {
                // The gap since the previous round closed was broker
                // compute: reply aggregation / frontier construction.
                self.qt.record(
                    SpanKind::Aggregation(self.round_idx - 1),
                    new_span_id(),
                    self.service_span,
                    self.segment_start,
                    now,
                );
            }
            self.round = Some((new_span_id(), now));
        }
        let sub_span = new_span_id();
        self.outstanding.push((sub_span, shard, now));
        sub_span
    }

    /// Called once per sub-query wait (success or failure).
    fn on_recv(&mut self, sub_span: SpanId, now: Nanos) {
        let Some(pos) = self.outstanding.iter().position(|&(s, _, _)| s == sub_span) else {
            return;
        };
        let (span, shard, sent_at) = self.outstanding.swap_remove(pos);
        let (round_span, _) = self.round.expect("recv with no open round");
        self.qt
            .record(SpanKind::SubQuery { shard }, span, round_span, sent_at, now);
        if self.outstanding.is_empty() {
            self.close_round(now);
        }
    }

    fn close_round(&mut self, now: Nanos) {
        if let Some((round_span, round_start)) = self.round.take() {
            self.qt.record(
                SpanKind::Round(self.round_idx),
                round_span,
                self.service_span,
                round_start,
                now,
            );
            self.round_idx += 1;
            self.segment_start = now;
        }
    }

    /// Records the service span, any abandoned sub-queries and the still
    /// open round, then hands the trace to the tracer's sampling decision.
    fn finish(mut self, tracer: &Tracer, status: SpanStatus, now: Nanos) {
        for (span, shard, sent_at) in std::mem::take(&mut self.outstanding) {
            if let Some((round_span, _)) = self.round {
                self.qt
                    .record(SpanKind::SubQuery { shard }, span, round_span, sent_at, now);
            }
        }
        self.close_round(now);
        let root = self.qt.root_span();
        self.qt.record(
            SpanKind::BrokerService,
            self.service_span,
            root,
            self.service_start,
            now,
        );
        tracer.finish(self.qt, status, now);
    }
}

/// An in-flight sub-query: the outcome channel plus, when tracing, the
/// sub-query span to close at the wait.
struct PendingSub {
    rx: Receiver<SubOutcome>,
    sub_span: Option<SpanId>,
}

/// An in-flight per-shard batch: one channel for the whole group. The
/// batch's [`SpanKind::SubQuery`] span covers every item it carries.
struct PendingBatch {
    rx: Receiver<Vec<SubOutcome>>,
    n: usize,
    sub_span: Option<SpanId>,
}

struct PlanCtx<'a> {
    shards: &'a [Arc<dyn ShardClient>],
    timeout: Duration,
    /// Coalesce per-shard fan-out into batches (see
    /// [`BrokerConfig::batch_fanout`]).
    batch: bool,
    clock: &'a Arc<dyn Clock>,
    /// The running query's trace, if the broker traces. `RefCell` because
    /// the plan helpers take `&self` recursively.
    trace: RefCell<Option<PlanTrace>>,
}

impl PlanCtx<'_> {
    fn shard_of(&self, v: VertexId) -> usize {
        v as usize % self.shards.len()
    }

    /// Sends one sub-query, threading the trace context through whichever
    /// transport the shard client wraps.
    fn send(&self, shard: usize, sub: SubQuery) -> PendingSub {
        let mut trace = self.trace.borrow_mut();
        let (ctx, sub_span) = match trace.as_mut() {
            Some(pt) => {
                let sub_span = pt.on_send(shard as u16, self.clock.now());
                (Some(pt.qt.ctx_for(sub_span)), Some(sub_span))
            }
            None => (None, None),
        };
        drop(trace);
        PendingSub {
            rx: self.shards[shard].submit(sub, ctx),
            sub_span,
        }
    }

    /// Sends a round's sub-queries to one shard as a single batch (one
    /// trace span, one admission unit, one reply channel).
    fn send_batch(&self, shard: usize, subs: Vec<SubQuery>) -> PendingBatch {
        let n = subs.len();
        let mut trace = self.trace.borrow_mut();
        let (ctx, sub_span) = match trace.as_mut() {
            Some(pt) => {
                let sub_span = pt.on_send(shard as u16, self.clock.now());
                (Some(pt.qt.ctx_for(sub_span)), Some(sub_span))
            }
            None => (None, None),
        };
        drop(trace);
        PendingBatch {
            rx: self.shards[shard].submit_batch(subs, ctx),
            n,
            sub_span,
        }
    }

    /// Waits one batch, closing its span; a reply of the wrong width is a
    /// protocol violation and fails the plan.
    fn wait_batch(&self, pending: PendingBatch) -> Result<Vec<SubOutcome>, PlanError> {
        let result = match pending.rx.recv_timeout(self.timeout) {
            Ok(outcomes) if outcomes.len() == pending.n => Ok(outcomes),
            Ok(_) | Err(_) => Err(PlanError::ShardFailed),
        };
        if let Some(sub_span) = pending.sub_span {
            if let Some(pt) = self.trace.borrow_mut().as_mut() {
                pt.on_recv(sub_span, self.clock.now());
            }
        }
        result
    }

    /// One communication round over arbitrary `(shard, sub-query)` items:
    /// groups the items per shard (batched mode), sends every group before
    /// waiting any, and yields the responses in `items` order. In
    /// unbatched mode each item travels as its own message; either way a
    /// shard sees its items in `items` order.
    fn scatter(&self, items: Vec<(usize, SubQuery)>) -> Result<Vec<SubResponse>, PlanError> {
        if !self.batch {
            // The fallback reproduces the pre-batching data path faithfully —
            // one message and one reply channel per sub-query, each carrying
            // its own copy of any shared payload (the old `n.clone()` per
            // `CountIntersect` target) — so the `liquid_datapath` bench
            // measures an honest before/after.
            let pendings: Vec<PendingSub> = items
                .into_iter()
                .map(|(s, sub)| self.send(s, deep_copy_payload(sub)))
                .collect();
            return self.wait_all(pendings);
        }
        let n_shards = self.shards.len();
        let mut shard_order: Vec<usize> = Vec::new(); // shards in first-use order
        let mut per_shard: Vec<Vec<SubQuery>> = vec![Vec::new(); n_shards];
        let mut slots: Vec<usize> = Vec::with_capacity(items.len()); // owning shard per item
        for (s, sub) in items {
            if per_shard[s].is_empty() {
                shard_order.push(s);
            }
            slots.push(s);
            per_shard[s].push(sub);
        }
        // Fan out every group before waiting on any...
        let groups: Vec<(usize, PendingBatch)> = shard_order
            .into_iter()
            .map(|s| {
                let subs = std::mem::take(&mut per_shard[s]);
                (s, self.send_batch(s, subs))
            })
            .collect();
        // ...then gather every group even after an error, so the round's
        // spans close and no receiver is abandoned mid-flight.
        let mut outcomes: Vec<Option<std::vec::IntoIter<SubOutcome>>> = vec![None; n_shards];
        let mut first_err = None;
        for (s, pending) in groups {
            match self.wait_batch(pending) {
                Ok(os) => outcomes[s] = Some(os.into_iter()),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Reassemble in items order: a shard's outcomes come back in its
        // submission order, so a per-shard cursor (the iterator) suffices.
        let mut out = Vec::with_capacity(slots.len());
        for s in slots {
            let iter = outcomes[s].as_mut().ok_or(PlanError::ShardFailed)?;
            match iter.next().ok_or(PlanError::ShardFailed)? {
                SubOutcome::Ok(resp) => out.push(resp),
                SubOutcome::Rejected => return Err(PlanError::ShardRejected),
                SubOutcome::Error => return Err(PlanError::ShardFailed),
            }
        }
        Ok(out)
    }

    /// Hands a per-shard vertex group to a sub-query: the batched path
    /// moves the vector (one `Arc` build, no copy left behind), while the
    /// fallback copies it and leaves the original alive — exactly the
    /// pre-batching `vs.clone()`, retained so benchmarks compare a real
    /// "before".
    fn take_or_copy_group(&self, vs: &mut Vec<VertexId>) -> Arc<[VertexId]> {
        if self.batch {
            std::mem::take(vs).into()
        } else {
            vs.as_slice().into()
        }
    }

    fn wait(&self, pending: PendingSub) -> Result<SubResponse, PlanError> {
        let result = match pending.rx.recv_timeout(self.timeout) {
            Ok(SubOutcome::Ok(resp)) => Ok(resp),
            Ok(SubOutcome::Rejected) => Err(PlanError::ShardRejected),
            Ok(SubOutcome::Error) | Err(_) => Err(PlanError::ShardFailed),
        };
        if let Some(sub_span) = pending.sub_span {
            if let Some(pt) = self.trace.borrow_mut().as_mut() {
                pt.on_recv(sub_span, self.clock.now());
            }
        }
        result
    }

    /// Waits every pending sub-query (so rounds close and no sub-query span
    /// is silently abandoned), yielding the responses or the first error.
    fn wait_all(&self, pendings: Vec<PendingSub>) -> Result<Vec<SubResponse>, PlanError> {
        let mut out = Vec::with_capacity(pendings.len());
        let mut first_err = None;
        for pending in pendings {
            match self.wait(pending) {
                Ok(resp) => out.push(resp),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    fn neighbors(&self, v: VertexId) -> Result<Vec<VertexId>, PlanError> {
        let pending = self.send(self.shard_of(v), SubQuery::Neighbors(v));
        match self.wait(pending)? {
            SubResponse::Ids(ids) => Ok(ids),
            _ => Err(PlanError::ShardFailed),
        }
    }

    fn degree(&self, v: VertexId) -> Result<u64, PlanError> {
        let pending = self.send(self.shard_of(v), SubQuery::Degree(v));
        match self.wait(pending)? {
            SubResponse::Count(c) => Ok(c),
            _ => Err(PlanError::ShardFailed),
        }
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> Result<bool, PlanError> {
        let pending = self.send(self.shard_of(u), SubQuery::HasEdge(u, v));
        match self.wait(pending)? {
            SubResponse::Flag(b) => Ok(b),
            _ => Err(PlanError::ShardFailed),
        }
    }

    /// Both neighbor lists in one parallel round (one batch when both
    /// vertices live on the same shard).
    fn neighbors_pair(
        &self,
        u: VertexId,
        v: VertexId,
    ) -> Result<(Vec<VertexId>, Vec<VertexId>), PlanError> {
        let mut responses = self.scatter(vec![
            (self.shard_of(u), SubQuery::Neighbors(u)),
            (self.shard_of(v), SubQuery::Neighbors(v)),
        ])?;
        let nv = match responses.pop() {
            Some(SubResponse::Ids(ids)) => ids,
            _ => return Err(PlanError::ShardFailed),
        };
        let nu = match responses.pop() {
            Some(SubResponse::Ids(ids)) => ids,
            _ => return Err(PlanError::ShardFailed),
        };
        Ok((nu, nv))
    }

    /// One communication round: neighbor lists for every frontier vertex,
    /// grouped per owning shard (one `NeighborsMany` each) and issued in
    /// parallel. Calls `each` once per frontier vertex, **in frontier
    /// order**, with that vertex's neighbor list — the lists stay in the
    /// shards' flattened [`IdLists`] buffers, so no per-vertex `Vec` is
    /// ever materialized broker-side.
    fn neighbors_many<F: FnMut(&[VertexId])>(
        &self,
        frontier: &[VertexId],
        mut each: F,
    ) -> Result<(), PlanError> {
        let n_shards = self.shards.len();
        let mut per_shard: Vec<Vec<VertexId>> = vec![Vec::new(); n_shards];
        for &v in frontier {
            per_shard[v as usize % n_shards].push(v);
        }
        // Fan out (the group vectors move into the sub-queries — no clone;
        // the fallback copies each group like the pre-batching `vs.clone()`)...
        let (targets, pendings): (Vec<usize>, Vec<PendingSub>) = per_shard
            .iter_mut()
            .enumerate()
            .filter(|(_, vs)| !vs.is_empty())
            .map(|(s, vs)| {
                let group = self.take_or_copy_group(vs);
                (s, self.send(s, SubQuery::NeighborsMany(group)))
            })
            .unzip();
        // ...gather, then walk the lists back out in frontier order.
        let mut per_shard_lists: Vec<Option<IdLists>> = vec![None; n_shards];
        for (s, resp) in targets.into_iter().zip(self.wait_all(pendings)?) {
            match resp {
                SubResponse::IdLists(lists) => per_shard_lists[s] = Some(lists),
                _ => return Err(PlanError::ShardFailed),
            }
        }
        let mut cursors = vec![0usize; n_shards];
        for &v in frontier {
            let s = v as usize % n_shards;
            let lists = per_shard_lists[s].as_ref().ok_or(PlanError::ShardFailed)?;
            let list = lists.get(cursors[s]).ok_or(PlanError::ShardFailed)?;
            cursors[s] += 1;
            if self.batch {
                each(list);
            } else {
                // The pre-batching response format carried one `Vec` per
                // frontier vertex; the fallback re-materializes that
                // per-vertex allocation so the datapath bench's "before"
                // keeps the old allocation profile.
                let owned = list.to_vec();
                each(&owned);
            }
        }
        Ok(())
    }

    fn degrees_many(&self, vs: &[VertexId]) -> Result<Vec<u32>, PlanError> {
        let n_shards = self.shards.len();
        let mut per_shard: Vec<Vec<VertexId>> = vec![Vec::new(); n_shards];
        for &v in vs {
            per_shard[v as usize % n_shards].push(v);
        }
        let (targets, pendings): (Vec<usize>, Vec<PendingSub>) = per_shard
            .iter_mut()
            .enumerate()
            .filter(|(_, vs)| !vs.is_empty())
            .map(|(s, vs)| {
                let group = self.take_or_copy_group(vs);
                (s, self.send(s, SubQuery::DegreeMany(group)))
            })
            .unzip();
        let mut per_shard_counts: Vec<Option<Vec<u32>>> = vec![None; n_shards];
        for (s, resp) in targets.into_iter().zip(self.wait_all(pendings)?) {
            match resp {
                SubResponse::Counts(counts) => per_shard_counts[s] = Some(counts),
                _ => return Err(PlanError::ShardFailed),
            }
        }
        let mut cursors = vec![0usize; n_shards];
        let mut out = Vec::with_capacity(vs.len());
        for &v in vs {
            let s = v as usize % n_shards;
            let counts = per_shard_counts[s].as_ref().ok_or(PlanError::ShardFailed)?;
            let i = cursors[s];
            cursors[s] += 1;
            out.push(*counts.get(i).ok_or(PlanError::ShardFailed)?);
        }
        Ok(out)
    }
}

/// Replaces a shared (`Arc`) payload with a freshly-allocated copy. The
/// unbatched fallback sends this instead of sharing, reproducing the
/// per-sub-query payload clones of the pre-batching data path.
fn deep_copy_payload(sub: SubQuery) -> SubQuery {
    match sub {
        SubQuery::NeighborsMany(ids) => SubQuery::NeighborsMany(ids.iter().copied().collect()),
        SubQuery::DegreeMany(ids) => SubQuery::DegreeMany(ids.iter().copied().collect()),
        SubQuery::CountIntersect(v, ids) => {
            SubQuery::CountIntersect(v, ids.iter().copied().collect())
        }
        other => other,
    }
}

fn execute_plan(ctx: &PlanCtx<'_>, q: Query) -> Result<u64, PlanError> {
    match q.kind {
        QueryKind::Qt1Degree => ctx.degree(q.u),
        QueryKind::Qt2EdgeExists => Ok(ctx.has_edge(q.u, q.v)? as u64),
        QueryKind::Qt3NeighborsPage => {
            let n = ctx.neighbors(q.u)?;
            Ok(n.iter().take(PAGE).count() as u64)
        }
        QueryKind::Qt4NeighborsFull => {
            let n = ctx.neighbors(q.u)?;
            // Broker-side post-processing: checksum the full list.
            let checksum: u64 = n.iter().fold(0u64, |acc, &v| {
                acc.wrapping_mul(31).wrapping_add(v as u64)
            });
            Ok(n.len() as u64 ^ (checksum & 0xFF)) // len dominates; checksum folds in
        }
        QueryKind::Qt5MutualCount => {
            let (nu, nv) = ctx.neighbors_pair(q.u, q.v)?;
            Ok(sorted_intersection_count(&nu, &nv))
        }
        QueryKind::Qt6NeighborDegrees => {
            let n = ctx.neighbors(q.u)?;
            let sample: Vec<VertexId> = n.iter().copied().take(DEGREE_SAMPLE).collect();
            if sample.is_empty() {
                return Ok(0);
            }
            let degrees = ctx.degrees_many(&sample)?;
            Ok(degrees.iter().map(|&d| d as u64).sum())
        }
        QueryKind::Qt7TwoHopCount => {
            let mut frontier = ctx.neighbors(q.u)?;
            frontier.truncate(TWO_HOP_CAP);
            if frontier.is_empty() {
                return Ok(0);
            }
            let mut seen: HashSet<VertexId> = HashSet::with_capacity(1024);
            ctx.neighbors_many(&frontier, |list| seen.extend(list.iter().copied()))?;
            seen.remove(&q.u);
            Ok(seen.len() as u64)
        }
        QueryKind::Qt8TriangleCount => {
            // One shared, reference-counted neighbor list: every shard's
            // intersection sub-query borrows the same allocation instead of
            // cloning the full list per target (and scatter coalesces the
            // per-shard sub-queries into batches).
            let n: Arc<[VertexId]> = ctx.neighbors(q.u)?.into();
            let items: Vec<(usize, SubQuery)> = n
                .iter()
                .take(TRIANGLE_CAP)
                .map(|&w| (ctx.shard_of(w), SubQuery::CountIntersect(w, Arc::clone(&n))))
                .collect();
            let mut total = 0u64;
            for resp in ctx.scatter(items)? {
                match resp {
                    SubResponse::Count(c) => total += c,
                    _ => return Err(PlanError::ShardFailed),
                }
            }
            Ok(total / 2) // each triangle counted from both endpoints
        }
        QueryKind::Qt9CommonNetwork => {
            let (mut nu, mut nv) = ctx.neighbors_pair(q.u, q.v)?;
            nu.truncate(COMMON_CAP);
            nv.truncate(COMMON_CAP);
            let mut network_u: HashSet<VertexId> = HashSet::with_capacity(2048);
            if !nu.is_empty() {
                ctx.neighbors_many(&nu, |list| network_u.extend(list.iter().copied()))?;
            }
            let mut overlap = 0u64;
            let mut network_v: HashSet<VertexId> = HashSet::with_capacity(2048);
            if !nv.is_empty() {
                ctx.neighbors_many(&nv, |list| {
                    for &w in list {
                        if network_v.insert(w) && network_u.contains(&w) {
                            overlap += 1;
                        }
                    }
                })?;
            }
            Ok(overlap)
        }
        QueryKind::Qt10Distance3 => bfs_distance(ctx, q.u, q.v, 3, BFS3_CAP),
        QueryKind::Qt11Distance4 => bfs_distance(ctx, q.u, q.v, 4, BFS4_CAP),
    }
}

/// Bounded breadth-first distance search: one communication round per hop,
/// exactly the multi-round broker/shard interaction of §5.1.
fn bfs_distance(
    ctx: &PlanCtx<'_>,
    from: VertexId,
    to: VertexId,
    max_hops: u32,
    frontier_cap: usize,
) -> Result<u64, PlanError> {
    if from == to {
        return Ok(0);
    }
    let mut visited: HashSet<VertexId> = HashSet::with_capacity(4096);
    visited.insert(from);
    let mut frontier = vec![from];
    for hop in 1..=max_hops {
        frontier.truncate(frontier_cap);
        let mut next = Vec::with_capacity(1024);
        let mut found = false;
        ctx.neighbors_many(&frontier, |list| {
            if found {
                return;
            }
            for &w in list {
                if w == to {
                    found = true;
                    return;
                }
                if visited.insert(w) {
                    next.push(w);
                }
            }
        })?;
        if found {
            return Ok(hop as u64);
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ok(u64::MAX)
}

/// `|a ∩ b|` for sorted slices.
fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphConfig};
    use crate::shard::{ShardConfig, ShardHost};
    use crate::transport::InProcShardClient;
    use bouncer_core::policy::AlwaysAccept;
    use bouncer_metrics::MonotonicClock;

    fn mini_cluster(n_shards: usize) -> (Graph, Vec<Arc<ShardHost>>, Arc<Broker>) {
        let g = Graph::generate(&GraphConfig {
            vertices: 2_000,
            edges_per_vertex: 4,
            seed: 21,
        });
        let clock: Arc<MonotonicClock> = Arc::new(MonotonicClock::new());
        let hosts: Vec<Arc<ShardHost>> = (0..n_shards)
            .map(|s| {
                ShardHost::spawn(
                    g.shard_slice(s, n_shards),
                    Arc::new(AlwaysAccept::new()),
                    clock.clone(),
                    ShardConfig::default(),
                )
            })
            .collect();
        let clients: Vec<Arc<dyn ShardClient>> = hosts
            .iter()
            .map(|h| Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>)
            .collect();
        let broker = Broker::spawn(
            clients,
            Arc::new(AlwaysAccept::new()),
            clock,
            BrokerConfig::default(),
        );
        (g, hosts, broker)
    }

    fn teardown(hosts: Vec<Arc<ShardHost>>, broker: Arc<Broker>) {
        broker.shutdown();
        for h in hosts {
            h.shutdown();
        }
    }

    #[test]
    fn degree_and_edge_queries_match_graph() {
        let (g, hosts, broker) = mini_cluster(4);
        for u in [0u32, 7, 100, 999] {
            let got = broker.execute(Query {
                kind: QueryKind::Qt1Degree,
                u,
                v: 0,
            });
            assert_eq!(got, ClientOutcome::Ok(g.degree(u) as u64));
        }
        let u = 10;
        let v = g.neighbors(u)[0];
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt2EdgeExists,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn mutual_count_matches_bruteforce() {
        let (g, hosts, broker) = mini_cluster(4);
        let u = 5;
        let v = 6;
        let expected = g
            .neighbors(u)
            .iter()
            .filter(|n| g.neighbors(v).binary_search(n).is_ok())
            .count() as u64;
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt5MutualCount,
                u,
                v
            }),
            ClientOutcome::Ok(expected)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn two_hop_count_matches_bruteforce() {
        let (g, hosts, broker) = mini_cluster(3);
        let u = 50;
        // Brute force with the same cap semantics.
        let frontier: Vec<u32> = g.neighbors(u).iter().copied().take(TWO_HOP_CAP).collect();
        let mut seen: HashSet<u32> = HashSet::new();
        for &w in &frontier {
            seen.extend(g.neighbors(w).iter().copied());
        }
        seen.remove(&u);
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt7TwoHopCount,
                u,
                v: 0
            }),
            ClientOutcome::Ok(seen.len() as u64)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn bfs_distance_finds_neighbors_at_hop_one() {
        let (g, hosts, broker) = mini_cluster(4);
        let u = 30;
        let v = g.neighbors(u)[0];
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt10Distance3,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt11Distance4,
                u,
                v
            }),
            ClientOutcome::Ok(1)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn bfs_distance_two_for_neighbor_of_neighbor() {
        let (g, hosts, broker) = mini_cluster(2);
        // Find a vertex at exact distance 2 from u: neighbor-of-neighbor
        // that is not a direct neighbor.
        let u = 40;
        let mut target = None;
        'outer: for &w in g.neighbors(u) {
            for &x in g.neighbors(w) {
                if x != u && g.neighbors(u).binary_search(&x).is_err() {
                    target = Some(x);
                    break 'outer;
                }
            }
        }
        let v = target.expect("graph should have a 2-hop vertex");
        assert_eq!(
            broker.execute(Query {
                kind: QueryKind::Qt10Distance3,
                u,
                v
            }),
            ClientOutcome::Ok(2)
        );
        teardown(hosts, broker);
    }

    #[test]
    fn all_query_kinds_execute_successfully() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let (g, hosts, broker) = mini_cluster(4);
        let mut rng = SmallRng::seed_from_u64(77);
        for kind in QueryKind::ALL {
            for _ in 0..5 {
                let q = Query::random(kind, g.vertex_count(), &mut rng);
                match broker.execute(q) {
                    ClientOutcome::Ok(_) => {}
                    other => panic!("{kind:?} -> {other:?}"),
                }
            }
        }
        let snap = broker.stats().snapshot(1, broker.parallelism());
        assert_eq!(
            snap.per_type.iter().map(|t| t.completed).sum::<u64>(),
            55
        );
        teardown(hosts, broker);
    }

    #[test]
    fn broker_rejection_is_early() {
        let (g, hosts, _ignored) = mini_cluster(2);
        let clients: Vec<Arc<dyn ShardClient>> = hosts
            .iter()
            .map(|h| Arc::new(InProcShardClient::new(Arc::clone(h))) as Arc<dyn ShardClient>)
            .collect();
        // A broker whose policy rejects everything after the queue holds 0
        // entries (MaxQL(1) with an engine that we keep busy is racy; use a
        // 0-capacity gate via max_queue_len=0 instead).
        let broker = Broker::spawn(
            clients,
            Arc::new(AlwaysAccept::new()),
            Arc::new(MonotonicClock::new()),
            BrokerConfig {
                engines: 1,
                max_queue_len: Some(0),
                ..BrokerConfig::default()
            },
        );
        // With a zero-length queue every offer is rejected as QueueFull.
        let out = broker.execute(Query {
            kind: QueryKind::Qt1Degree,
            u: 0,
            v: 0,
        });
        assert_eq!(out, ClientOutcome::Rejected(RejectReason::QueueFull));
        let _ = g;
        teardown(hosts, broker);
    }

    #[test]
    fn shutdown_joins_engines_even_with_extra_arc_clones() {
        let (_g, hosts, broker) = mini_cluster(2);
        assert_eq!(
            broker.engines_running(),
            BrokerConfig::default().engines as usize
        );
        // Keep extra strong references alive across shutdown — the seed's
        // `Arc::get_mut` guard silently skipped the joins in this case.
        let extra_broker = Arc::clone(&broker);
        let extra_hosts: Vec<_> = hosts.iter().map(Arc::clone).collect();
        teardown(hosts, broker);
        assert_eq!(extra_broker.engines_running(), 0);
        for h in &extra_hosts {
            assert_eq!(h.engines_running(), 0);
        }
        // Idempotent: a second shutdown finds nothing left to join.
        extra_broker.shutdown();
        assert_eq!(extra_broker.engines_running(), 0);
    }

    #[test]
    fn sorted_intersection_counts() {
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_intersection_count(&[5], &[5]), 1);
    }

    #[test]
    fn registry_and_type_ids_line_up() {
        let reg = liquid_registry();
        assert_eq!(reg.len(), 12);
        for kind in QueryKind::ALL {
            let ty = kind_type_id(kind);
            assert_eq!(reg.name(ty), kind.name());
        }
    }
}
